//! Umbrella crate for the DDM-GNN reproduction workspace.
//!
//! This crate only re-exports the workspace members so the examples under
//! `examples/` and the integration tests under `tests/` can reach every layer
//! of the stack through one dependency.  The actual functionality lives in:
//!
//! * [`sparse`] — sparse/dense linear algebra,
//! * [`krylov`] — CG / PCG / BiCGStab / GMRES,
//! * [`meshgen`] — unstructured mesh generation,
//! * [`fem`] — P1 Poisson assembly,
//! * [`partition`] — graph partitioning and overlap,
//! * [`ddm`] — Additive Schwarz (DDM-LU),
//! * [`gnn`] — the Deep Statistical Solver framework,
//! * [`ddm_gnn`] — the DDM-GNN preconditioner and hybrid solver.

pub use ddm;
pub use ddm_gnn;
pub use fem;
pub use gnn;
pub use krylov;
pub use meshgen;
pub use partition;
pub use sparse;
