//! Out-of-distribution, large-scale experiment on the "Formula-1" domain with
//! holes (the paper's Fig. 5 scenario).
//!
//! ```bash
//! cargo run --release --example formula1_large_scale
//! # scale up towards the paper's 233k-node mesh:
//! F1_TARGET_NODES=200000 cargo run --release --example formula1_large_scale
//! ```
//!
//! The domain (a caricatural F1 car with a cockpit opening and wing stripes)
//! is unlike anything in the training distribution, and the mesh is much
//! larger than the training sub-domains.  The hybrid solver must still
//! converge to a tolerance far below anything seen during training (1e-9).

use std::sync::Arc;

use ddm_gnn::{load_pretrained, solve_cg, solve_ddm_gnn, solve_ddm_lu, PipelineConfig};
use fem::PoissonProblem;
use krylov::SolverOptions;
use meshgen::{generate_mesh, FormulaOneDomain, MeshingOptions};
use partition::partition_mesh_with_overlap;

fn main() {
    let target_nodes: usize =
        std::env::var("F1_TARGET_NODES").ok().and_then(|v| v.parse().ok()).unwrap_or(12_000);

    let domain = FormulaOneDomain::new(1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, target_nodes);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(1));
    println!(
        "Formula-1 mesh: {} nodes, {} triangles, {} boundary nodes (outer boundary + holes), area {:.3}",
        mesh.num_nodes(),
        mesh.num_triangles(),
        mesh.num_boundary_nodes(),
        mesh.area()
    );

    let problem = PoissonProblem::with_random_data(mesh, 5);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 200, 2, 0);
    println!("decomposition into {} sub-domains of ~200 nodes", subdomains.len());

    let model = load_pretrained().unwrap_or_else(|| {
        println!("no pre-trained model found — training a small one...");
        ddm_gnn::train_model(&PipelineConfig::default()).model
    });

    // The paper drives this experiment to a relative residual of 1e-9 —
    // far below the training regime of the GNN.
    let opts = SolverOptions::with_tolerance(1e-9).max_iterations(20_000);
    let gnn = solve_ddm_gnn(&problem, subdomains.clone(), Arc::new(model), true, &opts)
        .expect("DDM-GNN solve");
    let lu = solve_ddm_lu(&problem, subdomains, true, &opts).expect("DDM-LU solve");
    let cg = solve_cg(&problem, &opts);

    println!("\n{:<10} {:>12} {:>12}", "method", "iterations", "time [s]");
    for outcome in [&gnn, &lu, &cg] {
        println!(
            "{:<10} {:>12} {:>12.3}",
            outcome.method.name(),
            outcome.stats.iterations,
            outcome.total_seconds
        );
    }

    // Convergence traces (relative residual per iteration), the data of Fig. 5b.
    println!("\nrelative residual every 5 iterations (DDM-GNN / DDM-LU / CG):");
    let traces =
        [gnn.stats.history.relative(), lu.stats.history.relative(), cg.stats.history.relative()];
    let longest = traces.iter().map(|t| t.len()).max().unwrap_or(0);
    for i in (0..longest).step_by(5) {
        let cell = |t: &Vec<f64>| {
            t.get(i).map(|v| format!("{v:>10.2e}")).unwrap_or_else(|| format!("{:>10}", "-"))
        };
        println!("iter {:>5}: {} {} {}", i, cell(&traces[0]), cell(&traces[1]), cell(&traces[2]));
    }
}
