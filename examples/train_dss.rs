//! Train a Deep Statistical Solver on locally extracted sub-domain problems
//! and verify that the resulting DDM-GNN preconditioner accelerates PCG.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example train_dss
//! ```
//!
//! Environment variables scale the run up towards the paper's configuration:
//! `DSS_BLOCKS` (k̄), `DSS_LATENT` (d), `DSS_EPOCHS`, `DSS_SAMPLES` (per
//! sub-domain size), `DSS_SUBDOMAINS` (comma-separated local problem sizes —
//! mixing sizes makes one model generalise across decompositions) and
//! `DSS_MODEL_OUT` (path to save the trained model for reuse by the other
//! examples and the benchmark harness).

use std::path::PathBuf;
use std::sync::Arc;

use ddm_gnn::{generate_problem, solve_cg, solve_ddm_gnn, solve_ddm_lu, PipelineConfig};
use gnn::{AdamConfig, DatasetConfig, DssConfig, TrainingConfig};
use krylov::SolverOptions;
use partition::partition_mesh_with_overlap;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let blocks = env_usize("DSS_BLOCKS", 10);
    let latent = env_usize("DSS_LATENT", 10);
    let epochs = env_usize("DSS_EPOCHS", 60);
    let samples = env_usize("DSS_SAMPLES", 150);
    let raw_sizes = std::env::var("DSS_SUBDOMAINS").unwrap_or_else(|_| "300".to_string());
    let subdomain_sizes: Vec<usize> = match raw_sizes
        .split(',')
        .map(|v| v.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(sizes) if !sizes.is_empty() && sizes.iter().all(|&s| s > 0) => sizes,
        _ => {
            eprintln!(
                "DSS_SUBDOMAINS must be a comma-separated list of positive sizes \
                 (e.g. 150,250,400), got {raw_sizes:?}"
            );
            std::process::exit(2);
        }
    };
    let subdomain = *subdomain_sizes.last().unwrap();

    println!("=== DDM-GNN: training a Deep Statistical Solver ===");
    println!("architecture: k̄ = {blocks}, d = {latent}; sub-domain sizes {subdomain_sizes:?}");

    let config = PipelineConfig {
        dss: DssConfig { num_blocks: blocks, latent_dim: latent, alpha: 1.0 / blocks as f64 },
        dataset: DatasetConfig {
            num_global_problems: 4,
            target_nodes: subdomain * 4,
            subdomain_size: subdomain,
            overlap: 2,
            max_iterations_per_problem: 15,
            max_samples: Some(samples),
            seed: 1,
            ..Default::default()
        },
        training: TrainingConfig {
            epochs,
            batch_size: 16,
            adam: AdamConfig { learning_rate: 5e-3, clip_norm: Some(1.0), ..Default::default() },
            validation_fraction: 0.15,
            lr_patience: 8,
            lr_factor: 0.3,
            seed: 2,
            log_every: 10,
        },
        model_seed: 3,
    };

    let start = std::time::Instant::now();
    let trained = ddm_gnn::train_model_multi_size(&config, &subdomain_sizes);
    println!(
        "trained on {} samples in {:.1}s — {} weights",
        trained.num_samples,
        start.elapsed().as_secs_f64(),
        trained.model.num_params()
    );
    println!(
        "evaluation: residual = {:.4} ± {:.4}, relative error = {:.3} ± {:.3}",
        trained.metrics.residual_mean,
        trained.metrics.residual_std,
        trained.metrics.relative_error_mean,
        trained.metrics.relative_error_std
    );

    // Verify the preconditioner on a fresh, unseen global problem.
    let problem = generate_problem(99, subdomain * 5);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, subdomain, 2, 0);
    println!(
        "\nvalidation problem: N = {}, K = {} sub-domains",
        problem.num_unknowns(),
        subdomains.len()
    );
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(3000);
    let cg = solve_cg(&problem, &opts);
    let lu = solve_ddm_lu(&problem, subdomains.clone(), true, &opts).expect("DDM-LU setup");
    let gnn = solve_ddm_gnn(&problem, subdomains, Arc::new(trained.model.clone()), true, &opts)
        .expect("DDM-GNN setup");
    println!("  CG      : {:>4} iterations, {:.3}s", cg.stats.iterations, cg.total_seconds);
    println!(
        "  DDM-LU  : {:>4} iterations, {:.3}s (T_lu  = {:.3}s)",
        lu.stats.iterations, lu.total_seconds, lu.preconditioner_seconds
    );
    println!(
        "  DDM-GNN : {:>4} iterations, {:.3}s (T_gnn = {:.3}s)",
        gnn.stats.iterations, gnn.total_seconds, gnn.preconditioner_seconds
    );

    if let Ok(path) = std::env::var("DSS_MODEL_OUT") {
        let path = PathBuf::from(path);
        gnn::io::save_model(&path, &trained.model).expect("saving the model");
        println!("\nmodel saved to {}", path.display());
    }
}
