//! Pressure-projection scenario: a sequence of Poisson solves with evolving
//! right-hand sides, as they appear in incompressible CFD fractional-step
//! methods (the motivating application of the paper's introduction).
//!
//! ```bash
//! cargo run --release --example pressure_projection
//! ```
//!
//! A projection method solves one pressure Poisson problem per time step; the
//! operator is fixed while the right-hand side (the divergence of the
//! predicted velocity) changes every step.  This is the best case for the
//! DDM-GNN preconditioner: the sub-domain graphs, the coarse factorisation
//! and the trained model are all reused across steps, only inference runs
//! per step.

use std::sync::Arc;

use ddm_gnn::{load_pretrained, DdmGnnPreconditioner, PipelineConfig};
use fem::{PoissonProblem, SourceTerm};
use krylov::{preconditioned_conjugate_gradient, SolverOptions};
use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain};
use partition::partition_mesh_with_overlap;

fn main() {
    // Mesh and operator are built once, like the pressure system of a CFD code.
    let domain = RandomBlobDomain::generate(7, 20, 1.2);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, 3000);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(7));
    println!("pressure mesh: {} nodes", mesh.num_nodes());

    // Assemble once with zero data to fix the operator; per-step right-hand
    // sides are assembled below from time-varying "divergence" fields.
    let n = mesh.num_nodes();
    let base = PoissonProblem::from_samples(mesh.clone(), &vec![0.0; n], &vec![0.0; n]);

    let model = load_pretrained().unwrap_or_else(|| {
        println!("no pre-trained model found — training a small one...");
        ddm_gnn::train_model(&PipelineConfig::default()).model
    });
    let subdomains = partition_mesh_with_overlap(&base.mesh, 200, 2, 0);
    println!("decomposition: {} sub-domains of ~200 nodes", subdomains.len());

    // The preconditioner is set up once and reused for every time step.
    let precond =
        DdmGnnPreconditioner::new(&base, subdomains, Arc::new(model), true).expect("setup");
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(2000);

    let num_steps = 8;
    println!("\n{:<6} {:>12} {:>14} {:>12}", "step", "iterations", "rel. residual", "time [s]");
    let mut previous_solution = vec![0.0; n];
    let mut total_iterations = 0;
    for step in 0..num_steps {
        // A synthetic divergence field that evolves smoothly in time, plus the
        // boundary data of the pressure problem.
        let source = SourceTerm::sample(1000 + step as u64, 1.0 + 0.1 * step as f64);
        let f = source.forcing_values(&base.mesh);
        let g = source.boundary_values(&base.mesh);
        let problem = PoissonProblem::from_samples(base.mesh.clone(), &f, &g);

        let start = std::time::Instant::now();
        // Warm start from the previous step's pressure, as CFD codes do.
        let result = preconditioned_conjugate_gradient(
            &problem.matrix,
            &problem.rhs,
            Some(&previous_solution),
            &precond,
            &opts,
        );
        let elapsed = start.elapsed().as_secs_f64();
        let rel = krylov::true_relative_residual(&problem.matrix, &result.x, &problem.rhs);
        println!("{:<6} {:>12} {:>14.3e} {:>12.4}", step, result.stats.iterations, rel, elapsed);
        total_iterations += result.stats.iterations;
        previous_solution = result.x;
    }
    println!(
        "\n{} pressure solves completed, {:.1} PCG iterations per step on average.",
        num_steps,
        total_iterations as f64 / num_steps as f64
    );
}
