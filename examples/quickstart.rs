//! Quickstart: solve one Poisson problem with the DDM-GNN hybrid solver.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks through the whole public API:
//! 1. generate a random 2D domain, mesh it and assemble the Poisson system,
//! 2. load the pre-trained Deep Statistical Solver (or train a small one if
//!    the shipped model is missing),
//! 3. solve with the GNN-preconditioned Conjugate Gradient and compare with
//!    the exact-local-solver baseline (DDM-LU) and plain CG.

use ddm_gnn::{
    generate_problem, load_pretrained, solve_cg, HybridSolver, HybridSolverConfig, PipelineConfig,
};
use krylov::SolverOptions;

fn main() {
    // 1. A random global Poisson problem with ~2000 unknowns.
    let problem = generate_problem(42, 2000);
    println!(
        "Problem: {} nodes, {} triangles, {} nonzeros",
        problem.num_unknowns(),
        problem.mesh.num_triangles(),
        problem.matrix.nnz()
    );

    // 2. A trained DSS model: prefer the shipped weights, otherwise train a
    //    small model from scratch (takes a minute or two on a laptop).
    let model = load_pretrained().unwrap_or_else(|| {
        println!("no pre-trained model found — training a small one (this takes a while)...");
        ddm_gnn::train_model(&PipelineConfig::default()).model
    });
    println!(
        "DSS model: k̄ = {}, d = {}, {} weights",
        model.config().num_blocks,
        model.config().latent_dim,
        model.num_params()
    );

    // 3. The hybrid solver: two-level DDM-GNN preconditioned CG.
    let solver = HybridSolver::new(
        model,
        HybridSolverConfig {
            subdomain_size: 200,
            overlap: 2,
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    let gnn = solver.solve(&problem).expect("DDM-GNN solve");
    let lu = solver.solve_with_exact_local_solver(&problem).expect("DDM-LU solve");
    let cg = solve_cg(&problem, &SolverOptions::with_tolerance(1e-6).max_iterations(10_000));

    println!("\n{:<10} {:>12} {:>12} {:>14}", "method", "iterations", "time [s]", "rel. residual");
    for outcome in [&gnn, &lu, &cg] {
        let rel = krylov::true_relative_residual(&problem.matrix, &outcome.x, &problem.rhs);
        println!(
            "{:<10} {:>12} {:>12.4} {:>14.3e}",
            outcome.method.name(),
            outcome.stats.iterations,
            outcome.total_seconds,
            rel
        );
    }
    println!(
        "\nDDM-GNN used {} sub-domains and spent {:.4}s inside the preconditioner.",
        gnn.num_subdomains, gnn.preconditioner_seconds
    );
}
