//! Cross-thread-count determinism of the parallel runtime.
//!
//! The rayon shim promises bit-identical results at every `RAYON_NUM_THREADS`
//! setting (chunk boundaries and reduction order depend only on data length).
//! Because the pool size is fixed per process, this test re-executes the test
//! binary as a child process per thread count: each child computes a
//! signature over the parallel hot paths — `spmv_into`, the Additive Schwarz
//! `apply`, the DDM-GNN `apply` and a full PCG residual history — writes it
//! to a file, and the parent asserts all signatures are byte-identical.

use std::fmt::Write as _;
use std::process::Command;
use std::sync::Arc;

use ddm_gnn_suite::ddm::{AdditiveSchwarz, AsmLevel};
use ddm_gnn_suite::ddm_gnn::{generate_problem, DdmGnnPreconditioner};
use ddm_gnn_suite::gnn::{DssConfig, DssModel};
use ddm_gnn_suite::krylov::{preconditioned_conjugate_gradient, Preconditioner, SolverOptions};
use ddm_gnn_suite::partition::partition_mesh_with_overlap;

const CHILD_ENV: &str = "DDM_GNN_DETERMINISM_CHILD";
const OUT_ENV: &str = "DDM_GNN_DETERMINISM_OUT";

fn push_bits(sig: &mut String, label: &str, values: &[f64]) {
    let _ = write!(sig, "{label}:");
    for v in values {
        let _ = write!(sig, "{:016x}", v.to_bits());
    }
    let _ = writeln!(sig);
}

/// Exercise every parallel hot path and return a hex signature of the raw
/// f64 bit patterns involved.
fn compute_signature() -> String {
    // Large enough that spmv_into takes its parallel branch (nrows >= 4096).
    let problem = generate_problem(3, 5000);
    let n = problem.num_unknowns();
    assert!(n >= 4096, "problem too small to cover the parallel SpMV branch");
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 250, 2, 0);

    let mut sig = String::new();

    // Parallel SpMV.
    let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) * 0.25 - 2.0).collect();
    let mut y = vec![0.0; n];
    problem.matrix.spmv_into(&x, &mut y);
    push_bits(&mut sig, "spmv", &y);

    // ASM preconditioner application (parallel local solves).
    let asm = AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel)
        .expect("ASM setup");
    let mut z = vec![0.0; n];
    asm.apply(&problem.rhs, &mut z);
    push_bits(&mut sig, "asm_apply", &z);

    // DDM-GNN preconditioner application (parallel batched inference).  A
    // small untrained model keeps the debug-profile runtime low; determinism
    // does not depend on model quality.
    let model = Arc::new(DssModel::new(DssConfig { num_blocks: 3, latent_dim: 6, alpha: 1e-2 }, 7));
    let gnn = DdmGnnPreconditioner::new(&problem, subdomains, model, true).expect("GNN setup");
    gnn.apply(&problem.rhs, &mut z);
    push_bits(&mut sig, "gnn_apply", &z);

    // Full PCG residual history with the ASM preconditioner.
    let opts = SolverOptions::with_tolerance(1e-8).max_iterations(300);
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &asm, &opts);
    assert!(result.stats.converged(), "PCG must converge: {:?}", result.stats.stop_reason);
    push_bits(&mut sig, "pcg_history", result.stats.history.norms());
    push_bits(&mut sig, "pcg_solution", &result.x);

    sig
}

#[test]
fn bit_identical_across_thread_counts() {
    // Child mode: compute the signature at the inherited RAYON_NUM_THREADS
    // and write it where the parent asked.
    if std::env::var(CHILD_ENV).is_ok() {
        let out = std::env::var(OUT_ENV).expect("child needs the output path");
        std::fs::write(out, compute_signature()).expect("child cannot write signature");
        return;
    }

    let exe = std::env::current_exe().expect("cannot locate test executable");
    let mut signatures = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = std::env::temp_dir().join(format!("ddm_gnn_determinism_{threads}.sig"));
        let status = Command::new(&exe)
            .args(["bit_identical_across_thread_counts", "--exact", "--test-threads=1"])
            .env(CHILD_ENV, "1")
            .env(OUT_ENV, &out)
            .env("RAYON_NUM_THREADS", threads)
            .status()
            .expect("failed to spawn determinism child");
        assert!(status.success(), "child with {threads} threads failed");
        let sig = std::fs::read_to_string(&out).expect("missing child signature");
        assert!(!sig.is_empty(), "empty signature at {threads} threads");
        let _ = std::fs::remove_file(&out);
        signatures.push((threads, sig));
    }
    let (_, reference) = &signatures[0];
    for (threads, sig) in &signatures[1..] {
        assert_eq!(
            sig, reference,
            "results at RAYON_NUM_THREADS={threads} differ from the 1-thread run"
        );
    }
}
