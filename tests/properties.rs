//! Property-based tests on the core numerical invariants, spanning crates.
//!
//! The suite is deterministic and CI-bounded by construction: every test runs
//! a fixed small number of cases (`with_cases(24)` below) on sub-50-unknown
//! systems, and the vendored proptest shim derives each test's RNG stream
//! from a fixed workspace seed plus the test name, so runs are reproducible
//! machine to machine (no `proptest-regressions/` churn).  Set
//! `PROPTEST_SEED=<u64>` to explore a different deterministic stream.

use ddm_gnn_suite::*;

use proptest::prelude::*;
use sparse::{CooMatrix, CsrMatrix};

use std::sync::{Arc, OnceLock};

use krylov::Preconditioner;

/// Shared fixture for the batched-apply properties: one small decomposed
/// problem and the DDM-GNN preconditioner at every precision, built once.
/// `None` when the pre-trained model asset is absent (the release-only heavy
/// suite covers that configuration; training here would dwarf the property
/// run).
struct BatchedApplyFixture {
    problem: fem::PoissonProblem,
    f64_precond: ddm_gnn::DdmGnnPreconditioner,
    f32_precond: ddm_gnn::DdmGnnPreconditioner,
    int8_precond: ddm_gnn::DdmGnnPreconditioner,
}

fn batched_apply_fixture() -> Option<&'static BatchedApplyFixture> {
    static FIXTURE: OnceLock<Option<BatchedApplyFixture>> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let model = Arc::new(ddm_gnn::load_pretrained()?);
            let problem = ddm_gnn::generate_problem(816, 600);
            let subdomains = partition::partition_mesh_with_overlap(&problem.mesh, 150, 2, 0);
            let build = |precision| {
                ddm_gnn::DdmGnnPreconditioner::with_precision(
                    &problem,
                    subdomains.clone(),
                    Arc::clone(&model),
                    true,
                    precision,
                )
                .expect("preconditioner setup")
            };
            let f64_precond = build(ddm_gnn::Precision::F64);
            let f32_precond = build(ddm_gnn::Precision::F32);
            let int8_precond = build(ddm_gnn::Precision::Int8);
            Some(BatchedApplyFixture { problem, f64_precond, f32_precond, int8_precond })
        })
        .as_ref()
}

/// `b` deterministic pseudo-random residual vectors derived from a seed.
fn batch_residuals(n: usize, b: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..b)
        .map(|c| {
            (0..n)
                .map(|i| ((i as f64) * 0.37 + (seed as f64) * 1.73 + (c as f64) * 5.11).sin())
                .collect()
        })
        .collect()
}

/// Build a random sparse SPD matrix of size `n`: diagonally dominant with
/// random symmetric off-diagonal couplings.
fn random_spd(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut diag = vec![1.0; n];
    for &(i, j, v) in entries {
        let (i, j) = (i % n, j % n);
        if i == j {
            continue;
        }
        coo.push(i, j, -v.abs()).unwrap();
        coo.push(j, i, -v.abs()).unwrap();
        diag[i] += v.abs();
        diag[j] += v.abs();
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).unwrap();
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CG solves every diagonally dominant SPD system to the requested
    /// tolerance.
    #[test]
    fn cg_solves_random_spd_systems(
        entries in proptest::collection::vec((0usize..30, 0usize..30, 0.1f64..2.0), 10..60),
        rhs_seed in 0u64..1000,
    ) {
        let n = 30;
        let a = random_spd(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| (((i as u64 + rhs_seed) * 37 % 23) as f64) - 11.0).collect();
        let result = krylov::conjugate_gradient(&a, &b, None, &krylov::SolverOptions::with_tolerance(1e-10));
        prop_assert!(result.stats.converged());
        prop_assert!(krylov::true_relative_residual(&a, &result.x, &b) < 1e-8);
    }

    /// The sparse Cholesky factorisation agrees with dense LU on random SPD
    /// systems.
    #[test]
    fn cholesky_matches_lu(
        entries in proptest::collection::vec((0usize..25, 0usize..25, 0.1f64..2.0), 10..50),
    ) {
        let n = 25;
        let a = random_spd(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let chol = sparse::SkylineCholesky::factor(&a).unwrap();
        let lu = sparse::LuFactor::factor_csr(&a).unwrap();
        let x1 = chol.solve(&b).unwrap();
        let x2 = lu.solve(&b).unwrap();
        prop_assert!(sparse::vector::relative_error(&x1, &x2) < 1e-8);
    }

    /// Restriction/extension round trips: extending a local vector and
    /// restricting it back is the identity on the sub-domain.
    #[test]
    fn restriction_extension_roundtrip(
        raw_indices in proptest::collection::btree_set(0usize..50, 1..20),
        values in proptest::collection::vec(-10.0f64..10.0, 20),
    ) {
        let indices: Vec<usize> = raw_indices.into_iter().collect();
        let r = ddm::Restriction::new(indices.clone(), 50);
        let local: Vec<f64> = values.iter().take(indices.len()).copied().collect();
        let mut global = vec![0.0; 50];
        r.extend_add(&local, &mut global);
        let back = r.restrict(&global);
        prop_assert_eq!(back, local);
    }

    /// The physics-informed loss is zero exactly at the solution and positive
    /// elsewhere, for every random SPD local system.
    #[test]
    fn residual_loss_separates_solutions(
        entries in proptest::collection::vec((0usize..15, 0usize..15, 0.1f64..2.0), 5..30),
        perturbation in 0.05f64..5.0,
    ) {
        let n = 15;
        let a = random_spd(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let lu = sparse::LuFactor::factor_csr(&a).unwrap();
        let exact = lu.solve(&b).unwrap();
        prop_assert!(gnn::loss::residual_loss(&a, &b, &exact) < 1e-18);
        let off: Vec<f64> = exact.iter().enumerate().map(|(i, v)| v + if i == 0 { perturbation } else { 0.0 }).collect();
        prop_assert!(gnn::loss::residual_loss(&a, &b, &off) > 1e-12);
    }

    /// Partitions always cover every node, use every part index at most once
    /// per node and produce sub-domains whose union is the whole graph after
    /// overlap growth.
    #[test]
    fn partition_covers_mesh(seed in 0u64..50, target in 80usize..220) {
        let domain = meshgen::RandomBlobDomain::generate(seed, 12, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, 600);
        let mesh = meshgen::generate_mesh(&domain, &meshgen::MeshingOptions::with_element_size(h).seed(seed));
        let subdomains = partition::partition_mesh_with_overlap(&mesh, target, 2, seed);
        let mut covered = vec![false; mesh.num_nodes()];
        for sd in &subdomains {
            for &v in sd {
                prop_assert!(v < mesh.num_nodes());
                covered[v] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }

    /// The dense-rows Galerkin wrapper and the CSR kernel agree **exactly**
    /// on restrictions containing explicitly stored zeros: the wrapper drops
    /// them when building the CSR and the kernel skips them during the merge,
    /// so both sides reduce to the same nonzero stream in the same order.
    #[test]
    fn galerkin_wrapper_matches_csr_on_explicit_zeros(
        entries in proptest::collection::vec((0usize..20, 0usize..20, 0.1f64..2.0), 10..40),
        r_entries in proptest::collection::vec((0usize..4, 0usize..20, -2.0f64..2.0), 8..30),
        zero_every in 2usize..5,
    ) {
        let n = 20;
        let k = 4;
        let a = random_spd(n, &entries);
        // Dense rows with a sprinkling of exact zeros at regular positions.
        let mut rows = vec![vec![0.0f64; n]; k];
        for (idx, &(i, j, v)) in r_entries.iter().enumerate() {
            rows[i % k][j % n] = if idx % zero_every == 0 { 0.0 } else { v };
        }
        // The same rows as an explicit CSR that *keeps* stored zeros.
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in &rows {
            for (j, &v) in row.iter().enumerate() {
                // Store every column touched by r_entries, zero or not, plus
                // a guaranteed explicit zero per row.
                if v != 0.0 || j % 7 == 0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let r_csr = CsrMatrix::from_raw_parts(k, n, row_ptr, col_idx, values).unwrap();
        prop_assert!(r_csr.values().contains(&0.0), "fixture must contain explicit zeros");
        let dense_result = a.galerkin_product(&rows);
        let csr_result = a.galerkin_product_csr(&r_csr);
        prop_assert_eq!(dense_result.len(), csr_result.len());
        for (x, y) in dense_result.iter().zip(csr_result.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The degenerate two-level `Hierarchy` configuration is **bit-identical**
    /// to the Nicolaides coarse space through a full ASM + PCG solve:
    /// identical iteration counts and identical residual histories, bit for
    /// bit, on random problems.
    #[test]
    fn two_level_hierarchy_pins_to_nicolaides_through_pcg(seed in 0u64..12) {
        let problem = ddm_gnn::generate_problem(seed, 500);
        let subdomains = partition::partition_mesh_with_overlap(&problem.mesh, 150, 2, seed);
        let opts = krylov::SolverOptions::with_tolerance(1e-8);

        let asm_nico = ddm::AdditiveSchwarz::new(
            &problem.matrix,
            subdomains.clone(),
            ddm::AsmLevel::TwoLevel,
        ).unwrap();
        let decomp = ddm::Decomposition::new(&problem.matrix, subdomains);
        let hierarchy = ddm::Hierarchy::two_level_nicolaides(
            &problem.matrix,
            &decomp.restrictions,
        ).unwrap();
        let asm_degen = ddm::AdditiveSchwarz::from_decomposition_with_coarse(
            &problem.matrix,
            decomp,
            Some(ddm::CoarseSpace::Multilevel(hierarchy)),
        ).unwrap();

        let r_nico = krylov::preconditioned_conjugate_gradient(
            &problem.matrix, &problem.rhs, None, &asm_nico, &opts,
        );
        let r_degen = krylov::preconditioned_conjugate_gradient(
            &problem.matrix, &problem.rhs, None, &asm_degen, &opts,
        );
        prop_assert!(r_nico.stats.converged() && r_degen.stats.converged());
        prop_assert_eq!(r_nico.stats.iterations, r_degen.stats.iterations);
        let h_nico = r_nico.stats.history.norms();
        let h_degen = r_degen.stats.history.norms();
        prop_assert_eq!(h_nico.len(), h_degen.len());
        for (a, b) in h_nico.iter().zip(h_degen.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // The solutions are bit-identical too.
        for (a, b) in r_nico.x.iter().zip(r_degen.x.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The batched preconditioner apply extends the standing bit-determinism
    /// result: for every batch width b ∈ {1..8} and random residual panel,
    /// column `c` of `apply_batch` is **bit-identical** to a sequential
    /// `apply` on that column alone (f64 engine).
    #[test]
    fn f64_apply_batch_is_bit_identical_to_sequential_applies(
        b in 1usize..9,
        seed in 0u64..200,
    ) {
        let Some(fx) = batched_apply_fixture() else { return Ok(()); };
        let n = fx.problem.num_unknowns();
        let residuals = batch_residuals(n, b, seed);
        let rs: Vec<&[f64]> = residuals.iter().map(|r| r.as_slice()).collect();
        let mut batched = vec![vec![0.0f64; n]; b];
        {
            let mut zs: Vec<&mut [f64]> = batched.iter_mut().map(|z| z.as_mut_slice()).collect();
            fx.f64_precond.apply_batch(&rs, &mut zs);
        }
        let mut sequential = vec![0.0f64; n];
        for c in 0..b {
            fx.f64_precond.apply(&residuals[c], &mut sequential);
            for (i, (x, y)) in batched[c].iter().zip(sequential.iter()).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "b={} column {} entry {} differs: {} vs {}", b, c, i, x, y
                );
            }
        }
    }

    /// The f32 and int8 batched applies stay within the engines' standing
    /// parity bounds of the f64 reference (1e-4 / 1e-2 relative), and each
    /// column also matches its own unbatched apply bit for bit.
    #[test]
    fn reduced_precision_apply_batch_parity(
        b in 1usize..9,
        seed in 0u64..200,
    ) {
        let Some(fx) = batched_apply_fixture() else { return Ok(()); };
        let n = fx.problem.num_unknowns();
        let residuals = batch_residuals(n, b, seed);
        let rs: Vec<&[f64]> = residuals.iter().map(|r| r.as_slice()).collect();
        let mut reference = vec![0.0f64; n];
        let mut unbatched = vec![0.0f64; n];
        for (precond, bound) in
            [(&fx.f32_precond, 1e-4), (&fx.int8_precond, 1e-2)]
        {
            let mut batched = vec![vec![0.0f64; n]; b];
            {
                let mut zs: Vec<&mut [f64]> =
                    batched.iter_mut().map(|z| z.as_mut_slice()).collect();
                precond.apply_batch(&rs, &mut zs);
            }
            for c in 0..b {
                fx.f64_precond.apply(&residuals[c], &mut reference);
                let err = sparse::vector::relative_error(&batched[c], &reference);
                prop_assert!(
                    err < bound,
                    "b={} column {}: relative error {} exceeds {}", b, c, err, bound
                );
                precond.apply(&residuals[c], &mut unbatched);
                for (x, y) in batched[c].iter().zip(unbatched.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// FEM assembly always yields a symmetric positive definite matrix with
    /// identity rows at Dirichlet nodes, for random domains and data.
    #[test]
    fn assembled_poisson_matrix_is_spd(seed in 0u64..40) {
        let problem = ddm_gnn::generate_problem(seed, 400);
        prop_assert!(problem.matrix.is_symmetric(1e-9));
        prop_assert!(sparse::SkylineCholesky::factor(&problem.matrix).is_ok());
        for i in 0..problem.num_unknowns() {
            if problem.dirichlet[i] {
                let (cols, vals) = problem.matrix.row(i);
                prop_assert_eq!(cols, &[i]);
                prop_assert_eq!(vals, &[1.0]);
            }
        }
    }
}
