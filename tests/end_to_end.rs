//! Integration tests spanning the whole workspace: mesh generation → FEM
//! assembly → partitioning → Schwarz decomposition → GNN preconditioning →
//! hybrid PCG solve.

use std::sync::Arc;

use ddm_gnn_suite::*;

use ddm::{AdditiveSchwarz, AsmLevel};
use fem::PoissonProblem;
use krylov::{preconditioned_conjugate_gradient, SolverOptions};
use meshgen::{generate_mesh, FormulaOneDomain, MeshingOptions, RandomBlobDomain};
use partition::partition_mesh_with_overlap;

/// The full numerical pipeline without any learned component: mesh a random
/// domain, assemble, partition, precondition with two-level ASM and solve.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn full_pipeline_with_exact_local_solvers() {
    let domain = RandomBlobDomain::generate(3, 20, 1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, 1500);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(3));
    assert!(mesh.is_connected());
    let problem = PoissonProblem::with_random_data(mesh, 1);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
    assert!(subdomains.len() >= 3);

    let asm =
        AdditiveSchwarz::new(&problem.matrix, subdomains, AsmLevel::TwoLevel).expect("ASM setup");
    let opts = SolverOptions::with_tolerance(1e-8);
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &asm, &opts);
    assert!(result.stats.converged());
    assert!(krylov::true_relative_residual(&problem.matrix, &result.x, &problem.rhs) < 1e-7);

    // Cross-check against a direct solve.
    let chol = sparse::SkylineCholesky::factor(&problem.matrix).expect("SPD matrix");
    let exact = chol.solve(&problem.rhs).unwrap();
    assert!(sparse::vector::relative_error(&result.x, &exact) < 1e-5);
}

/// The hybrid solver with the shipped (or fallback) GNN model converges on a
/// freshly generated problem it has never seen, and the solution matches the
/// exact-preconditioner run.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn hybrid_solver_end_to_end_on_unseen_problem() {
    let problem = ddm_gnn::generate_problem(12345, 1800);
    let model = ddm_gnn::load_pretrained()
        .unwrap_or_else(|| ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model);
    let solver = ddm_gnn::HybridSolver::new(
        model,
        ddm_gnn::HybridSolverConfig {
            subdomain_size: 200,
            overlap: 2,
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    let gnn = solver.solve(&problem).expect("DDM-GNN solve");
    let lu = solver.solve_with_exact_local_solver(&problem).expect("DDM-LU solve");
    assert!(gnn.stats.converged(), "hybrid solver must converge on unseen problems");
    assert!(lu.stats.converged());
    assert!(sparse::vector::relative_error(&gnn.x, &lu.x) < 1e-3);
    // The exact preconditioner is at least as good in iteration count.
    assert!(lu.stats.iterations <= gnn.stats.iterations);
}

/// Out-of-distribution geometry: the hybrid pipeline handles a domain with
/// holes (the Fig. 5 scenario at a reduced size).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn formula_one_domain_with_holes_is_solvable() {
    let domain = FormulaOneDomain::new(1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, 2500);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(2));
    assert!(mesh.num_boundary_nodes() > 100, "holes must contribute boundary nodes");
    let problem = PoissonProblem::with_random_data(mesh, 9);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 250, 2, 0);
    let asm = AdditiveSchwarz::new(&problem.matrix, subdomains, AsmLevel::TwoLevel).unwrap();
    let result = preconditioned_conjugate_gradient(
        &problem.matrix,
        &problem.rhs,
        None,
        &asm,
        &SolverOptions::with_tolerance(1e-9),
    );
    assert!(result.stats.converged());
}

/// Out-of-distribution sub-domain sizes (the Table I ablation): the same
/// trained model is reused with smaller and larger sub-domains and the hybrid
/// solver still converges.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn gnn_preconditioner_generalises_across_subdomain_sizes() {
    let model = Arc::new(
        ddm_gnn::load_pretrained()
            .unwrap_or_else(|| ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model),
    );
    let problem = ddm_gnn::generate_problem(777, 1500);
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(20_000);
    let cg = ddm_gnn::solve_cg(&problem, &opts);
    for subdomain_size in [120usize, 200, 350] {
        let subdomains = partition_mesh_with_overlap(&problem.mesh, subdomain_size, 2, 0);
        let outcome = ddm_gnn::solve_ddm_gnn(&problem, subdomains, Arc::clone(&model), true, &opts)
            .expect("DDM-GNN solve");
        assert!(outcome.stats.converged(), "must converge with sub-domain size {subdomain_size}");
        assert!(
            outcome.stats.iterations < cg.stats.iterations,
            "DDM-GNN ({}) should beat plain CG ({}) at sub-domain size {subdomain_size}",
            outcome.stats.iterations,
            cg.stats.iterations
        );
    }
}

/// Larger overlap must not hurt the exact Schwarz preconditioner (Table I's
/// overlap ablation).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn larger_overlap_does_not_degrade_ddm_lu() {
    let problem = ddm_gnn::generate_problem(55, 1500);
    let opts = SolverOptions::with_tolerance(1e-6);
    let sd2 = partition_mesh_with_overlap(&problem.mesh, 250, 2, 0);
    let sd4 = partition_mesh_with_overlap(&problem.mesh, 250, 4, 0);
    let r2 = ddm_gnn::solve_ddm_lu(&problem, sd2, true, &opts).unwrap();
    let r4 = ddm_gnn::solve_ddm_lu(&problem, sd4, true, &opts).unwrap();
    assert!(r2.stats.converged() && r4.stats.converged());
    assert!(r4.stats.iterations <= r2.stats.iterations + 1);
}

/// The dataset → training → preconditioning loop is exercised end to end with
/// a tiny configuration (independent of the shipped pre-trained weights).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn small_training_pipeline_produces_working_preconditioner() {
    let config = ddm_gnn::PipelineConfig {
        dss: gnn::DssConfig { num_blocks: 4, latent_dim: 6, alpha: 0.25 },
        dataset: gnn::DatasetConfig {
            num_global_problems: 1,
            target_nodes: 500,
            subdomain_size: 150,
            overlap: 2,
            max_iterations_per_problem: 8,
            max_samples: Some(40),
            seed: 21,
            ..Default::default()
        },
        training: gnn::TrainingConfig {
            epochs: 10,
            batch_size: 10,
            seed: 22,
            ..Default::default()
        },
        model_seed: 23,
    };
    let trained = ddm_gnn::train_model(&config);
    let problem = ddm_gnn::generate_problem(404, 700);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 150, 2, 0);
    let outcome = ddm_gnn::solve_ddm_gnn(
        &problem,
        subdomains,
        Arc::new(trained.model),
        true,
        &SolverOptions::with_tolerance(1e-6).max_iterations(20_000),
    )
    .unwrap();
    // Even a lightly trained model must preserve the convergence guarantee of
    // the outer Krylov method (the central claim of the hybrid approach).
    assert!(outcome.stats.converged());
}

/// A fast, always-on smoke test of the exact-solver pipeline: small mesh,
/// partition, two-level ASM, PCG.  Keeps end-to-end coverage in the debug
/// suite while the heavy tests above are `#[ignore]`d; the heavy variants
/// run under `cargo test --release -- --include-ignored` (see CI).
#[test]
fn small_pipeline_smoke() {
    let domain = RandomBlobDomain::generate(8, 16, 1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, 400);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(8));
    assert!(mesh.is_connected());
    let problem = PoissonProblem::with_random_data(mesh, 4);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 150, 2, 0);
    assert!(!subdomains.is_empty());

    let asm =
        AdditiveSchwarz::new(&problem.matrix, subdomains, AsmLevel::TwoLevel).expect("ASM setup");
    let result = preconditioned_conjugate_gradient(
        &problem.matrix,
        &problem.rhs,
        None,
        &asm,
        &SolverOptions::with_tolerance(1e-8),
    );
    assert!(result.stats.converged());
    assert!(krylov::true_relative_residual(&problem.matrix, &result.x, &problem.rhs) < 1e-7);
}

/// The degenerate `k == n` partition (one vertex per part — the shape
/// `partition_graph` produces whenever `num_parts >= num_vertices`) must flow
/// through the whole downstream pipeline: overlap growth, Schwarz
/// decomposition, the Nicolaides coarse space and a preconditioned solve.
/// Guards the `partition_graph` doc contract end to end — no out-of-range
/// part indices, no panics on singleton cores.
#[test]
fn singleton_partition_flows_through_decomposition_and_coarse_space() {
    let domain = RandomBlobDomain::generate(5, 14, 1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, 70);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(5));
    let problem = PoissonProblem::with_random_data(mesh, 6);
    // target_size 1 ⇒ k == n parts, every core a single vertex.
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 1, 1, 0);
    assert_eq!(subdomains.len(), problem.mesh.num_nodes());
    for sd in &subdomains {
        assert!(!sd.is_empty(), "k == n cores are singletons, never empty");
        assert!(sd.windows(2).all(|w| w[0] < w[1]), "sorted/unique node lists");
    }
    // The full two-level Schwarz pipeline accepts the degenerate shape…
    let asm = AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel)
        .expect("two-level ASM must accept singleton sub-domains");
    // …including the Nicolaides coarse space built directly from it.
    let decomp = ddm::Decomposition::new(&problem.matrix, subdomains);
    let coarse = ddm::NicolaidesCoarseSpace::new(&problem.matrix, &decomp.restrictions)
        .expect("coarse space must accept singleton sub-domains");
    assert_eq!(coarse.dim(), decomp.num_subdomains());
    let result = preconditioned_conjugate_gradient(
        &problem.matrix,
        &problem.rhs,
        None,
        &asm,
        &SolverOptions::with_tolerance(1e-8),
    );
    assert!(result.stats.converged(), "singleton-sub-domain ASM solve must converge");
    assert!(krylov::true_relative_residual(&problem.matrix, &result.x, &problem.rhs) < 1e-7);
}

/// The hybrid GNN-preconditioned solve at smoke-test size, exercised with the
/// shipped pre-trained model when present (skipped-by-fallback otherwise: an
/// untrained fallback would make this test slow, which is the heavy tests'
/// job).
#[test]
fn small_gnn_smoke_with_pretrained_model() {
    let Some(model) = ddm_gnn::load_pretrained() else {
        eprintln!("no pretrained model shipped; covered by the release-only heavy tests");
        return;
    };
    let problem = ddm_gnn::generate_problem(42, 500);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 150, 2, 0);
    let outcome = ddm_gnn::solve_ddm_gnn(
        &problem,
        subdomains,
        Arc::new(model),
        true,
        &SolverOptions::with_tolerance(1e-6).max_iterations(5_000),
    )
    .expect("DDM-GNN solve");
    assert!(outcome.stats.converged());
}

/// The f32 inference engine inside the preconditioner: on a fresh ~1800-node
/// problem the single-precision hybrid solver must converge with an iteration
/// count within +10% of the f64 baseline (the acceptance bound of the f32
/// mode — the flexible outer PCG absorbs the single-precision perturbation),
/// and its solution must agree with the f64 one to well below the solver
/// tolerance.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn f32_preconditioner_iteration_count_within_ten_percent_of_f64() {
    let model = Arc::new(
        ddm_gnn::load_pretrained()
            .unwrap_or_else(|| ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model),
    );
    let problem = ddm_gnn::generate_problem(991, 1800);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 200, 2, 0);
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(20_000);
    let o64 = ddm_gnn::solve_ddm_gnn_with_precision(
        &problem,
        subdomains.clone(),
        Arc::clone(&model),
        true,
        ddm_gnn::Precision::F64,
        &opts,
    )
    .expect("f64 DDM-GNN solve");
    let o32 = ddm_gnn::solve_ddm_gnn_with_precision(
        &problem,
        subdomains,
        Arc::clone(&model),
        true,
        ddm_gnn::Precision::F32,
        &opts,
    )
    .expect("f32 DDM-GNN solve");
    assert!(o64.stats.converged() && o32.stats.converged());
    let cap = o64.stats.iterations + o64.stats.iterations.div_ceil(10);
    assert!(
        o32.stats.iterations <= cap,
        "f32 preconditioner took {} iterations vs f64 {} (+10% cap {})",
        o32.stats.iterations,
        o64.stats.iterations,
        cap
    );
    assert!(krylov::true_relative_residual(&problem.matrix, &o32.x, &problem.rhs) < 1e-5);
    assert!(sparse::vector::relative_error(&o32.x, &o64.x) < 1e-4);
}

/// The quantised (int8-weight / bf16-stream) inference engine inside the
/// preconditioner: on a fresh ~1800-node problem the quantised hybrid solver
/// must converge with an iteration count within +15% of the f64 baseline
/// (the acceptance bound of the int8 mode — the ~1e-3 relative quantisation
/// perturbation is absorbed by the flexible outer PCG), and its solution
/// must agree with the f64 one to well below the solver tolerance.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn int8_preconditioner_iteration_count_within_fifteen_percent_of_f64() {
    let model = Arc::new(
        ddm_gnn::load_pretrained()
            .unwrap_or_else(|| ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model),
    );
    let problem = ddm_gnn::generate_problem(991, 1800);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 200, 2, 0);
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(20_000);
    let o64 = ddm_gnn::solve_ddm_gnn_with_precision(
        &problem,
        subdomains.clone(),
        Arc::clone(&model),
        true,
        ddm_gnn::Precision::F64,
        &opts,
    )
    .expect("f64 DDM-GNN solve");
    let oq = ddm_gnn::solve_ddm_gnn_with_precision(
        &problem,
        subdomains,
        Arc::clone(&model),
        true,
        ddm_gnn::Precision::Int8,
        &opts,
    )
    .expect("int8 DDM-GNN solve");
    assert!(o64.stats.converged() && oq.stats.converged());
    let cap = o64.stats.iterations + (15 * o64.stats.iterations).div_ceil(100);
    assert!(
        oq.stats.iterations <= cap,
        "int8 preconditioner took {} iterations vs f64 {} (+15% cap {})",
        oq.stats.iterations,
        o64.stats.iterations,
        cap
    );
    assert!(krylov::true_relative_residual(&problem.matrix, &oq.x, &problem.rhs) < 1e-5);
    assert!(sparse::vector::relative_error(&oq.x, &o64.x) < 1e-4);
}

/// Multi-right-hand-side batched solve at n ≈ 9k: `solve_ddm_gnn_batch` with
/// b = 4 distinct right-hand sides must produce per-column `SolveStats`
/// (iterations, residual history) and solutions **bit-identical** to four
/// independent `solve_ddm_gnn` runs — and the whole comparison must hold at
/// 1 and 4 rayon threads (the batched panel kernels keep each column's
/// ascending accumulation order, so neither batching nor the thread count may
/// move a single bit).  Like the determinism suite, each thread count runs in
/// a child process because the pool size is fixed per process.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn batched_solve_matches_independent_solves_at_1_and_4_threads() {
    const CHILD_ENV: &str = "DDM_GNN_BATCH_E2E_CHILD";
    const OUT_ENV: &str = "DDM_GNN_BATCH_E2E_OUT";

    // Child mode: run the batch-vs-sequential comparison at the inherited
    // RAYON_NUM_THREADS and write a signature of the per-column histories.
    if std::env::var(CHILD_ENV).is_ok() {
        let out = std::env::var(OUT_ENV).expect("child needs the output path");
        let model =
            Arc::new(ddm_gnn::load_pretrained().unwrap_or_else(|| {
                ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model
            }));
        let problem = ddm_gnn::generate_problem(2024, 9000);
        let n = problem.num_unknowns();
        assert!(n > 8000, "problem must be ~9k unknowns, got {n}");
        let subdomains = partition_mesh_with_overlap(&problem.mesh, 250, 2, 0);
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(2000);
        // Four distinct right-hand sides: the assembled one plus three
        // deterministic synthetic loads.
        let mut rhss = vec![problem.rhs.clone()];
        for c in 1..4usize {
            rhss.push((0..n).map(|i| ((i * c) as f64 * 0.13 + c as f64).sin()).collect());
        }
        let rs: Vec<&[f64]> = rhss.iter().map(|r| r.as_slice()).collect();
        let batch = ddm_gnn::solve_ddm_gnn_batch(
            &problem,
            subdomains.clone(),
            Arc::clone(&model),
            true,
            ddm_gnn::Precision::F64,
            &rs,
            &opts,
        )
        .expect("batched DDM-GNN solve");
        assert_eq!(batch.results.len(), 4);

        let mut signature = String::new();
        for (c, rhs) in rhss.iter().enumerate() {
            let single_problem = PoissonProblem { rhs: rhs.clone(), ..problem.clone() };
            let single = ddm_gnn::solve_ddm_gnn(
                &single_problem,
                subdomains.clone(),
                Arc::clone(&model),
                true,
                &opts,
            )
            .expect("independent DDM-GNN solve");
            let col = &batch.results[c];
            assert!(single.stats.converged(), "column {c} must converge independently");
            assert!(col.stats.converged(), "column {c} must converge in the batch");
            assert_eq!(
                col.stats.iterations, single.stats.iterations,
                "column {c} iteration count differs from the independent solve"
            );
            let (bh, sh) = (col.stats.history.norms(), single.stats.history.norms());
            assert_eq!(bh.len(), sh.len(), "column {c} history length differs");
            for (i, (x, y)) in bh.iter().zip(sh.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "column {c} residual history entry {i} differs: {x} vs {y}"
                );
            }
            for (i, (x, y)) in col.x.iter().zip(single.x.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "column {c} solution entry {i} differs");
            }
            use std::fmt::Write as _;
            let _ = write!(signature, "col{c}:");
            for v in bh {
                let _ = write!(signature, "{:016x}", v.to_bits());
            }
            let _ = writeln!(signature);
        }
        std::fs::write(out, signature).expect("child cannot write signature");
        return;
    }

    let exe = std::env::current_exe().expect("cannot locate test executable");
    let mut signatures = Vec::new();
    for threads in ["1", "4"] {
        let out = std::env::temp_dir().join(format!("ddm_gnn_batch_e2e_{threads}.sig"));
        let status = std::process::Command::new(&exe)
            .args([
                "batched_solve_matches_independent_solves_at_1_and_4_threads",
                "--exact",
                "--test-threads=1",
                "--include-ignored",
            ])
            .env(CHILD_ENV, "1")
            .env(OUT_ENV, &out)
            .env("RAYON_NUM_THREADS", threads)
            .status()
            .expect("failed to spawn batched-solve child");
        assert!(status.success(), "child with {threads} threads failed");
        let sig = std::fs::read_to_string(&out).expect("missing child signature");
        assert!(!sig.is_empty(), "empty signature at {threads} threads");
        let _ = std::fs::remove_file(&out);
        signatures.push((threads, sig));
    }
    let (_, reference) = &signatures[0];
    let (threads, sig) = &signatures[1];
    assert_eq!(
        sig, reference,
        "batched residual histories at RAYON_NUM_THREADS={threads} differ from the 1-thread run"
    );
}

/// The multi-level hierarchy at scale (n ≈ 24k): the smoothed-aggregation
/// coarse path builds three or more levels, the multilevel DDM-LU solver
/// converges, and its iteration count stays within a small margin of the
/// two-level Nicolaides baseline (the point of the hierarchy is to keep the
/// coarse solve cheap without giving up convergence).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy end-to-end test: opt in with `cargo test --release -- --include-ignored`"
)]
fn multilevel_hierarchy_at_scale() {
    let problem = ddm_gnn::generate_problem(4242, 24_000);
    let n = problem.num_unknowns();
    assert!(n > 20_000, "problem must be genuinely large, got n = {n}");

    // The hierarchy alone: ≥3 levels, strictly decreasing dimensions, modest
    // operator complexity.
    let config = ddm_gnn::MultilevelConfig::default();
    let hierarchy = ddm::Hierarchy::build(&problem.matrix, &config).expect("hierarchy build");
    assert!(
        hierarchy.num_levels() >= 3,
        "expected a true multi-level hierarchy at n = {n}, got {} levels (dims {:?})",
        hierarchy.num_levels(),
        hierarchy.level_dims()
    );
    let dims = hierarchy.level_dims();
    assert!(dims.windows(2).all(|w| w[1] < w[0]), "level dims must strictly decrease: {dims:?}");
    assert!(*dims.last().unwrap() <= config.coarsest_max_size, "dims {dims:?}");
    assert!(
        hierarchy.operator_complexity() < 3.0,
        "operator complexity {} too high",
        hierarchy.operator_complexity()
    );

    // Full solves: two-level Nicolaides baseline vs multilevel coarse path.
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 400, 2, 0);
    let opts = SolverOptions::with_tolerance(1e-8);
    let two_level = ddm_gnn::solve_ddm_lu(&problem, subdomains.clone(), true, &opts)
        .expect("two-level DDM-LU solve");
    let multi = ddm_gnn::solve_ddm_lu_multilevel(&problem, subdomains, &config, &opts)
        .expect("multilevel DDM-LU solve");
    assert!(two_level.stats.converged() && multi.stats.converged());
    assert!(krylov::true_relative_residual(&problem.matrix, &multi.x, &problem.rhs) < 1e-7);
    assert!(sparse::vector::relative_error(&multi.x, &two_level.x) < 1e-5);
    // The hierarchy's V-cycle must be a genuinely useful coarse component:
    // iteration counts stay in the same ballpark as the Nicolaides baseline.
    assert!(
        multi.stats.iterations <= two_level.stats.iterations * 2,
        "multilevel took {} iterations vs two-level {}",
        multi.stats.iterations,
        two_level.stats.iterations
    );
}
