//! Schedule-invariance property suite for the seeded worker-pool fuzzer.
//!
//! Compiled only under `--cfg detsan`.  When a schedule seed is installed
//! (`sanitizer::set_schedule_seed`), the rayon shim's pool permutes the pop
//! order of every submitted batch and injects submitter/worker handoffs.
//! The determinism contract says results must not notice: every parallel
//! reduction stores per-chunk partials *by chunk index* and merges them in
//! index order, so `sum` / `reduce` / `collect` outputs must stay
//! bit-identical no matter how the schedule is permuted.
//!
//! Lengths are drawn from `1..=4096`, which sweeps every chunk count the
//! shim can produce (`len.clamp(1, NUM_CHUNKS)`, i.e. 1..=16) including the
//! single-chunk and short-batch edge cases.  Across the fixed regression
//! test and the property cases, well over 64 distinct fuzzed seeds are
//! exercised per run.

#![cfg(detsan)]

use std::sync::{Mutex, PoisonError};

use proptest::prelude::*;
use rayon::prelude::*;
use sanitizer::{clear_schedule_seed, set_schedule_seed};

/// The schedule seed is process-global; serialise the tests in this binary
/// so they cannot observe each other's seeds.
static SEED_LOCK: Mutex<()> = Mutex::new(());

/// Golden-ratio stride so consecutive `k` produce unrelated seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// `sum` through a non-trivial map — float addition is non-associative, so
/// any chunk-merge-order change would show up in the bits.
fn par_sum(data: &[f64]) -> u64 {
    data.par_iter().map(|&x| x * 1.000_000_1 + 0.25).sum::<f64>().to_bits()
}

/// Explicit identity/op reduction over the raw values.
fn par_reduce(data: &[f64]) -> u64 {
    data.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b).to_bits()
}

/// Order-sensitive by construction: a permuted chunk concatenation would
/// reorder elements, not just perturb a rounding term.
fn par_collect(data: &[f64]) -> Vec<u64> {
    bits(&data.par_iter().map(|&x| x.sin() * x).collect::<Vec<f64>>())
}

/// Fixed-input regression: one mid-size vector, 64 fuzzed schedules, all
/// three reductions bit-identical to the unfuzzed FIFO baseline.
#[test]
fn fixed_input_bit_identical_across_64_fuzzed_schedules() {
    let _guard = SEED_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    clear_schedule_seed();
    let data: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.731).sin() / (i as f64 + 1.0)).collect();
    let (want_sum, want_red, want_col) = (par_sum(&data), par_reduce(&data), par_collect(&data));

    for k in 0..64u64 {
        let seed = 0xC0FF_EE00_D15E_A5E5 ^ k.wrapping_mul(SEED_STRIDE);
        set_schedule_seed(seed);
        assert_eq!(par_sum(&data), want_sum, "sum diverged under schedule seed {seed:#x}");
        assert_eq!(par_reduce(&data), want_red, "reduce diverged under schedule seed {seed:#x}");
        assert_eq!(par_collect(&data), want_col, "collect diverged under schedule seed {seed:#x}");
    }
    clear_schedule_seed();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random data, random length (and therefore random chunk count), eight
    /// fuzzed schedules per case derived from a random base seed.
    #[test]
    fn par_ops_bit_identical_under_fuzzed_schedules(
        data in proptest::collection::vec(-1.0e3f64..1.0e3, 1..4096),
        base_seed in 0u64..u64::MAX,
    ) {
        let _guard = SEED_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear_schedule_seed();
        let want_sum = par_sum(&data);
        let want_red = par_reduce(&data);
        let want_col = par_collect(&data);

        for k in 0..8u64 {
            let seed = base_seed ^ k.wrapping_mul(SEED_STRIDE);
            set_schedule_seed(seed);
            prop_assert!(par_sum(&data) == want_sum, "sum diverged under seed {:#x}", seed);
            prop_assert!(par_reduce(&data) == want_red, "reduce diverged under seed {:#x}", seed);
            prop_assert!(par_collect(&data) == want_col, "collect diverged under seed {:#x}", seed);
        }
        clear_schedule_seed();
    }
}
