//! The always-compiled sanitizer engine: lock-site registry, per-thread
//! held-lock stacks, the global lock-order graph with cycle detection,
//! same-batch contention tracking and the findings store.
//!
//! The engine itself carries no `cfg(detsan)` gates — it is plain, unit-
//! testable code.  What the cfg controls is whether anything *calls* it:
//! [`crate::TrackedMutex`] and the `shims/rayon` pool only hook in when the
//! workspace is compiled with `--cfg detsan` (and, for tracking, the
//! `DETSAN=1` runtime switch or [`force_tracking`]).
//!
//! All global state uses poison-recovering `std` mutexes (never a
//! `TrackedMutex` — the engine must not recurse into itself) and `BTreeMap`
//! storage so reports are deterministic.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use lint::{Report, Violation};

// ---------------------------------------------------------------------------
// Runtime switch
// ---------------------------------------------------------------------------

static FORCE_TRACKING: AtomicBool = AtomicBool::new(false);
static ENV_TRACKING: OnceLock<bool> = OnceLock::new();

/// Whether lock-order / contention tracking is on.  Under `--cfg detsan`
/// this is consulted on every `TrackedMutex::lock`; it is `true` when the
/// process was started with `DETSAN=1` (read once) or after
/// [`force_tracking`]`(true)`.
pub fn tracking_enabled() -> bool {
    *ENV_TRACKING
        .get_or_init(|| std::env::var("DETSAN").map(|v| v == "1" || v == "true").unwrap_or(false))
        || FORCE_TRACKING.load(Ordering::Relaxed)
}

/// Programmatic override of the `DETSAN` env switch (for tests and the
/// detsan suite binary).  `force_tracking(false)` only clears the override,
/// not the env switch.
pub fn force_tracking(on: bool) {
    FORCE_TRACKING.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Lock-site registry
// ---------------------------------------------------------------------------

/// Identity of one lock *site* (a `TrackedMutex` construction point).  All
/// instances created at the same labelled site — e.g. every element of a
/// `Vec<TrackedMutex<Scratch>>` — share a `SiteId`; lock ordering is a
/// property of site classes, while contention is tracked per instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteId(u32);

#[derive(Clone, Debug)]
struct SiteInfo {
    label: &'static str,
    file: &'static str,
    line: u32,
    commutative: Option<&'static str>,
}

/// Labels that have been *reviewed* as safe to annotate commutative: the
/// protected state must be order-insensitive within one parallel batch.
/// An unknown commutative label is itself a finding
/// (`unreviewed-commutative`) — annotations are auditable, like
/// `detlint::allow`.  The `test::` prefix is reserved for test fixtures.
pub const REVIEWED_COMMUTATIVE: &[&str] = &[
    "ddm::asm::AdditiveSchwarz::faults",
    "ddm_gnn::preconditioner::DdmGnnPreconditioner::faults",
    "gnn::plan::ScratchPool::state",
];

fn sites() -> &'static Mutex<Vec<SiteInfo>> {
    static SITES: OnceLock<Mutex<Vec<SiteInfo>>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register (or look up) the lock site for a construction point.  Sites are
/// deduplicated by `(label, file, line)` so a loop constructing many
/// instances yields one site.
pub fn register_site(
    label: &'static str,
    file: &'static str,
    line: u32,
    commutative: Option<&'static str>,
) -> SiteId {
    let mut sites = sites().lock().unwrap_or_else(PoisonError::into_inner);
    for (i, s) in sites.iter().enumerate() {
        if s.label == label && s.file == file && s.line == line {
            return SiteId(i as u32);
        }
    }
    if commutative.is_some()
        && !REVIEWED_COMMUTATIVE.contains(&label)
        && !label.starts_with("test::")
    {
        push_finding(Finding {
            rule: "unreviewed-commutative",
            label: label.to_string(),
            file: file.to_string(),
            line,
            message: format!(
                "commutative annotation on `{label}` is not in \
                 sanitizer::runtime::REVIEWED_COMMUTATIVE; review the site and add its \
                 label (annotations are audited like detlint::allow)"
            ),
            allow_reason: None,
        });
    }
    let id = SiteId(sites.len() as u32);
    sites.push(SiteInfo { label, file, line, commutative });
    id
}

fn site_info(id: SiteId) -> SiteInfo {
    let sites = sites().lock().unwrap_or_else(PoisonError::into_inner);
    sites.get(id.0 as usize).cloned().unwrap_or(SiteInfo {
        label: "<unregistered>",
        file: "<unknown>",
        line: 0,
        commutative: None,
    })
}

fn describe(id: SiteId) -> String {
    let s = site_info(id);
    format!("`{}` ({}:{})", s.label, s.file, s.line)
}

// ---------------------------------------------------------------------------
// Batch / job identity
// ---------------------------------------------------------------------------

static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

/// Allocate the identity of one pool batch (ids start at 1; 0 is the
/// "no batch yet" sentinel in the contention state).
pub fn next_batch_id() -> u64 {
    NEXT_BATCH.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Innermost-last stack of (batch, job) identities; a stack because a
    /// job that runs a nested parallel section helps drain inner jobs on
    /// the same thread.
    static JOBS: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread stack of currently held tracked locks (site, instance).
    static HELD: RefCell<Vec<(SiteId, u64)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one job's identity on the executing thread.
pub struct JobScope(());

impl Drop for JobScope {
    fn drop(&mut self) {
        JOBS.with(|j| {
            j.borrow_mut().pop();
        });
    }
}

/// Mark the current thread as executing job `job` of batch `batch` until
/// the returned scope drops.  Called by the pool around each job.
pub fn enter_job(batch: u64, job: u32) -> JobScope {
    JOBS.with(|j| j.borrow_mut().push((batch, job)));
    JobScope(())
}

/// The (batch, job) identity the current thread is executing, if any.
pub fn current_job() -> Option<(u64, u32)> {
    JOBS.with(|j| j.borrow().last().copied())
}

// ---------------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Graph {
    /// `from -> {to}`: `to` was acquired while `from` was held.
    adj: BTreeMap<SiteId, BTreeSet<SiteId>>,
    /// Representative acquisition context per edge, for reporting.
    chains: BTreeMap<(SiteId, SiteId), String>,
    /// Canonicalised node sets of cycles already reported.
    reported: BTreeSet<Vec<SiteId>>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// Record an acquisition of `site` (instance `instance`) on this thread:
/// adds a lock-order edge from the currently held top lock (if any), runs
/// cycle detection, then pushes onto the held stack.
pub fn on_acquire(site: SiteId, instance: u64) {
    let held: Vec<(SiteId, u64)> = HELD.with(|h| h.borrow().clone());
    if let Some(&(top, _)) = held.last() {
        record_edge(top, site, &held);
    }
    HELD.with(|h| h.borrow_mut().push((site, instance)));
}

/// Record the release of `site` / `instance` (called from the guard's
/// `Drop`; tolerates out-of-LIFO release orders).
pub fn on_release(site: SiteId, instance: u64) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h.iter().rposition(|&(s, i)| s == site && i == instance) {
            h.remove(pos);
        }
    });
}

fn chain_text(held: &[(SiteId, u64)], acquiring: SiteId) -> String {
    let held_txt: Vec<String> = held.iter().map(|&(s, _)| describe(s)).collect();
    format!("holding [{}] then acquiring {}", held_txt.join(", "), describe(acquiring))
}

/// Deterministic DFS for a node path `start -> … -> goal` in `adj`.
fn find_path(
    adj: &BTreeMap<SiteId, BTreeSet<SiteId>>,
    start: SiteId,
    goal: SiteId,
) -> Option<Vec<SiteId>> {
    if start == goal {
        return Some(vec![start]);
    }
    let mut visited = BTreeSet::new();
    visited.insert(start);
    let mut stack = vec![(start, vec![start])];
    while let Some((node, path)) = stack.pop() {
        let Some(nexts) = adj.get(&node) else { continue };
        for &n in nexts {
            let mut p = path.clone();
            p.push(n);
            if n == goal {
                return Some(p);
            }
            if visited.insert(n) {
                stack.push((n, p));
            }
        }
    }
    None
}

fn record_edge(from: SiteId, to: SiteId, held: &[(SiteId, u64)]) {
    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    if g.adj.get(&from).is_some_and(|s| s.contains(&to)) {
        return;
    }
    let new_chain = chain_text(held, to);
    // A pre-existing path `to -> … -> from` means the new edge closes a
    // lock-order cycle: two code paths acquire these sites in opposite
    // orders, which can deadlock under an adversarial schedule.
    if let Some(path) = find_path(&g.adj, to, from) {
        let mut key: Vec<SiteId> = path.clone();
        key.sort_unstable();
        key.dedup();
        if g.reported.insert(key) {
            let mut msg = format!(
                "lock-order inversion: acquiring {} while holding {} conflicts with the \
                 previously recorded order {}",
                describe(to),
                describe(from),
                path.iter().map(|&s| describe(s)).collect::<Vec<_>>().join(" -> "),
            );
            msg.push_str(&format!("; chain 1 (new): {new_chain}"));
            for w in path.windows(2) {
                if let Some(chain) = g.chains.get(&(w[0], w[1])) {
                    msg.push_str(&format!(
                        "; chain 2 (recorded, {} -> {}): {}",
                        describe(w[0]),
                        describe(w[1]),
                        chain
                    ));
                }
            }
            if path.len() == 1 {
                msg.push_str(
                    "; (self-cycle: two locks of the same site class held simultaneously \
                     — instances of one class must never nest)",
                );
            }
            let info = site_info(to);
            push_finding(Finding {
                rule: "lock-order-cycle",
                label: info.label.to_string(),
                file: info.file.to_string(),
                line: info.line,
                message: msg,
                allow_reason: None,
            });
        }
    }
    g.adj.entry(from).or_default().insert(to);
    g.chains.insert((from, to), new_chain);
}

// ---------------------------------------------------------------------------
// Same-batch contention
// ---------------------------------------------------------------------------

/// Per-`TrackedMutex`-instance contention state.  Accesses are serialized
/// by the tracked mutex itself (the owner records *while holding it*), so
/// relaxed atomics suffice.
pub struct ContentionState {
    batch: AtomicU64,
    first_job: AtomicU32,
    flagged_batch: AtomicBool,
    reported: AtomicBool,
}

impl ContentionState {
    pub const fn new() -> Self {
        ContentionState {
            batch: AtomicU64::new(0),
            first_job: AtomicU32::new(0),
            flagged_batch: AtomicBool::new(false),
            reported: AtomicBool::new(false),
        }
    }
}

impl Default for ContentionState {
    fn default() -> Self {
        Self::new()
    }
}

/// Record an acquisition of `site` by the current job (must be called while
/// holding the tracked mutex).  Two *distinct* jobs of the same batch
/// acquiring the same instance is an order-sensitivity hazard: whichever
/// job gets the lock first is schedule-dependent.  The check is
/// acquisition-set based (not blocking-based), so it is deterministic and
/// fires even on a single-thread pool.
pub fn note_contention(site: SiteId, st: &ContentionState) {
    let Some((batch, job)) = current_job() else { return };
    if st.batch.load(Ordering::Relaxed) != batch {
        st.batch.store(batch, Ordering::Relaxed);
        st.first_job.store(job, Ordering::Relaxed);
        st.flagged_batch.store(false, Ordering::Relaxed);
        return;
    }
    if st.first_job.load(Ordering::Relaxed) == job || st.flagged_batch.load(Ordering::Relaxed) {
        return;
    }
    st.flagged_batch.store(true, Ordering::Relaxed);
    if st.reported.swap(true, Ordering::Relaxed) {
        return; // one finding per instance per process
    }
    let info = site_info(site);
    let (message, allow_reason) = match info.commutative {
        Some(reason) => (
            format!(
                "same-batch contention on commutative site `{}` (jobs {} and {} of batch \
                 {} both acquired it) — suppressed by reviewed annotation",
                info.label,
                st.first_job.load(Ordering::Relaxed),
                job,
                batch
            ),
            Some(reason.to_string()),
        ),
        None => (
            format!(
                "order-sensitivity hazard: jobs {} and {} of parallel batch {} both \
                 acquired `{}` — the acquisition order is schedule-dependent; make the \
                 protected update commutative and annotate the site with \
                 TrackedMutex::new_commutative, or restructure so each job touches \
                 disjoint state",
                st.first_job.load(Ordering::Relaxed),
                job,
                batch,
                info.label
            ),
            None,
        ),
    };
    push_finding(Finding {
        rule: "batch-order-sensitivity",
        label: info.label.to_string(),
        file: info.file.to_string(),
        line: info.line,
        message,
        allow_reason,
    });
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One sanitizer finding (live, or suppressed by a reviewed `commutative`
/// annotation — the runtime analogue of a suppressed detlint violation).
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub label: String,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub allow_reason: Option<String>,
}

fn findings_store() -> &'static Mutex<Vec<Finding>> {
    static FINDINGS: OnceLock<Mutex<Vec<Finding>>> = OnceLock::new();
    FINDINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn push_finding(f: Finding) {
    findings_store().lock().unwrap_or_else(PoisonError::into_inner).push(f);
}

/// Snapshot of all findings recorded so far in this process.
pub fn findings() -> Vec<Finding> {
    findings_store().lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Render the findings through `crates/lint`'s report machinery.
/// `files_scanned` is the number of distinct files with registered lock
/// sites; suppressed (commutative) findings land in the report's `allowed`
/// section with their annotation reason.
pub fn report() -> Report {
    let mut files: BTreeSet<&'static str> = BTreeSet::new();
    {
        let sites = sites().lock().unwrap_or_else(PoisonError::into_inner);
        for s in sites.iter() {
            files.insert(s.file);
        }
    }
    let mut report = Report {
        files_scanned: files.len(),
        findings: findings()
            .into_iter()
            .map(|f| Violation {
                rule: f.rule.to_string(),
                file: f.file,
                line: f.line,
                message: f.message,
                snippet: f.label,
                allow_reason: f.allow_reason,
            })
            .collect(),
    };
    report.findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_label<'a>(fs: &'a [Finding], label: &str) -> Vec<&'a Finding> {
        fs.iter().filter(|f| f.message.contains(label)).collect()
    }

    #[test]
    fn sites_deduplicate_by_construction_point() {
        let a = register_site("test::dedup-a", "f.rs", 1, None);
        let b = register_site("test::dedup-a", "f.rs", 1, None);
        let c = register_site("test::dedup-c", "f.rs", 2, None);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn inverted_lock_pair_is_reported_as_a_cycle() {
        let a = register_site("test::cycle-a", "cycle.rs", 10, None);
        let b = register_site("test::cycle-b", "cycle.rs", 20, None);
        // Order A -> B …
        on_acquire(a, 1);
        on_acquire(b, 2);
        on_release(b, 2);
        on_release(a, 1);
        // … then the inversion B -> A.
        on_acquire(b, 2);
        on_acquire(a, 1);
        on_release(a, 1);
        on_release(b, 2);
        let fs = findings();
        let hits = by_label(&fs, "test::cycle-a");
        assert_eq!(hits.len(), 1, "exactly one cycle finding expected: {hits:?}");
        assert_eq!(hits[0].rule, "lock-order-cycle");
        assert!(
            hits[0].message.contains("test::cycle-b"),
            "both chains named: {}",
            hits[0].message
        );
        assert!(hits[0].message.contains("chain 1"), "{}", hits[0].message);
        assert!(hits[0].message.contains("chain 2"), "{}", hits[0].message);
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let a = register_site("test::order-a", "order.rs", 1, None);
        let b = register_site("test::order-b", "order.rs", 2, None);
        for _ in 0..3 {
            on_acquire(a, 1);
            on_acquire(b, 2);
            on_release(b, 2);
            on_release(a, 1);
        }
        assert!(by_label(&findings(), "test::order-a").is_empty());
    }

    #[test]
    fn transitive_inversion_is_detected() {
        let a = register_site("test::tri-a", "tri.rs", 1, None);
        let b = register_site("test::tri-b", "tri.rs", 2, None);
        let c = register_site("test::tri-c", "tri.rs", 3, None);
        // A -> B, B -> C, then C -> A closes the 3-cycle.
        on_acquire(a, 1);
        on_acquire(b, 2);
        on_release(b, 2);
        on_release(a, 1);
        on_acquire(b, 2);
        on_acquire(c, 3);
        on_release(c, 3);
        on_release(b, 2);
        on_acquire(c, 3);
        on_acquire(a, 1);
        on_release(a, 1);
        on_release(c, 3);
        let fs = findings();
        let hits = by_label(&fs, "test::tri-c");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "lock-order-cycle");
    }

    #[test]
    fn nesting_two_instances_of_one_site_class_is_a_self_cycle() {
        let a = register_site("test::selfloop", "selfloop.rs", 1, None);
        on_acquire(a, 1);
        on_acquire(a, 2);
        on_release(a, 2);
        on_release(a, 1);
        let fs = findings();
        let hits = by_label(&fs, "test::selfloop");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("self-cycle"), "{}", hits[0].message);
    }

    #[test]
    fn same_batch_contention_is_flagged_once() {
        let s = register_site("test::contend", "contend.rs", 1, None);
        let st = ContentionState::new();
        let batch = next_batch_id();
        {
            let _j = enter_job(batch, 0);
            note_contention(s, &st);
        }
        {
            let _j = enter_job(batch, 1);
            note_contention(s, &st);
        }
        {
            let _j = enter_job(batch, 2);
            note_contention(s, &st);
        }
        let fs = findings();
        let hits = by_label(&fs, "test::contend");
        assert_eq!(hits.len(), 1, "one finding per instance: {hits:?}");
        assert_eq!(hits[0].rule, "batch-order-sensitivity");
        assert!(hits[0].allow_reason.is_none(), "unannotated site must be live");
    }

    #[test]
    fn same_job_reacquisition_is_not_contention() {
        let s = register_site("test::samejob", "samejob.rs", 1, None);
        let st = ContentionState::new();
        let batch = next_batch_id();
        let _j = enter_job(batch, 4);
        note_contention(s, &st);
        note_contention(s, &st);
        assert!(by_label(&findings(), "test::samejob").is_empty());
    }

    #[test]
    fn distinct_batches_do_not_contend() {
        let s = register_site("test::twobatch", "twobatch.rs", 1, None);
        let st = ContentionState::new();
        for job in [0u32, 1, 2] {
            let batch = next_batch_id();
            let _j = enter_job(batch, job);
            note_contention(s, &st);
        }
        assert!(by_label(&findings(), "test::twobatch").is_empty());
    }

    #[test]
    fn commutative_contention_is_suppressed_with_reason() {
        let s = register_site("test::commut", "commut.rs", 1, Some("interchangeable buffers"));
        let st = ContentionState::new();
        let batch = next_batch_id();
        {
            let _j = enter_job(batch, 0);
            note_contention(s, &st);
        }
        {
            let _j = enter_job(batch, 1);
            note_contention(s, &st);
        }
        let fs = findings();
        let hits = by_label(&fs, "test::commut");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].allow_reason.as_deref(), Some("interchangeable buffers"));
    }

    #[test]
    fn unreviewed_commutative_label_is_a_finding() {
        register_site("rogue::unreviewed-site", "rogue.rs", 7, Some("trust me"));
        let fs = findings();
        let hits = by_label(&fs, "rogue::unreviewed-site");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "unreviewed-commutative");
        // A test:: label is exempt.
        register_site("test::reviewed-enough", "ok.rs", 8, Some("fixture"));
        assert!(by_label(&findings(), "test::reviewed-enough").is_empty());
    }

    #[test]
    fn outside_a_job_nothing_is_recorded_for_contention() {
        let s = register_site("test::nojob", "nojob.rs", 1, None);
        let st = ContentionState::new();
        note_contention(s, &st);
        note_contention(s, &st);
        assert!(by_label(&findings(), "test::nojob").is_empty());
    }

    #[test]
    fn report_converts_findings_to_lint_violations() {
        let r = report();
        // Whatever other tests recorded, the conversion must be structurally
        // sound: every violation carries rule/file/snippet, and suppressed
        // entries carry reasons.
        for v in r.findings.iter() {
            assert!(!v.rule.is_empty());
            assert!(!v.file.is_empty());
        }
        let _ = r.render_human();
        let _ = r.render_json();
    }
}
