//! Seeded schedule fuzzing: a deterministic ChaCha8 stream, keyed per pool
//! batch, that the `shims/rayon` pool uses to permute job pop order and to
//! force submitter/worker handoffs.
//!
//! The point is adversarial determinism testing: if residual-history hashes
//! survive *every* seeded permutation of job execution order, the suite has
//! shown schedule-invariance — a strictly stronger property than the
//! lucky-FIFO thread-count-invariance it asserted before.  The fuzz itself
//! is fully deterministic: one `(seed, batch)` pair always yields the same
//! permutation and the same handoff coin flips.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed from the environment, read once per process.
fn env_seed() -> Option<u64> {
    static ENV: OnceLock<Option<u64>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DETSAN_SCHEDULE_SEED").ok().and_then(|v| v.trim().parse::<u64>().ok())
    })
}

static OVERRIDE_SET: AtomicBool = AtomicBool::new(false);
static OVERRIDE_SEED: AtomicU64 = AtomicU64::new(0);
static OVERRIDE_CLEARED: AtomicBool = AtomicBool::new(false);

/// Set the schedule-fuzz seed in-process (takes precedence over the
/// `DETSAN_SCHEDULE_SEED` env variable).  Used by the detsan suite to sweep
/// many seeds in one process.
pub fn set_schedule_seed(seed: u64) {
    OVERRIDE_SEED.store(seed, Ordering::Relaxed);
    OVERRIDE_CLEARED.store(false, Ordering::Relaxed);
    OVERRIDE_SET.store(true, Ordering::Relaxed);
}

/// Turn schedule fuzzing back off (also masks any env seed, so a suite can
/// interleave fuzzed and plain-FIFO phases).
pub fn clear_schedule_seed() {
    OVERRIDE_SET.store(false, Ordering::Relaxed);
    OVERRIDE_CLEARED.store(true, Ordering::Relaxed);
}

/// The active schedule-fuzz seed, if any.  `None` means the pool runs its
/// plain FIFO order.
pub fn schedule_seed() -> Option<u64> {
    if OVERRIDE_SET.load(Ordering::Relaxed) {
        return Some(OVERRIDE_SEED.load(Ordering::Relaxed));
    }
    if OVERRIDE_CLEARED.load(Ordering::Relaxed) {
        return None;
    }
    env_seed()
}

/// Per-batch deterministic randomness for the pool: job-order permutation
/// and handoff coin flips.
pub struct BatchRng {
    rng: ChaCha8Rng,
}

/// Derive the batch stream: the global seed is mixed with the batch id via
/// a splitmix-style odd multiplier so consecutive batches get unrelated
/// streams from one seed.
pub fn batch_rng(seed: u64, batch: u64) -> BatchRng {
    BatchRng { rng: ChaCha8Rng::seed_from_u64(seed ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
}

impl BatchRng {
    /// Fisher–Yates shuffle driven by the batch stream.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }

    /// One fair coin flip (used to force a submitter/worker handoff before
    /// each queue pop).
    pub fn coin(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_batch_give_the_same_permutation() {
        let mut a: Vec<u32> = (0..40).collect();
        let mut b: Vec<u32> = (0..40).collect();
        batch_rng(7, 3).shuffle(&mut a);
        batch_rng(7, 3).shuffle(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn different_batches_of_one_seed_diverge() {
        let mut a: Vec<u32> = (0..40).collect();
        let mut b: Vec<u32> = (0..40).collect();
        batch_rng(7, 3).shuffle(&mut a);
        batch_rng(7, 4).shuffle(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        batch_rng(42, 1).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn programmatic_seed_overrides_and_clears() {
        // Note: this test must not rely on the env var being unset — the
        // override path takes precedence either way.
        set_schedule_seed(99);
        assert_eq!(schedule_seed(), Some(99));
        set_schedule_seed(100);
        assert_eq!(schedule_seed(), Some(100));
        clear_schedule_seed();
        assert_eq!(schedule_seed(), None);
    }

    #[test]
    fn coins_are_deterministic_per_batch() {
        let mut a = batch_rng(11, 5);
        let mut b = batch_rng(11, 5);
        for _ in 0..64 {
            assert_eq!(a.coin(), b.coin());
        }
    }
}
