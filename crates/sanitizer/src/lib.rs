//! `detsan` — the workspace's deterministic concurrency sanitizer.
//!
//! detlint (PR 9) machine-checks the *source-level* determinism contracts;
//! this crate checks the *runtime* concurrency behaviour those contracts
//! rest on.  It has three parts:
//!
//! 1. **[`TrackedMutex`]** — a drop-in, poison-recovering wrapper over
//!    [`std::sync::Mutex`] that registers each lock site (label + file +
//!    line).  When tracking is on, every acquisition is recorded into a
//!    per-thread held-lock stack and a global lock-order graph with cycle
//!    detection: a lock-order inversion anywhere in the workspace becomes a
//!    reported potential deadlock naming both acquisition chains.
//! 2. **Parallel-batch contention tracking** — the `shims/rayon` pool tags
//!    every job with a (batch, job) identity.  If two *distinct* jobs of
//!    the same batch acquire the same `TrackedMutex` during that batch, the
//!    site is flagged as an order-sensitivity hazard (the runtime analogue
//!    of detlint's `float-reduce` rule) unless it carries a reviewed
//!    [`TrackedMutex::new_commutative`] annotation.  The definition is
//!    acquisition-based, not blocking-based, so it is schedule-independent
//!    and fires even on a single-thread pool.
//! 3. **Seeded schedule fuzzing** — [`schedule_seed`] (env
//!    `DETSAN_SCHEDULE_SEED`, or [`set_schedule_seed`] in-process) drives a
//!    ChaCha8 stream that the pool uses to deterministically permute job
//!    execution order and force submitter/worker handoffs, so the
//!    determinism suite can assert residual-history hashes are
//!    **schedule-invariant**, not merely thread-count-invariant.
//!
//! # Gating: zero cost when off
//!
//! All instrumentation is compiled in only under `--cfg detsan` (set via
//! `RUSTFLAGS`; the CI `sanitizer` job does this).  Without the cfg,
//! [`TrackedMutex`] is a `#[repr(transparent)]` newtype over `Mutex<T>`
//! whose `lock()` is exactly the poison-recovering lock the call sites used
//! before — no extra field, no extra branch (pinned by the
//! `tests/zero_cost.rs` size/type assertions).  Under the cfg, tracking
//! additionally requires the runtime switch (`DETSAN=1` or
//! [`force_tracking`]); schedule fuzzing requires a seed.
//!
//! # Findings
//!
//! Findings reuse `crates/lint`'s report machinery ([`report`] renders a
//! [`lint::Report`], human or `--json`).  Hazard classes:
//!
//! | rule                      | meaning                                                    |
//! |---------------------------|------------------------------------------------------------|
//! | `lock-order-cycle`        | inverted acquisition order between lock sites              |
//! | `batch-order-sensitivity` | same-batch contention on an unannotated site               |
//! | `unreviewed-commutative`  | `new_commutative` label not in the reviewed list           |
//!
//! A clean workspace reports zero findings; `commutative`-annotated
//! contention is reported as suppressed (with its reason), mirroring
//! `detlint::allow`.

pub mod mutex;
pub mod runtime;
pub mod schedule;

#[cfg(detsan)]
pub use mutex::TrackedGuard;
pub use mutex::TrackedMutex;
pub use runtime::{
    current_job, enter_job, findings, force_tracking, next_batch_id, report, tracking_enabled,
    Finding, JobScope,
};
pub use schedule::{batch_rng, clear_schedule_seed, schedule_seed, set_schedule_seed, BatchRng};

/// Whether the worker pool should route work through its instrumented path
/// (job identities and/or schedule fuzzing).  Only meaningful under
/// `--cfg detsan`; the pool never calls this otherwise.
pub fn pool_hooks_active() -> bool {
    tracking_enabled() || schedule_seed().is_some()
}
