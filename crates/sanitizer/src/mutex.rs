//! [`TrackedMutex`]: the drop-in, poison-recovering mutex the workspace's
//! shared-scratch sites use.
//!
//! Both builds expose the identical API (`new` / `new_commutative` /
//! `lock` / `is_poisoned`), so call sites carry no `cfg` noise:
//!
//! * **Without `--cfg detsan`** it is a `#[repr(transparent)]` newtype over
//!   [`std::sync::Mutex`] whose `lock()` is exactly the
//!   `lock().unwrap_or_else(PoisonError::into_inner)` idiom the sites used
//!   before — same size, same guard type, no branch (pinned by
//!   `tests/zero_cost.rs`).
//! * **With `--cfg detsan`** each constructor registers a lock *site*
//!   (label + construction file/line, deduplicated so a `Vec` of mutexes
//!   built in a loop is one site class) and, when tracking is switched on
//!   at runtime (`DETSAN=1` or [`crate::force_tracking`]), every `lock()`
//!   feeds the lock-order graph and the same-batch contention tracker in
//!   [`crate::runtime`].
//!
//! Poison recovery is deliberate and uniform: the protected values are
//! solver scratch that is rebuilt or validated by the owner, so a panicked
//! peer must degrade (the resilience ladder's job), not wedge the solve.

use std::sync::{Mutex, PoisonError};

#[cfg(detsan)]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(detsan)]
use std::sync::MutexGuard;

#[cfg(detsan)]
use crate::runtime::{
    self, note_contention, on_acquire, on_release, register_site, ContentionState, SiteId,
};

// ---------------------------------------------------------------------------
// Disabled build: transparent newtype
// ---------------------------------------------------------------------------

/// See the module docs.  Under `cfg(not(detsan))` this is layout- and
/// behaviour-identical to a bare poison-recovering `Mutex<T>`.
#[cfg(not(detsan))]
#[repr(transparent)]
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
}

#[cfg(not(detsan))]
impl<T> TrackedMutex<T> {
    /// Wrap `value`; `label` documents the site (e.g.
    /// `"gnn::plan::ScratchPool::state"`) and is only consumed by detsan
    /// builds.
    #[inline]
    #[track_caller]
    pub fn new(value: T, _label: &'static str) -> Self {
        TrackedMutex { inner: Mutex::new(value) }
    }

    /// Like [`TrackedMutex::new`], additionally declaring the protected
    /// update commutative within a parallel batch (suppresses the
    /// `batch-order-sensitivity` finding; the label must be in
    /// `sanitizer::runtime::REVIEWED_COMMUTATIVE`).
    #[inline]
    #[track_caller]
    pub fn new_commutative(value: T, _label: &'static str, _reason: &'static str) -> Self {
        TrackedMutex { inner: Mutex::new(value) }
    }

    /// Acquire, recovering from poison (a panicked holder does not wedge
    /// subsequent users; see the module docs for why that is sound here).
    #[inline]
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a holder panicked while holding the lock.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

#[cfg(not(detsan))]
impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// detsan build: instrumented
// ---------------------------------------------------------------------------

#[cfg(detsan)]
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// See the module docs.  Under `cfg(detsan)` each mutex carries its site
/// identity, a process-unique instance id and the per-instance contention
/// state.
#[cfg(detsan)]
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    site: SiteId,
    instance: u64,
    contention: ContentionState,
}

#[cfg(detsan)]
impl<T> TrackedMutex<T> {
    /// Wrap `value`, registering the construction point as a lock site.
    #[track_caller]
    pub fn new(value: T, label: &'static str) -> Self {
        let loc = std::panic::Location::caller();
        TrackedMutex {
            inner: Mutex::new(value),
            site: register_site(label, loc.file(), loc.line(), None),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            contention: ContentionState::new(),
        }
    }

    /// Like [`TrackedMutex::new`], additionally declaring the protected
    /// update commutative within a parallel batch.  `reason` is the audit
    /// trail (rendered like a `detlint::allow` reason); unreviewed labels
    /// are themselves reported (`unreviewed-commutative`).
    #[track_caller]
    pub fn new_commutative(value: T, label: &'static str, reason: &'static str) -> Self {
        let loc = std::panic::Location::caller();
        TrackedMutex {
            inner: Mutex::new(value),
            site: register_site(label, loc.file(), loc.line(), Some(reason)),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            contention: ContentionState::new(),
        }
    }

    /// Acquire, recovering from poison.  When tracking is on, the
    /// acquisition is recorded into the lock-order graph *before* blocking
    /// (so a would-deadlock inversion is still reported) and into the
    /// contention tracker after (while the lock is held, which serializes
    /// the per-instance state).
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        let tracked = runtime::tracking_enabled();
        if tracked {
            on_acquire(self.site, self.instance);
        }
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if tracked {
            note_contention(self.site, &self.contention);
        }
        TrackedGuard { guard, site: self.site, instance: self.instance, tracked }
    }

    /// Whether a holder panicked while holding the lock.
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }
}

#[cfg(detsan)]
impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by the detsan build's [`TrackedMutex::lock`]; releases the
/// runtime's held-lock record on drop.
#[cfg(detsan)]
pub struct TrackedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    site: SiteId,
    instance: u64,
    tracked: bool,
}

#[cfg(detsan)]
impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(detsan)]
impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(detsan)]
impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            on_release(self.site, self.instance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_a_value() {
        let m = TrackedMutex::new(41usize, "test::mutex-roundtrip");
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poison_is_recovered_not_propagated() {
        let m = std::sync::Arc::new(TrackedMutex::new(vec![1, 2, 3], "test::mutex-poison"));
        let m2 = m.clone();
        let joined = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert!(joined.is_err());
        assert!(m.is_poisoned());
        assert_eq!(m.lock().len(), 3, "recovered access still sees the data");
    }

    #[test]
    fn commutative_constructor_round_trips() {
        let m = TrackedMutex::new_commutative(7i64, "test::mutex-commut", "fixture");
        assert_eq!(*m.lock(), 7);
    }
}
