//! Regression test: a deliberately inverted lock pair is reported as a
//! lock-order cycle through the real `TrackedMutex` path (not the engine's
//! unit-level `on_acquire` calls).  Only meaningful when the
//! instrumentation is compiled in.

#![cfg(detsan)]

use sanitizer::TrackedMutex;

#[test]
fn inverted_tracked_mutex_pair_is_reported() {
    sanitizer::force_tracking(true);
    let a = TrackedMutex::new(0u32, "test::it-invert-a");
    let b = TrackedMutex::new(0u32, "test::it-invert-b");

    // Establish A -> B …
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // … then invert to B -> A.
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }

    let findings = sanitizer::findings();
    let cycles: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "lock-order-cycle" && f.message.contains("test::it-invert-a"))
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle report expected: {cycles:?}");
    let msg = &cycles[0].message;
    assert!(msg.contains("test::it-invert-b"), "both sites named: {msg}");
    assert!(msg.contains("chain 1") && msg.contains("chain 2"), "both chains named: {msg}");
}

#[test]
fn consistently_ordered_tracked_mutexes_stay_clean() {
    sanitizer::force_tracking(true);
    let a = TrackedMutex::new(0u32, "test::it-clean-a");
    let b = TrackedMutex::new(0u32, "test::it-clean-b");
    for _ in 0..4 {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    assert!(
        !sanitizer::findings().iter().any(|f| f.message.contains("test::it-clean-a")),
        "consistent order must not be reported"
    );
}
