//! Guards the "zero cost when off" claim: without `--cfg detsan`,
//! `TrackedMutex<T>` must be a transparent newtype over `std::sync::Mutex`
//! — same size/alignment, and `lock()` must return the *plain*
//! `std::sync::MutexGuard` (no wrapper type, hence no extra field, branch
//! or drop glue in the lock path).

#![cfg(not(detsan))]

use std::sync::{Mutex, MutexGuard};

use sanitizer::TrackedMutex;

#[test]
fn tracked_mutex_is_layout_identical_to_std_mutex() {
    assert_eq!(
        std::mem::size_of::<TrackedMutex<[u64; 8]>>(),
        std::mem::size_of::<Mutex<[u64; 8]>>(),
    );
    assert_eq!(
        std::mem::align_of::<TrackedMutex<[u64; 8]>>(),
        std::mem::align_of::<Mutex<[u64; 8]>>(),
    );
    assert_eq!(std::mem::size_of::<TrackedMutex<()>>(), std::mem::size_of::<Mutex<()>>());
}

/// Compile-time proof that the disabled lock path returns the unwrapped std
/// guard: this function only type-checks if `TrackedMutex::lock` yields
/// `std::sync::MutexGuard` directly.
fn lock_is_the_plain_std_guard<T>(m: &TrackedMutex<T>) -> MutexGuard<'_, T> {
    m.lock()
}

#[test]
fn disabled_lock_returns_the_std_guard_type() {
    let m = TrackedMutex::new(5u32, "test::zero-cost");
    {
        let g: MutexGuard<'_, u32> = lock_is_the_plain_std_guard(&m);
        assert_eq!(*g, 5);
    }
    // And the commutative constructor is equally transparent.
    let c = TrackedMutex::new_commutative(6u32, "test::zero-cost-commut", "fixture");
    assert_eq!(*lock_is_the_plain_std_guard(&c), 6);
}
