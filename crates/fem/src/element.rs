//! P1 (linear Lagrange) triangle element kernels.
//!
//! For a triangle with vertices `p0, p1, p2` and linear shape functions
//! `φ_i`, the local stiffness matrix of the Laplace operator is
//!
//! ```text
//! K_ij = ∫_T ∇φ_i · ∇φ_j dx = (b_i b_j + c_i c_j) / (4 |T|)
//! ```
//!
//! where `b_i`, `c_i` are the usual shape-function gradient coefficients and
//! `|T|` the triangle area.  The load vector uses the exact integral of a
//! linear interpolant of `f`, which is the standard lumped rule
//! `F_i = |T| (2 f_i + f_j + f_k) / 12`.

use meshgen::Point2;

/// Local 3×3 stiffness matrix (row-major) and the triangle area.
///
/// Returns `None` for degenerate (zero-area) triangles.
pub fn local_stiffness(p0: &Point2, p1: &Point2, p2: &Point2) -> Option<([f64; 9], f64)> {
    let area2 = (p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y);
    let area = 0.5 * area2.abs();
    if area <= 0.0 {
        return None;
    }
    // Gradient coefficients: ∇φ_i = (b_i, c_i) / (2 |T|)
    let b = [p1.y - p2.y, p2.y - p0.y, p0.y - p1.y];
    let c = [p2.x - p1.x, p0.x - p2.x, p1.x - p0.x];
    let scale = 1.0 / (4.0 * area);
    let mut k = [0.0; 9];
    for i in 0..3 {
        for j in 0..3 {
            k[i * 3 + j] = scale * (b[i] * b[j] + c[i] * c[j]);
        }
    }
    Some((k, area))
}

/// Local load vector for nodal source values `f = (f0, f1, f2)` on a triangle
/// of area `area`, using the exact integration of the linear interpolant.
pub fn local_load(f: &[f64; 3], area: f64) -> [f64; 3] {
    let c = area / 12.0;
    [c * (2.0 * f[0] + f[1] + f[2]), c * (f[0] + 2.0 * f[1] + f[2]), c * (f[0] + f[1] + 2.0 * f[2])]
}

/// Local mass matrix (consistent), useful for L² norms in tests.
pub fn local_mass(area: f64) -> [f64; 9] {
    let c = area / 12.0;
    [
        2.0 * c,
        c,
        c, //
        c,
        2.0 * c,
        c, //
        c,
        c,
        2.0 * c,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_triangle() -> (Point2, Point2, Point2) {
        (Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.0, 1.0))
    }

    #[test]
    fn stiffness_of_reference_triangle() {
        let (p0, p1, p2) = reference_triangle();
        let (k, area) = local_stiffness(&p0, &p1, &p2).unwrap();
        assert!((area - 0.5).abs() < 1e-14);
        // Known exact values: K = [[1, -0.5, -0.5], [-0.5, 0.5, 0], [-0.5, 0, 0.5]]
        let expected = [1.0, -0.5, -0.5, -0.5, 0.5, 0.0, -0.5, 0.0, 0.5];
        for (a, e) in k.iter().zip(expected.iter()) {
            assert!((a - e).abs() < 1e-14, "{k:?}");
        }
    }

    #[test]
    fn stiffness_rows_sum_to_zero() {
        // Constants lie in the kernel of the Laplace operator: K · 1 = 0.
        let p0 = Point2::new(0.3, -0.2);
        let p1 = Point2::new(1.7, 0.4);
        let p2 = Point2::new(0.9, 1.5);
        let (k, _) = local_stiffness(&p0, &p1, &p2).unwrap();
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| k[i * 3 + j]).sum();
            assert!(row_sum.abs() < 1e-12);
        }
    }

    #[test]
    fn stiffness_is_symmetric_and_psd_diagonal() {
        let p0 = Point2::new(0.0, 0.0);
        let p1 = Point2::new(2.0, 0.3);
        let p2 = Point2::new(0.5, 1.8);
        let (k, _) = local_stiffness(&p0, &p1, &p2).unwrap();
        for i in 0..3 {
            assert!(k[i * 3 + i] > 0.0);
            for j in 0..3 {
                assert!((k[i * 3 + j] - k[j * 3 + i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn degenerate_triangle_rejected() {
        let p0 = Point2::new(0.0, 0.0);
        let p1 = Point2::new(1.0, 1.0);
        let p2 = Point2::new(2.0, 2.0);
        assert!(local_stiffness(&p0, &p1, &p2).is_none());
    }

    #[test]
    fn load_vector_constant_source() {
        // Constant source f = 1: each node receives area/3.
        let load = local_load(&[1.0, 1.0, 1.0], 0.5);
        for v in load {
            assert!((v - 0.5 / 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn load_vector_total_equals_integral() {
        // Sum of the load vector equals ∫ f over the triangle for linear f.
        let f = [1.0, 2.0, 3.0];
        let area = 0.7;
        let load = local_load(&f, area);
        let total: f64 = load.iter().sum();
        let integral = area * (f[0] + f[1] + f[2]) / 3.0;
        assert!((total - integral).abs() < 1e-14);
    }

    #[test]
    fn mass_matrix_sums_to_area() {
        let area = 0.42;
        let m = local_mass(area);
        let total: f64 = m.iter().sum();
        assert!((total - area).abs() < 1e-14);
    }
}
