//! The Poisson problem bundle and the paper's random data distribution.
//!
//! Section IV-A of the paper samples, for each global domain, a forcing
//! function `f(x, y) = r1 (x-1)² + r2 y² + r3` and a boundary function
//! `g(x, y) = r4 x² + r5 y² + r6 x y + r7 x + r8 y + r9` with coefficients
//! drawn uniformly from `[-10, 10]`.  [`SourceTerm`] reproduces exactly that
//! distribution; [`PoissonProblem`] couples a mesh with assembled operators
//! and exposes the residual/rescaling helpers used by the rest of the
//! pipeline.

use meshgen::{Mesh, Point2};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use sparse::CsrMatrix;

use crate::assembly::{assemble_poisson, AssembledSystem};

/// A quadratic polynomial `a x² + b y² + c xy + d x + e y + f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticPolynomial {
    /// Coefficient of `x²`.
    pub a: f64,
    /// Coefficient of `y²`.
    pub b: f64,
    /// Coefficient of `x y`.
    pub c: f64,
    /// Coefficient of `x`.
    pub d: f64,
    /// Coefficient of `y`.
    pub e: f64,
    /// Constant term.
    pub f: f64,
}

impl QuadraticPolynomial {
    /// Evaluate at a point.
    pub fn eval(&self, p: &Point2) -> f64 {
        self.a * p.x * p.x
            + self.b * p.y * p.y
            + self.c * p.x * p.y
            + self.d * p.x
            + self.e * p.y
            + self.f
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        QuadraticPolynomial { a: 0.0, b: 0.0, c: 0.0, d: 0.0, e: 0.0, f: 0.0 }
    }
}

/// The random forcing/boundary pair of the paper's dataset (Eq. 24–25).
#[derive(Debug, Clone, Copy)]
pub struct SourceTerm {
    /// Forcing `f(x,y) = r1 (x-1)² + r2 y² + r3`.
    pub forcing: QuadraticPolynomial,
    /// Boundary data `g` (full quadratic).
    pub boundary: QuadraticPolynomial,
}

impl SourceTerm {
    /// Sample the paper's distribution with coefficients `rᵢ ~ U[-10, 10]`.
    ///
    /// `scale` rescales the coefficients; the paper rescales force and
    /// boundary functions when growing domains so the solution magnitude
    /// stays comparable.
    pub fn sample(seed: u64, scale: f64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut r = || rng.gen_range(-10.0..10.0) * scale;
        let (r1, r2, r3) = (r(), r(), r());
        // f(x,y) = r1 (x-1)^2 + r2 y^2 + r3 = r1 x² + r2 y² - 2 r1 x + (r1 + r3)
        let forcing =
            QuadraticPolynomial { a: r1, b: r2, c: 0.0, d: -2.0 * r1, e: 0.0, f: r1 + r3 };
        let boundary = QuadraticPolynomial { a: r(), b: r(), c: r(), d: r(), e: r(), f: r() };
        SourceTerm { forcing, boundary }
    }

    /// Nodal samples of the forcing term on a mesh.
    pub fn forcing_values(&self, mesh: &Mesh) -> Vec<f64> {
        mesh.points.iter().map(|p| self.forcing.eval(p)).collect()
    }

    /// Nodal samples of the boundary term on a mesh.
    pub fn boundary_values(&self, mesh: &Mesh) -> Vec<f64> {
        mesh.points.iter().map(|p| self.boundary.eval(p)).collect()
    }
}

/// A fully assembled Poisson problem on a mesh.
#[derive(Debug, Clone)]
pub struct PoissonProblem {
    /// The mesh the problem is discretised on.
    pub mesh: Mesh,
    /// Assembled SPD matrix.
    pub matrix: CsrMatrix,
    /// Assembled right-hand side.
    pub rhs: Vec<f64>,
    /// Dirichlet flag per node.
    pub dirichlet: Vec<bool>,
}

impl PoissonProblem {
    /// Assemble a problem from a mesh and nodal source/boundary samples.
    pub fn from_samples(mesh: Mesh, f: &[f64], g: &[f64]) -> Self {
        let AssembledSystem { matrix, rhs, dirichlet, .. } = assemble_poisson(&mesh, f, g);
        PoissonProblem { mesh, matrix, rhs, dirichlet }
    }

    /// Assemble a problem with the paper's random data distribution.
    pub fn with_random_data(mesh: Mesh, seed: u64) -> Self {
        let source = SourceTerm::sample(seed, 1.0);
        let f = source.forcing_values(&mesh);
        let g = source.boundary_values(&mesh);
        Self::from_samples(mesh, &f, &g)
    }

    /// Number of unknowns (mesh nodes).
    pub fn num_unknowns(&self) -> usize {
        self.matrix.nrows()
    }

    /// Residual `b - A x`.
    pub fn residual(&self, x: &[f64]) -> Vec<f64> {
        let mut r = vec![0.0; self.rhs.len()];
        self.matrix.residual_into(&self.rhs, x, &mut r);
        r
    }

    /// Relative residual norm `‖b - A x‖ / ‖b‖`.
    pub fn relative_residual(&self, x: &[f64]) -> f64 {
        let r = self.residual(x);
        let bnorm = sparse::vector::norm2(&self.rhs);
        let rnorm = sparse::vector::norm2(&r);
        if bnorm <= f64::EPSILON {
            rnorm
        } else {
            rnorm / bnorm
        }
    }

    /// The mean-squared residual loss of the paper's Eq. (11) for a state `u`:
    /// `1/N Σ_i (b_i - Σ_j a_ij u_j)²`.
    pub fn residual_loss(&self, u: &[f64]) -> f64 {
        let r = self.residual(u);
        r.iter().map(|v| v * v).sum::<f64>() / r.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain, RectangleDomain};

    #[test]
    fn quadratic_polynomial_eval() {
        let p = QuadraticPolynomial { a: 1.0, b: 2.0, c: 3.0, d: 4.0, e: 5.0, f: 6.0 };
        let v = p.eval(&Point2::new(1.0, 2.0));
        // 1 + 8 + 6 + 4 + 10 + 6 = 35
        assert!((v - 35.0).abs() < 1e-12);
        assert_eq!(QuadraticPolynomial::zero().eval(&Point2::new(3.0, -2.0)), 0.0);
    }

    #[test]
    fn source_term_matches_paper_form() {
        let s = SourceTerm::sample(3, 1.0);
        // Forcing has no xy and no y terms, per Eq. (24).
        assert_eq!(s.forcing.c, 0.0);
        assert_eq!(s.forcing.e, 0.0);
        // f(1, 0) = r1*0 + r3 + ... check consistency: f(x,y) at x=1 equals r2 y² + r3
        // (the (x-1)² term vanishes), i.e. no dependence on r1.
        let at_x1 = |y: f64| s.forcing.eval(&Point2::new(1.0, y));
        let diff = at_x1(2.0) - at_x1(0.0);
        // diff = r2 * 4 — must not depend on r1 (a-coefficient)
        assert!((diff - 4.0 * s.forcing.b).abs() < 1e-12);
        // Coefficients live in [-10, 10].
        for c in
            [s.boundary.a, s.boundary.b, s.boundary.c, s.boundary.d, s.boundary.e, s.boundary.f]
        {
            assert!(c.abs() <= 10.0);
        }
    }

    #[test]
    fn source_term_is_deterministic_per_seed() {
        let a = SourceTerm::sample(5, 1.0);
        let b = SourceTerm::sample(5, 1.0);
        assert_eq!(a.forcing, b.forcing);
        assert_eq!(a.boundary, b.boundary);
        let c = SourceTerm::sample(6, 1.0);
        assert_ne!(a.boundary, c.boundary);
    }

    #[test]
    fn problem_assembly_and_residual() {
        let d = RectangleDomain::new(0.0, 0.0, 1.0, 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.15));
        let problem = PoissonProblem::with_random_data(mesh, 11);
        let n = problem.num_unknowns();
        assert!(n > 30);
        // The exact solution has zero residual and zero loss.
        let lu = sparse::LuFactor::factor_csr(&problem.matrix).unwrap();
        let u = lu.solve(&problem.rhs).unwrap();
        assert!(problem.relative_residual(&u) < 1e-12);
        assert!(problem.residual_loss(&u) < 1e-20);
        // The zero vector has a nonzero residual for random data.
        assert!(problem.relative_residual(&vec![0.0; n]) > 1e-3);
    }

    #[test]
    fn random_blob_problem_is_spd_and_solvable() {
        let domain = RandomBlobDomain::generate(2, 20, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, 800);
        let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h));
        let problem = PoissonProblem::with_random_data(mesh, 7);
        assert!(problem.matrix.is_symmetric(1e-9));
        let chol = sparse::SkylineCholesky::factor(&problem.matrix);
        assert!(chol.is_ok(), "assembled Poisson matrix must be SPD");
        let u = chol.unwrap().solve(&problem.rhs).unwrap();
        assert!(problem.relative_residual(&u) < 1e-10);
    }

    #[test]
    fn residual_loss_matches_definition() {
        let d = RectangleDomain::new(0.0, 0.0, 1.0, 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.25));
        let problem = PoissonProblem::with_random_data(mesh, 1);
        let n = problem.num_unknowns();
        let u = vec![0.1; n];
        let r = problem.residual(&u);
        let manual: f64 = r.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((problem.residual_loss(&u) - manual).abs() < 1e-15);
    }
}
