//! Global assembly of the Poisson system with Dirichlet boundary conditions.
//!
//! The assembled system keeps one unknown per mesh node (as in the paper,
//! where `N` equals the node count).  Dirichlet conditions are imposed by
//! symmetric elimination: for a boundary node `j` with value `g_j`, the
//! couplings `A_ij` are moved to the right-hand side (`b_i -= A_ij g_j`), the
//! row and column `j` are cleared, the diagonal is set to 1 and `b_j = g_j`.
//! This keeps `A` symmetric positive definite so the Conjugate Gradient
//! method and its Schwarz/GNN preconditioners apply directly.

use meshgen::Mesh;
use rayon::prelude::*;
use sparse::{CooMatrix, CsrMatrix};

use crate::element::{local_load, local_stiffness};

/// The assembled linear system and the data needed to interpret it.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// System matrix (SPD after Dirichlet elimination).
    pub matrix: CsrMatrix,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Dirichlet flag per node.
    pub dirichlet: Vec<bool>,
    /// Dirichlet value per node (0 for interior nodes).
    pub dirichlet_values: Vec<f64>,
}

/// Assemble the P1 Poisson system `-Δu = f`, `u = g` on the boundary.
///
/// `f` and `g` are nodal samples of the source and boundary functions
/// (only the boundary entries of `g` are read).
pub fn assemble_poisson(mesh: &Mesh, f: &[f64], g: &[f64]) -> AssembledSystem {
    let n = mesh.num_nodes();
    assert_eq!(f.len(), n, "source vector length mismatch");
    assert_eq!(g.len(), n, "boundary vector length mismatch");

    // Per-triangle contributions computed in parallel, then merged serially
    // into the COO builder (the merge is cheap relative to the FLOPs).
    struct ElementContribution {
        nodes: [usize; 3],
        stiffness: [f64; 9],
        load: [f64; 3],
    }

    let contributions: Vec<ElementContribution> = mesh
        .triangles
        .par_iter()
        .filter_map(|t| {
            let p0 = &mesh.points[t[0]];
            let p1 = &mesh.points[t[1]];
            let p2 = &mesh.points[t[2]];
            let (stiffness, area) = local_stiffness(p0, p1, p2)?;
            let load = local_load(&[f[t[0]], f[t[1]], f[t[2]]], area);
            Some(ElementContribution { nodes: *t, stiffness, load })
        })
        .collect();

    let mut coo = CooMatrix::with_capacity(n, n, contributions.len() * 9);
    let mut rhs = vec![0.0; n];
    for c in &contributions {
        for i in 0..3 {
            rhs[c.nodes[i]] += c.load[i];
            for j in 0..3 {
                coo.push_unchecked(c.nodes[i], c.nodes[j], c.stiffness[i * 3 + j]);
            }
        }
    }
    let full = coo.to_csr();

    // Symmetric Dirichlet elimination.
    let dirichlet = mesh.boundary.clone();
    let dirichlet_values: Vec<f64> =
        (0..n).map(|i| if dirichlet[i] { g[i] } else { 0.0 }).collect();

    // Move boundary couplings to the RHS for interior rows.
    for i in 0..n {
        if dirichlet[i] {
            continue;
        }
        let (cols, vals) = full.row(i);
        for (&j, &a) in cols.iter().zip(vals.iter()) {
            if dirichlet[j] {
                rhs[i] -= a * dirichlet_values[j];
            }
        }
    }
    // Rebuild the matrix with boundary rows/columns cleared.
    let mut coo = CooMatrix::with_capacity(n, n, full.nnz());
    for i in 0..n {
        if dirichlet[i] {
            coo.push_unchecked(i, i, 1.0);
            rhs[i] = dirichlet_values[i];
            continue;
        }
        let (cols, vals) = full.row(i);
        for (&j, &a) in cols.iter().zip(vals.iter()) {
            if !dirichlet[j] {
                coo.push_unchecked(i, j, a);
            }
        }
    }
    let matrix = coo.to_csr();

    AssembledSystem { matrix, rhs, dirichlet, dirichlet_values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshgen::{generate_mesh, CircleDomain, MeshingOptions, Point2, RectangleDomain};

    fn unit_square_mesh(h: f64) -> Mesh {
        let d = RectangleDomain::new(0.0, 0.0, 1.0, 1.0);
        generate_mesh(&d, &MeshingOptions::with_element_size(h))
    }

    #[test]
    fn assembled_matrix_is_spd_and_sized() {
        let mesh = unit_square_mesh(0.1);
        let n = mesh.num_nodes();
        let f = vec![1.0; n];
        let g = vec![0.0; n];
        let sys = assemble_poisson(&mesh, &f, &g);
        assert_eq!(sys.matrix.nrows(), n);
        assert!(sys.matrix.is_symmetric(1e-10));
        // Diagonal entries strictly positive.
        assert!(sys.matrix.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn homogeneous_dirichlet_zero_source_gives_zero_solution() {
        let mesh = unit_square_mesh(0.15);
        let n = mesh.num_nodes();
        let sys = assemble_poisson(&mesh, &vec![0.0; n], &vec![0.0; n]);
        assert!(sparse::vector::norm2(&sys.rhs) < 1e-14);
    }

    #[test]
    fn boundary_rows_are_identity() {
        let mesh = unit_square_mesh(0.2);
        let n = mesh.num_nodes();
        let g: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let sys = assemble_poisson(&mesh, &vec![0.0; n], &g);
        for i in 0..n {
            if sys.dirichlet[i] {
                let (cols, vals) = sys.matrix.row(i);
                assert_eq!(cols, &[i]);
                assert_eq!(vals, &[1.0]);
                assert_eq!(sys.rhs[i], g[i]);
            }
        }
    }

    /// Manufactured solution u = x² + y² ⇒ -Δu = -4, g = x² + y².
    /// The FEM solution must converge to it as h → 0.
    #[test]
    fn manufactured_solution_convergence() {
        let mut errors = Vec::new();
        for &h in &[0.2, 0.1] {
            let mesh = unit_square_mesh(h);
            let n = mesh.num_nodes();
            let exact: Vec<f64> = mesh.points.iter().map(|p| p.x * p.x + p.y * p.y).collect();
            let f = vec![-4.0; n];
            let sys = assemble_poisson(&mesh, &f, &exact);
            let lu = sparse::LuFactor::factor_csr(&sys.matrix).unwrap();
            let u = lu.solve(&sys.rhs).unwrap();
            let err = sparse::vector::relative_error(&u, &exact);
            errors.push(err);
        }
        assert!(errors[0] < 0.05, "coarse error too large: {}", errors[0]);
        assert!(errors[1] < errors[0], "error must decrease with refinement: {errors:?}");
    }

    /// Harmonic function u = x (Δu = 0) is reproduced exactly by P1 elements.
    #[test]
    fn linear_solution_is_exact() {
        let mesh = unit_square_mesh(0.18);
        let n = mesh.num_nodes();
        let exact: Vec<f64> = mesh.points.iter().map(|p| p.x).collect();
        let sys = assemble_poisson(&mesh, &vec![0.0; n], &exact);
        let lu = sparse::LuFactor::factor_csr(&sys.matrix).unwrap();
        let u = lu.solve(&sys.rhs).unwrap();
        assert!(
            sparse::vector::relative_error(&u, &exact) < 1e-10,
            "P1 must reproduce linear functions exactly"
        );
    }

    #[test]
    fn circle_domain_assembly_runs_and_is_spd() {
        let d = CircleDomain::new(Point2::new(0.0, 0.0), 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.12));
        let f: Vec<f64> = mesh.points.iter().map(|p| p.x + p.y).collect();
        let g: Vec<f64> = mesh.points.iter().map(|p| p.x * p.y).collect();
        let sys = assemble_poisson(&mesh, &f, &g);
        assert!(sys.matrix.is_symmetric(1e-10));
        // Cholesky factorisation succeeding is a strong SPD check.
        assert!(sparse::SkylineCholesky::factor(&sys.matrix).is_ok());
    }
}
