//! P1 finite-element discretisation of the Poisson problem.
//!
//! The paper solves `-Δu = f` on a 2D domain `Ω` with Dirichlet data `g` on
//! `∂Ω`, discretised with first-order Lagrange elements so that the unknowns
//! live on the mesh nodes (Section II).  This crate assembles the sparse
//! linear system `A u = b` from a [`meshgen::Mesh`]:
//!
//! * [`element`] — per-triangle stiffness matrices and load vectors,
//! * [`assembly`] — parallel global assembly and symmetric elimination of the
//!   Dirichlet boundary conditions (so `A` stays SPD and CG applies),
//! * [`problem`] — the [`PoissonProblem`] bundle (mesh + matrix + rhs) and the
//!   random quadratic forcing/boundary functions of the paper's dataset
//!   (Eq. 24–25), plus manufactured solutions for verification.

pub mod assembly;
pub mod element;
pub mod problem;

pub use assembly::{assemble_poisson, AssembledSystem};
pub use problem::{PoissonProblem, QuadraticPolynomial, SourceTerm};
