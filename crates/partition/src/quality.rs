//! Partition quality metrics: edge cut and balance.

use crate::graph::Graph;
use crate::Partition;

/// Number of edges whose endpoints lie in different parts.
pub fn edge_cut(graph: &Graph, partition: &Partition) -> usize {
    let mut cut = 0;
    for v in 0..graph.num_vertices() {
        for &u in graph.neighbours(v) {
            if u > v && partition[u] != partition[v] {
                cut += 1;
            }
        }
    }
    cut
}

/// Ratio of the largest part size to the ideal (uniform) size.  1.0 means
/// perfectly balanced; values above ~1.2 indicate a poor partition.
pub fn balance_factor(partition: &Partition, num_parts: usize) -> f64 {
    if partition.is_empty() || num_parts == 0 {
        return 1.0;
    }
    let mut counts = vec![0usize; num_parts];
    for &p in partition {
        counts[p] += 1;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let ideal = partition.len() as f64 / num_parts as f64;
    max / ideal
}

/// Sizes of every part.
pub fn part_sizes(partition: &Partition, num_parts: usize) -> Vec<usize> {
    let mut counts = vec![0usize; num_parts];
    for &p in partition {
        counts[p] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let adjacency: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut list = Vec::new();
                if i > 0 {
                    list.push(i - 1);
                }
                if i + 1 < n {
                    list.push(i + 1);
                }
                list
            })
            .collect();
        Graph::from_adjacency(&adjacency)
    }

    #[test]
    fn edge_cut_of_contiguous_split_is_one() {
        let g = path_graph(10);
        let partition: Partition = (0..10).map(|i| if i < 5 { 0 } else { 1 }).collect();
        assert_eq!(edge_cut(&g, &partition), 1);
    }

    #[test]
    fn edge_cut_of_alternating_split_is_maximal() {
        let g = path_graph(10);
        let partition: Partition = (0..10).map(|i| i % 2).collect();
        assert_eq!(edge_cut(&g, &partition), 9);
    }

    #[test]
    fn balance_factor_uniform_and_skewed() {
        let uniform: Partition = (0..10).map(|i| i % 2).collect();
        assert!((balance_factor(&uniform, 2) - 1.0).abs() < 1e-12);
        let skewed: Partition = (0..10).map(|i| usize::from(i >= 8)).collect();
        assert!((balance_factor(&skewed, 2) - 1.6).abs() < 1e-12);
        assert_eq!(balance_factor(&Vec::new(), 3), 1.0);
    }

    #[test]
    fn part_sizes_counts() {
        let partition: Partition = vec![0, 1, 1, 2, 2, 2];
        assert_eq!(part_sizes(&partition, 3), vec![1, 2, 3]);
    }
}
