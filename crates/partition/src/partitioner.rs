//! Multi-seed greedy graph growing partitioner with balancing refinement.
//!
//! The algorithm follows the classic graph-growing heuristic METIS uses for
//! its initial partitions:
//!
//! 1. pick `K` seeds by farthest-point sampling (BFS metric),
//! 2. grow all parts simultaneously with a multi-source BFS, always expanding
//!    the currently smallest part so sizes stay balanced,
//! 3. assign any stragglers (nodes unreachable during growth) to the smallest
//!    neighbouring part,
//! 4. run a boundary-refinement pass that moves nodes from oversized parts to
//!    adjacent undersized parts when doing so does not disconnect coverage.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

use crate::graph::Graph;
use crate::Partition;

/// Options for [`partition_graph`].
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Number of parts to create.
    pub num_parts: usize,
    /// RNG seed used for seed-vertex selection tie breaking.
    pub seed: u64,
    /// Number of boundary refinement sweeps.
    pub refinement_sweeps: usize,
    /// Maximum tolerated imbalance (max part size / ideal size) targeted by
    /// the refinement pass.
    pub balance_tolerance: f64,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { num_parts: 2, seed: 0, refinement_sweeps: 4, balance_tolerance: 1.10 }
    }
}

/// Partition the graph into `opts.num_parts` parts of roughly equal size.
///
/// Returns the part index of every vertex (`result[v] ∈ 0..num_parts`).
/// This function **never panics**; the degenerate shapes are defined as:
///
/// * an **empty graph** returns an empty assignment (regardless of
///   `num_parts`),
/// * `num_parts == 0` is treated as 1 (every vertex lands in part 0),
/// * `num_parts >= num_vertices` degenerates to one vertex per part —
///   vertex `v` is assigned to part `v` — so with `k > n` the parts
///   `n..k` are **empty**.  Downstream consumers receive empty node lists
///   for those parts: [`crate::overlap::grow_overlap`] returns empty
///   sub-domains for them (BFS from an empty core), and callers building
///   Schwarz restrictions or a Nicolaides coarse space must either
///   tolerate or filter empty sub-domains.  Part indices are always in
///   range, so no consumer ever sees an out-of-bounds part.
///
/// (Note: [`crate::partition_mesh_with_overlap`] always requests
/// `k = ceil(n / target_size) ≤ n` parts, so the empty-part shape only
/// arises when calling this function directly.)
pub fn partition_graph(graph: &Graph, opts: &PartitionOptions) -> Partition {
    let n = graph.num_vertices();
    let k = opts.num_parts.max(1);
    if n == 0 {
        return Vec::new();
    }
    if k == 1 {
        return vec![0; n];
    }
    if k >= n {
        // One vertex per part (extra parts stay empty).
        return (0..n).collect();
    }

    let seeds = select_seeds(graph, k, opts.seed);

    // Multi-source BFS growth, always expanding the smallest part.
    let mut assignment = vec![usize::MAX; n];
    let mut frontiers: Vec<VecDeque<usize>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p;
        sizes[p] = 1;
        frontiers[p].push_back(s);
    }
    let mut assigned = k;
    while assigned < n {
        // Pick the smallest part that still has a frontier.
        let mut best_part = usize::MAX;
        let mut best_size = usize::MAX;
        for p in 0..k {
            if !frontiers[p].is_empty() && sizes[p] < best_size {
                best_size = sizes[p];
                best_part = p;
            }
        }
        if best_part == usize::MAX {
            break; // all frontiers exhausted (disconnected leftovers remain)
        }
        let p = best_part;
        // Expand one node from this part's frontier.
        let mut grew = false;
        while let Some(v) = frontiers[p].pop_front() {
            let mut next_unassigned = None;
            for &u in graph.neighbours(v) {
                if assignment[u] == usize::MAX {
                    next_unassigned = Some(u);
                    break;
                }
            }
            if let Some(u) = next_unassigned {
                assignment[u] = p;
                sizes[p] += 1;
                assigned += 1;
                frontiers[p].push_back(u);
                // v may still have other unassigned neighbours.
                frontiers[p].push_front(v);
                grew = true;
                break;
            }
            // v exhausted: drop it from the frontier.
        }
        if !grew && frontiers[p].is_empty() {
            continue;
        }
    }

    // Stragglers: nodes in components not reached by any seed.  Attach each to
    // the smallest part among its neighbours, or the globally smallest part.
    for v in 0..n {
        if assignment[v] == usize::MAX {
            let neighbour_part = graph
                .neighbours(v)
                .iter()
                .filter(|&&u| assignment[u] != usize::MAX)
                .map(|&u| assignment[u])
                .min_by_key(|&p| sizes[p]);
            let p = neighbour_part.unwrap_or_else(|| (0..k).min_by_key(|&p| sizes[p]).unwrap());
            assignment[v] = p;
            sizes[p] += 1;
        }
    }

    refine_balance(graph, &mut assignment, &mut sizes, opts);
    assignment
}

/// Farthest-point sampling of `k` seed vertices.
fn select_seeds(graph: &Graph, k: usize, seed: u64) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let first = rng.gen_range(0..n);
    let mut seeds = vec![first];
    // Track the distance of every vertex to its nearest selected seed.
    let mut min_dist = graph.bfs_distances(first);
    while seeds.len() < k {
        // The next seed is the vertex farthest from all current seeds
        // (ignoring unreachable vertices, which keep usize::MAX and win ties —
        // that conveniently spreads seeds across disconnected components).
        let next = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| min_dist[v].min(usize::MAX - 1))
            .unwrap_or(first);
        seeds.push(next);
        let d = graph.bfs_distances(next);
        for v in 0..n {
            min_dist[v] = min_dist[v].min(d[v]);
        }
    }
    seeds
}

/// Boundary refinement: move nodes from oversized parts to adjacent
/// undersized parts.
fn refine_balance(
    graph: &Graph,
    assignment: &mut [usize],
    sizes: &mut [usize],
    opts: &PartitionOptions,
) {
    let n = graph.num_vertices();
    let k = sizes.len();
    if k < 2 {
        return;
    }
    let ideal = n as f64 / k as f64;
    let max_allowed = (ideal * opts.balance_tolerance).ceil() as usize;

    for _ in 0..opts.refinement_sweeps {
        let mut moved = 0usize;
        for v in 0..n {
            let p = assignment[v];
            if sizes[p] <= max_allowed {
                continue;
            }
            // Candidate target: the smallest adjacent part different from p.
            let mut best: Option<usize> = None;
            for &u in graph.neighbours(v) {
                let q = assignment[u];
                if q != p {
                    best = match best {
                        None => Some(q),
                        Some(b) if sizes[q] < sizes[b] => Some(q),
                        other => other,
                    };
                }
            }
            if let Some(q) = best {
                if sizes[q] + 1 < sizes[p] {
                    assignment[v] = q;
                    sizes[p] -= 1;
                    sizes[q] += 1;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance_factor, edge_cut};
    use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain, RectangleDomain};

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut adjacency = vec![Vec::new(); nx * ny];
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                if i > 0 {
                    adjacency[me].push(idx(i - 1, j));
                }
                if i + 1 < nx {
                    adjacency[me].push(idx(i + 1, j));
                }
                if j > 0 {
                    adjacency[me].push(idx(i, j - 1));
                }
                if j + 1 < ny {
                    adjacency[me].push(idx(i, j + 1));
                }
            }
        }
        Graph::from_adjacency(&adjacency)
    }

    #[test]
    fn trivial_cases() {
        let g = grid_graph(4, 4);
        let p1 = partition_graph(&g, &PartitionOptions { num_parts: 1, ..Default::default() });
        assert!(p1.iter().all(|&p| p == 0));
        let empty = Graph::from_adjacency(&[]);
        assert!(partition_graph(&empty, &PartitionOptions::default()).is_empty());
    }

    #[test]
    fn all_parts_are_nonempty_and_cover() {
        let g = grid_graph(20, 20);
        let opts = PartitionOptions { num_parts: 8, ..Default::default() };
        let parts = partition_graph(&g, &opts);
        assert_eq!(parts.len(), 400);
        let mut counts = vec![0usize; 8];
        for &p in &parts {
            assert!(p < 8);
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "part sizes {counts:?}");
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        let g = grid_graph(30, 30);
        let opts = PartitionOptions { num_parts: 9, ..Default::default() };
        let parts = partition_graph(&g, &opts);
        let bf = balance_factor(&parts, 9);
        assert!(bf < 1.35, "balance factor {bf}");
    }

    #[test]
    fn edge_cut_is_much_smaller_than_total_edges() {
        let g = grid_graph(30, 30);
        let opts = PartitionOptions { num_parts: 4, ..Default::default() };
        let parts = partition_graph(&g, &opts);
        let cut = edge_cut(&g, &parts);
        // A 30x30 grid has 1740 edges; a sane 4-way partition cuts a small fraction.
        assert!(cut < 300, "edge cut {cut}");
        assert!(cut > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid_graph(15, 15);
        let opts = PartitionOptions { num_parts: 5, seed: 3, ..Default::default() };
        let p1 = partition_graph(&g, &opts);
        let p2 = partition_graph(&g, &opts);
        assert_eq!(p1, p2);
    }

    #[test]
    fn more_parts_than_vertices_degenerates_gracefully() {
        let g = grid_graph(2, 2);
        let opts = PartitionOptions { num_parts: 10, ..Default::default() };
        let parts = partition_graph(&g, &opts);
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_parts_is_treated_as_one() {
        let g = grid_graph(3, 3);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 0, ..Default::default() });
        assert!(parts.iter().all(|&p| p == 0));
        // Empty graph + zero parts: still just an empty assignment.
        let empty = Graph::from_adjacency(&[]);
        assert!(partition_graph(&empty, &PartitionOptions { num_parts: 0, ..Default::default() })
            .is_empty());
    }

    #[test]
    fn exactly_one_part_per_vertex_when_k_equals_n() {
        let g = grid_graph(3, 2);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 6, ..Default::default() });
        assert_eq!(parts, vec![0, 1, 2, 3, 4, 5], "k == n assigns vertex v to part v");
    }

    #[test]
    fn k_greater_than_n_part_indices_stay_in_range() {
        // The doc contract: part indices are always < num_parts, even in the
        // degenerate one-vertex-per-part shape with empty tail parts.
        let g = grid_graph(2, 3);
        let k = 17;
        let parts = partition_graph(&g, &PartitionOptions { num_parts: k, ..Default::default() });
        assert_eq!(parts.len(), 6);
        assert!(parts.iter().all(|&p| p < k), "part index out of range: {parts:?}");
        let mut counts = vec![0usize; k];
        for &p in &parts {
            counts[p] += 1;
        }
        assert!(counts[..6].iter().all(|&c| c == 1));
        assert!(counts[6..].iter().all(|&c| c == 0), "tail parts must be empty, not aliased");
    }

    #[test]
    fn disconnected_graph_is_fully_assigned() {
        // Two disjoint paths.
        let adjacency = vec![vec![1], vec![0, 2], vec![1], vec![4], vec![3, 5], vec![4]];
        let g = Graph::from_adjacency(&adjacency);
        let opts = PartitionOptions { num_parts: 2, ..Default::default() };
        let parts = partition_graph(&g, &opts);
        assert!(parts.iter().all(|&p| p < 2));
    }

    #[test]
    fn mesh_partition_sizes_track_target() {
        // The paper partitions ~7000-node meshes into sub-domains of ~1000.
        let domain = RandomBlobDomain::generate(4, 20, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, 2000);
        let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h));
        let g = Graph::from_mesh(&mesh);
        let k = mesh.num_nodes().div_ceil(500);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: k, ..Default::default() });
        let mut counts = vec![0usize; k];
        for &p in &parts {
            counts[p] += 1;
        }
        let ideal = mesh.num_nodes() as f64 / k as f64;
        for &c in &counts {
            assert!(
                (c as f64) > 0.5 * ideal && (c as f64) < 1.6 * ideal,
                "part size {c} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn rectangle_mesh_partition_quality() {
        let d = RectangleDomain::new(0.0, 0.0, 4.0, 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.07));
        let g = Graph::from_mesh(&mesh);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 4, ..Default::default() });
        let bf = balance_factor(&parts, 4);
        assert!(bf < 1.3, "balance {bf}");
        let cut = edge_cut(&g, &parts);
        assert!((cut as f64) < 0.2 * g.num_edges() as f64, "cut {cut} of {}", g.num_edges());
    }
}
