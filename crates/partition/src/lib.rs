//! Graph partitioning for domain decomposition — the METIS substitute.
//!
//! The paper partitions every mesh into sub-domains of ~500–2000 nodes with
//! METIS and then adds an overlap of 2 or 4 element layers (Section IV-A).
//! This crate reproduces that pipeline on the mesh node graph:
//!
//! * [`graph::Graph`] — a compact adjacency structure built from a mesh,
//! * [`partitioner`] — multi-seed greedy graph growing with farthest-point
//!   seeding and a balancing refinement pass,
//! * [`overlap`] — BFS expansion of each part by a configurable number of
//!   layers, producing the overlapping sub-domain node sets that the Schwarz
//!   restriction operators consume,
//! * [`quality`] — edge cut and balance metrics used by tests and benches.

pub mod graph;
pub mod overlap;
pub mod partitioner;
pub mod quality;

pub use graph::Graph;
pub use overlap::grow_overlap;
pub use partitioner::{partition_graph, PartitionOptions};
pub use quality::{balance_factor, edge_cut};

/// A partition assignment: `part[v]` is the sub-domain index of node `v`.
pub type Partition = Vec<usize>;

/// Partition a mesh into sub-domains of approximately `target_size` nodes and
/// grow each part by `overlap` layers.  Convenience wrapper used by the
/// higher-level crates: returns the overlapping node sets (sorted, one per
/// sub-domain).
pub fn partition_mesh_with_overlap(
    mesh: &meshgen::Mesh,
    target_size: usize,
    overlap: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let graph = Graph::from_mesh(mesh);
    let k = (mesh.num_nodes() + target_size - 1) / target_size.max(1);
    let opts = PartitionOptions { num_parts: k.max(1), seed, ..Default::default() };
    let parts = partition_graph(&graph, &opts);
    grow_overlap(&graph, &parts, opts.num_parts, overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain};

    #[test]
    fn mesh_partition_with_overlap_covers_all_nodes() {
        let domain = RandomBlobDomain::generate(1, 20, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, 1200);
        let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h));
        let subdomains = partition_mesh_with_overlap(&mesh, 300, 2, 0);
        assert!(subdomains.len() >= 3, "expected several sub-domains");
        // Every node appears in at least one sub-domain.
        let mut covered = vec![false; mesh.num_nodes()];
        for sd in &subdomains {
            for &v in sd {
                covered[v] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Overlap means the total is strictly larger than the node count.
        let total: usize = subdomains.iter().map(|s| s.len()).sum();
        assert!(total > mesh.num_nodes());
        // Sub-domain sizes should be in the right ballpark.
        for sd in &subdomains {
            assert!(sd.len() > 100 && sd.len() < 900, "sub-domain size {}", sd.len());
        }
    }
}
