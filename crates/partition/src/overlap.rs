//! Overlap expansion: turn a non-overlapping partition into the overlapping
//! sub-domains of the Additive Schwarz Method.
//!
//! The paper uses an overlap of 2 (and 4 in the ablation of Table I): each
//! sub-domain is the set of nodes of its part plus all nodes at graph distance
//! ≤ overlap from that part.

use rayon::prelude::*;
use std::collections::VecDeque;

use crate::graph::Graph;
use crate::Partition;

/// Expand every part of `partition` by `overlap` BFS layers.
///
/// Returns one sorted node list per part.  With `overlap == 0` the lists are
/// exactly the parts themselves.
pub fn grow_overlap(
    graph: &Graph,
    partition: &Partition,
    num_parts: usize,
    overlap: usize,
) -> Vec<Vec<usize>> {
    let n = graph.num_vertices();
    assert_eq!(partition.len(), n, "partition length mismatch");

    // Collect the core node lists.
    let mut cores: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    for (v, &p) in partition.iter().enumerate() {
        assert!(p < num_parts, "partition index {p} out of range");
        cores[p].push(v);
    }

    // Expand each part independently (embarrassingly parallel).
    cores
        .par_iter()
        .map(|core| {
            if overlap == 0 {
                let mut out = core.clone();
                out.sort_unstable();
                return out;
            }
            let mut level = vec![usize::MAX; n];
            let mut queue = VecDeque::new();
            for &v in core {
                level[v] = 0;
                queue.push_back(v);
            }
            let mut members = core.clone();
            while let Some(v) = queue.pop_front() {
                if level[v] >= overlap {
                    continue;
                }
                for &u in graph.neighbours(v) {
                    if level[u] == usize::MAX {
                        level[u] = level[v] + 1;
                        members.push(u);
                        queue.push_back(u);
                    }
                }
            }
            members.sort_unstable();
            members
        })
        .collect()
}

/// For each sub-domain, the number of nodes shared with at least one other
/// sub-domain (a measure of the overlap volume).
pub fn overlap_sizes(subdomains: &[Vec<usize>], num_nodes: usize) -> Vec<usize> {
    let mut multiplicity = vec![0usize; num_nodes];
    for sd in subdomains {
        for &v in sd {
            multiplicity[v] += 1;
        }
    }
    subdomains.iter().map(|sd| sd.iter().filter(|&&v| multiplicity[v] > 1).count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{partition_graph, PartitionOptions};

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut adjacency = vec![Vec::new(); nx * ny];
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                if i > 0 {
                    adjacency[me].push(idx(i - 1, j));
                }
                if i + 1 < nx {
                    adjacency[me].push(idx(i + 1, j));
                }
                if j > 0 {
                    adjacency[me].push(idx(i, j - 1));
                }
                if j + 1 < ny {
                    adjacency[me].push(idx(i, j + 1));
                }
            }
        }
        Graph::from_adjacency(&adjacency)
    }

    #[test]
    fn zero_overlap_returns_parts() {
        let g = grid_graph(10, 10);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 4, ..Default::default() });
        let sds = grow_overlap(&g, &parts, 4, 0);
        let total: usize = sds.iter().map(|s| s.len()).sum();
        assert_eq!(total, 100);
        // Each node exactly once.
        let mut seen = vec![0usize; 100];
        for sd in &sds {
            for &v in sd {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn overlap_grows_subdomains_monotonically() {
        let g = grid_graph(16, 16);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 4, ..Default::default() });
        let sd0 = grow_overlap(&g, &parts, 4, 0);
        let sd2 = grow_overlap(&g, &parts, 4, 2);
        let sd4 = grow_overlap(&g, &parts, 4, 4);
        for i in 0..4 {
            assert!(sd2[i].len() > sd0[i].len());
            assert!(sd4[i].len() > sd2[i].len());
            // Larger overlaps contain smaller ones.
            for v in &sd0[i] {
                assert!(sd2[i].binary_search(v).is_ok());
            }
            for v in &sd2[i] {
                assert!(sd4[i].binary_search(v).is_ok());
            }
        }
    }

    #[test]
    fn overlap_nodes_are_within_graph_distance() {
        let g = grid_graph(12, 12);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 3, ..Default::default() });
        let overlap = 2;
        let sds = grow_overlap(&g, &parts, 3, overlap);
        for (p, sd) in sds.iter().enumerate() {
            // BFS from the core of part p.
            let core: Vec<usize> = (0..144).filter(|&v| parts[v] == p).collect();
            let mut dist = vec![usize::MAX; 144];
            let mut queue = std::collections::VecDeque::new();
            for &v in &core {
                dist[v] = 0;
                queue.push_back(v);
            }
            while let Some(v) = queue.pop_front() {
                for &u in g.neighbours(v) {
                    if dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
            for &v in sd {
                assert!(dist[v] <= overlap, "node {v} is too far from part {p}");
            }
        }
    }

    #[test]
    fn sorted_and_unique_members() {
        let g = grid_graph(8, 8);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 2, ..Default::default() });
        let sds = grow_overlap(&g, &parts, 2, 3);
        for sd in &sds {
            let mut sorted = sd.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, sd);
        }
    }

    #[test]
    fn degenerate_k_ge_n_partition_flows_through_overlap() {
        // `partition_graph` with k >= n yields one vertex per part and empty
        // tail parts; `grow_overlap` must accept that assignment (all indices
        // are in range) and return empty node lists for the empty parts
        // instead of panicking or fabricating members.
        let g = grid_graph(2, 2);
        let k = 9;
        let parts = partition_graph(&g, &PartitionOptions { num_parts: k, ..Default::default() });
        let sds = grow_overlap(&g, &parts, k, 1);
        assert_eq!(sds.len(), k);
        for (p, sd) in sds.iter().enumerate().take(4) {
            // Singleton core + 1 overlap layer = the vertex and its
            // neighbours; every grid vertex has degree 2 here.
            assert_eq!(sd.len(), 3, "part {p}: {sd:?}");
            assert!(sd.contains(&p), "part {p} must contain its core vertex");
            assert!(sd.windows(2).all(|w| w[0] < w[1]), "sorted/unique");
        }
        for sd in &sds[4..] {
            assert!(sd.is_empty(), "tail parts past the vertex count must stay empty");
        }
        // The non-empty sub-domains together cover the whole graph.
        let sizes = overlap_sizes(&sds, 4);
        assert_eq!(sizes.len(), k);
        assert!(sizes[..4].iter().all(|&s| s > 0), "singleton cores fully overlap");
    }

    #[test]
    fn overlap_sizes_metric() {
        let g = grid_graph(10, 10);
        let parts = partition_graph(&g, &PartitionOptions { num_parts: 4, ..Default::default() });
        let sds0 = grow_overlap(&g, &parts, 4, 0);
        let sizes0 = overlap_sizes(&sds0, 100);
        assert!(sizes0.iter().all(|&s| s == 0), "no overlap with 0 layers");
        let sds2 = grow_overlap(&g, &parts, 4, 2);
        let sizes2 = overlap_sizes(&sds2, 100);
        assert!(sizes2.iter().all(|&s| s > 0), "overlap layers must create shared nodes");
    }
}
