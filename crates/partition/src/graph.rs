//! Compact undirected graph used by the partitioner.

use meshgen::Mesh;

/// An undirected graph in CSR-like adjacency storage.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbours: Vec<usize>,
}

impl Graph {
    /// Build from explicit adjacency lists (they are sorted/deduplicated
    /// internally; self-loops are dropped).
    pub fn from_adjacency(adjacency: &[Vec<usize>]) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbours = Vec::new();
        offsets.push(0);
        for (v, list) in adjacency.iter().enumerate() {
            let mut sorted: Vec<usize> = list.iter().copied().filter(|&u| u != v).collect();
            sorted.sort_unstable();
            sorted.dedup();
            neighbours.extend_from_slice(&sorted);
            offsets.push(neighbours.len());
        }
        Graph { offsets, neighbours }
    }

    /// Build the node graph of a mesh (nodes connected by mesh edges).
    pub fn from_mesh(mesh: &Mesh) -> Self {
        Self::from_adjacency(&mesh.node_adjacency())
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// Neighbours of vertex `v`.
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.neighbours[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Breadth-first distances from a source (usize::MAX for unreachable).
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_vertices()];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbours(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (true for the empty graph).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshgen::{generate_mesh, MeshingOptions, RectangleDomain};

    fn path_graph(n: usize) -> Graph {
        let adjacency: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut list = Vec::new();
                if i > 0 {
                    list.push(i - 1);
                }
                if i + 1 < n {
                    list.push(i + 1);
                }
                list
            })
            .collect();
        Graph::from_adjacency(&adjacency)
    }

    #[test]
    fn construction_and_degrees() {
        let g = path_graph(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbours(2), &[1, 3]);
        assert!(g.is_connected());
    }

    #[test]
    fn self_loops_and_duplicates_are_removed() {
        let adjacency = vec![vec![0, 1, 1, 2], vec![0, 0], vec![0]];
        let g = Graph::from_adjacency(&adjacency);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[0]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(6);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let adjacency = vec![vec![1], vec![0], vec![3], vec![2]];
        let g = Graph::from_adjacency(&adjacency);
        assert!(!g.is_connected());
        let d = g.bfs_distances(0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn mesh_graph_matches_mesh_adjacency() {
        let d = RectangleDomain::new(0.0, 0.0, 1.0, 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.2));
        let g = Graph::from_mesh(&mesh);
        assert_eq!(g.num_vertices(), mesh.num_nodes());
        assert!(g.is_connected());
        let adj = mesh.node_adjacency();
        for v in 0..mesh.num_nodes() {
            assert_eq!(g.neighbours(v), &adj[v][..]);
        }
    }
}
