//! BiCGStab — the stabilised bi-conjugate gradient method.
//!
//! The paper cites BiCGStab alongside CG and GMRES as the standard Krylov
//! methods (Section II).  It handles nonsymmetric systems, which lets the
//! benchmark harness run ablations with convection-type perturbations of the
//! Poisson operator, and it reuses the same [`Preconditioner`] abstraction.

use sparse::vector::{dot, norm2};
use sparse::CsrMatrix;

use crate::history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
use crate::preconditioner::Preconditioner;
use crate::resilience::{FaultEvent, FaultKind, FaultLog};
use crate::{SolveResult, SolverOptions};

/// Solve `A x = b` with right-preconditioned BiCGStab.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    opts: &SolverOptions,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "BiCGStab requires a square matrix");
    assert_eq!(a.nrows(), b.len(), "BiCGStab rhs length mismatch");
    let n = b.len();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "BiCGStab initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let bnorm = norm2(b);
    let threshold = opts.threshold(bnorm);
    let mut history = ConvergenceHistory::new();
    let mut faults = FaultLog::new();

    let mut r = vec![0.0; n];
    a.residual_into(b, &x, &mut r);
    let mut rnorm = norm2(&r);
    if opts.record_history {
        history.push(rnorm);
    }
    if rnorm <= threshold {
        return SolveResult {
            x,
            stats: SolveStats {
                iterations: 0,
                final_residual: rnorm,
                final_relative_residual: relative_residual_norm(rnorm, bnorm),
                stop_reason: StopReason::Converged,
                history,
                faults,
            },
        };
    }

    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut stop = StopReason::MaxIterations;
    let mut iterations = opts.max_iterations;

    for iter in 0..opts.max_iterations {
        let rho_new = dot(&r_hat, &r);
        if rho_new == 0.0 || !rho_new.is_finite() {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "bicgstab",
                format!("shadow product r̂·r = {rho_new}"),
            ));
            iterations = iter;
            break;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        preconditioner.apply(&p, &mut phat);
        a.spmv_into(&phat, &mut v);
        let rhat_v = dot(&r_hat, &v);
        if rhat_v == 0.0 || !rhat_v.is_finite() {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "bicgstab",
                format!("denominator r̂·v = {rhat_v}"),
            ));
            iterations = iter;
            break;
        }
        alpha = rho / rhat_v;
        // s = r - alpha v  (reuse r as s)
        for i in 0..n {
            r[i] -= alpha * v[i];
        }
        let snorm = norm2(&r);
        if snorm <= threshold {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            rnorm = snorm;
            if opts.record_history {
                history.push(rnorm);
            }
            stop = StopReason::Converged;
            iterations = iter + 1;
            break;
        }
        preconditioner.apply(&r, &mut shat);
        a.spmv_into(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "bicgstab",
                format!("stabiliser denominator t·t = {tt}"),
            ));
            iterations = iter + 1;
            break;
        }
        omega = dot(&t, &r) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] -= omega * t[i];
        }
        rnorm = norm2(&r);
        if opts.record_history {
            history.push(rnorm);
        }
        if !rnorm.is_finite() {
            stop = StopReason::Diverged;
            faults.record(FaultEvent::new(
                FaultKind::NonFinite,
                iter as u64,
                "bicgstab",
                "residual norm became non-finite",
            ));
            iterations = iter + 1;
            break;
        }
        if rnorm <= threshold {
            stop = StopReason::Converged;
            iterations = iter + 1;
            break;
        }
        if omega == 0.0 {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "bicgstab",
                "stabilisation weight ω vanished",
            ));
            iterations = iter + 1;
            break;
        }
    }

    preconditioner.collect_faults(&mut faults);
    SolveResult {
        x,
        stats: SolveStats {
            iterations,
            final_residual: rnorm,
            final_relative_residual: relative_residual_norm(rnorm, bnorm),
            stop_reason: stop,
            history,
            faults,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::{IdentityPreconditioner, JacobiPreconditioner};
    use crate::test_matrices::{convection_diffusion_1d, laplacian_2d};
    use crate::true_relative_residual;

    #[test]
    fn solves_spd_system() {
        let a = laplacian_2d(12, 12);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        let b = a.spmv(&x_true);
        let id = IdentityPreconditioner::new(n);
        let result = bicgstab(&a, &b, None, &id, &SolverOptions::with_tolerance(1e-10));
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-8);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion_1d(200, 0.5);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.1).collect();
        let b = a.spmv(&x_true);
        let id = IdentityPreconditioner::new(n);
        let result = bicgstab(&a, &b, None, &id, &SolverOptions::with_tolerance(1e-10));
        assert!(result.stats.converged());
        assert!(sparse::vector::relative_error(&result.x, &x_true) < 1e-6);
    }

    #[test]
    fn preconditioning_helps_on_nonsymmetric_system() {
        let a = convection_diffusion_1d(400, 0.9);
        let b = vec![1.0; 400];
        let opts = SolverOptions::with_tolerance(1e-8);
        let id = IdentityPreconditioner::new(400);
        let jacobi = JacobiPreconditioner::new(&a);
        let plain = bicgstab(&a, &b, None, &id, &opts);
        let prec = bicgstab(&a, &b, None, &jacobi, &opts);
        // Both variants must converge to the requested tolerance; Jacobi is a
        // weak preconditioner so we only require it not to break convergence.
        assert!(plain.stats.converged());
        assert!(prec.stats.converged());
        assert!(true_relative_residual(&a, &prec.x, &b) < 1e-6);
    }

    #[test]
    fn zero_rhs_immediate_convergence() {
        let a = laplacian_2d(4, 4);
        let id = IdentityPreconditioner::new(16);
        let result = bicgstab(&a, &[0.0; 16], None, &id, &SolverOptions::default());
        assert_eq!(result.stats.iterations, 0);
        assert!(result.stats.converged());
    }

    #[test]
    fn respects_iteration_cap() {
        let a = laplacian_2d(20, 20);
        let b = vec![1.0; a.nrows()];
        let id = IdentityPreconditioner::new(a.nrows());
        let opts = SolverOptions { max_iterations: 2, ..SolverOptions::with_tolerance(1e-14) };
        let result = bicgstab(&a, &b, None, &id, &opts);
        assert!(result.stats.iterations <= 2);
        assert!(!result.stats.converged());
    }
}
