//! Unpreconditioned Conjugate Gradient — the "CG" baseline of Table I.

use sparse::vector::{axpby, axpy, dot, norm2};
use sparse::CsrMatrix;

use crate::history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
use crate::resilience::{FaultEvent, FaultKind, FaultLog};
use crate::{SolveResult, SolverOptions};

/// Solve the SPD system `A x = b` with the Conjugate Gradient method.
///
/// `x0` provides the initial guess (pass `None` for the zero vector).  The
/// iteration stops when the recurrence residual norm drops below
/// `opts.threshold(‖b‖)` or the iteration cap is hit.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolverOptions,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "CG requires a square matrix");
    assert_eq!(a.nrows(), b.len(), "CG rhs length mismatch");
    let n = b.len();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "CG initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let bnorm = norm2(b);
    let threshold = opts.threshold(bnorm);
    let mut history = ConvergenceHistory::new();
    let mut faults = FaultLog::new();

    let mut r = vec![0.0; n];
    a.residual_into(b, &x, &mut r);
    let mut rnorm = norm2(&r);
    if opts.record_history {
        history.push(rnorm);
    }
    if rnorm <= threshold {
        return SolveResult {
            x,
            stats: SolveStats {
                iterations: 0,
                final_residual: rnorm,
                final_relative_residual: relative_residual_norm(rnorm, bnorm),
                stop_reason: StopReason::Converged,
                history,
                faults,
            },
        };
    }

    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rho = dot(&r, &r);
    let mut stop = StopReason::MaxIterations;
    let mut iterations = opts.max_iterations;

    for iter in 0..opts.max_iterations {
        a.spmv_into(&p, &mut q);
        let pq = dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "cg",
                format!("non-positive or non-finite curvature p·Ap = {pq}"),
            ));
            iterations = iter;
            break;
        }
        let alpha = rho / pq;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &q, &mut r);
        rnorm = norm2(&r);
        if opts.record_history {
            history.push(rnorm);
        }
        if !rnorm.is_finite() {
            stop = StopReason::Diverged;
            faults.record(FaultEvent::new(
                FaultKind::NonFinite,
                iter as u64,
                "cg",
                "residual norm became non-finite",
            ));
            iterations = iter + 1;
            break;
        }
        if rnorm <= threshold {
            stop = StopReason::Converged;
            iterations = iter + 1;
            break;
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        // p = r + beta p
        axpby(1.0, &r, beta, &mut p);
    }

    SolveResult {
        x,
        stats: SolveStats {
            iterations,
            final_residual: rnorm,
            final_relative_residual: relative_residual_norm(rnorm, bnorm),
            stop_reason: stop,
            history,
            faults,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_matrices::laplacian_2d;
    use crate::true_relative_residual;

    #[test]
    fn solves_laplacian_to_tolerance() {
        let a = laplacian_2d(15, 15);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.3 - 1.0).collect();
        let b = a.spmv(&x_true);
        let opts = SolverOptions::with_tolerance(1e-10);
        let result = conjugate_gradient(&a, &b, None, &opts);
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-9);
        assert!(sparse::vector::relative_error(&result.x, &x_true) < 1e-7);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_2d(4, 4);
        let b = vec![0.0; 16];
        let result = conjugate_gradient(&a, &b, None, &SolverOptions::default());
        assert_eq!(result.stats.iterations, 0);
        assert!(result.stats.converged());
        assert!(result.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = laplacian_2d(12, 12);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let b = a.spmv(&x_true);
        let opts = SolverOptions::with_tolerance(1e-8);
        let cold = conjugate_gradient(&a, &b, None, &opts);
        // warm start very close to the solution
        let guess: Vec<f64> = x_true.iter().map(|v| v * 0.999).collect();
        let warm = conjugate_gradient(&a, &b, Some(&guess), &opts);
        assert!(warm.stats.iterations < cold.stats.iterations);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = laplacian_2d(20, 20);
        let b = vec![1.0; a.nrows()];
        let opts = SolverOptions { max_iterations: 3, ..SolverOptions::with_tolerance(1e-14) };
        let result = conjugate_gradient(&a, &b, None, &opts);
        assert_eq!(result.stats.iterations, 3);
        assert_eq!(result.stats.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn history_is_monotone_enough_and_recorded() {
        let a = laplacian_2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let result = conjugate_gradient(&a, &b, None, &SolverOptions::with_tolerance(1e-8));
        let h = result.stats.history.norms();
        assert!(h.len() >= 2);
        assert!(h.last().unwrap() < h.first().unwrap());
    }

    #[test]
    fn iteration_count_grows_with_problem_size() {
        // The paper's Table I: plain CG iteration count grows strongly with N.
        let opts = SolverOptions::with_tolerance(1e-6);
        let mut iters = Vec::new();
        for &n in &[8usize, 16, 32] {
            let a = laplacian_2d(n, n);
            let b = vec![1.0; a.nrows()];
            let result = conjugate_gradient(&a, &b, None, &opts);
            assert!(result.stats.converged());
            iters.push(result.stats.iterations);
        }
        assert!(iters[2] > iters[1] && iters[1] > iters[0], "CG iterations {iters:?}");
    }
}
