//! Convergence bookkeeping shared by all Krylov drivers.

use crate::resilience::FaultLog;

/// Relative residual norm `‖r‖ / ‖b‖` with explicit zero-rhs semantics.
///
/// For `‖b‖ = 0` the quotient is ill-defined, and silently substituting the
/// absolute residual (as the solvers used to) makes the field lie about its
/// own definition.  The convention, used by every solver in this crate and by
/// [`crate::true_relative_residual`]:
///
/// * `bnorm > 0` → `rnorm / bnorm` (the ordinary definition);
/// * `bnorm == 0`, `rnorm == 0` → `0.0` (the exact solution `x = 0` of
///   `A x = 0` was found);
/// * `bnorm == 0`, `rnorm > 0` → [`f64::INFINITY`] (no nonzero residual is
///   "relatively small" against a zero right-hand side — judge such solves
///   by the absolute residual and the absolute tolerance instead).
pub fn relative_residual_norm(rnorm: f64, bnorm: f64) -> f64 {
    if bnorm > 0.0 {
        rnorm / bnorm
    } else if rnorm == 0.0 {
        0.0
    } else {
        f64::INFINITY
    }
}

/// Why the iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The residual norm dropped below the requested threshold.
    Converged,
    /// The iteration cap was reached before convergence.
    MaxIterations,
    /// A breakdown occurred (zero denominator in a recurrence).
    Breakdown,
    /// The residual or iterate became non-finite.
    Diverged,
}

/// Residual-norm trace of a solve, one entry per iteration (including the
/// initial residual at index 0 when recording is enabled).
#[derive(Debug, Clone, Default)]
pub struct ConvergenceHistory {
    residual_norms: Vec<f64>,
}

impl ConvergenceHistory {
    /// Create an empty history.
    pub fn new() -> Self {
        ConvergenceHistory { residual_norms: Vec::new() }
    }

    /// Append a residual norm.
    pub fn push(&mut self, norm: f64) {
        self.residual_norms.push(norm);
    }

    /// The recorded norms, oldest first.
    pub fn norms(&self) -> &[f64] {
        &self.residual_norms
    }

    /// Relative norms with respect to the first recorded entry.
    pub fn relative(&self) -> Vec<f64> {
        match self.residual_norms.first() {
            Some(&first) if first > 0.0 => self.residual_norms.iter().map(|&r| r / first).collect(),
            _ => self.residual_norms.clone(),
        }
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.residual_norms.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.residual_norms.is_empty()
    }

    /// Average residual reduction factor per iteration (geometric mean),
    /// with explicit semantics for the degenerate endpoints (mirroring the
    /// zero-rhs contract of [`relative_residual_norm`]):
    ///
    /// * fewer than two entries, or a non-finite or negative endpoint →
    ///   `None` (no reduction is defined);
    /// * `first == 0` and `last == 0` → `Some(0.0)` (the solve started —
    ///   and stayed — at the exact solution; every step "reduced" an
    ///   already-zero residual);
    /// * `first == 0` and `last > 0` → `None` (the residual grew from
    ///   exact zero; no finite per-step factor describes that);
    /// * `first > 0` and `last == 0` → `Some(0.0)` (exact convergence);
    /// * otherwise → `(last / first)^(1 / steps)`.
    ///
    /// The old behaviour divided by `first` unconditionally for positive
    /// endpoints and let NaN/∞ endpoints fall through the `<= 0.0` guards,
    /// propagating non-finite factors to callers.
    pub fn mean_reduction_factor(&self) -> Option<f64> {
        let (Some(&first), Some(&last)) = (self.residual_norms.first(), self.residual_norms.last())
        else {
            return None;
        };
        if self.residual_norms.len() < 2 {
            return None;
        }
        if !first.is_finite() || !last.is_finite() || first < 0.0 || last < 0.0 {
            return None;
        }
        if last == 0.0 {
            // Covers first == 0 (already converged at entry) and first > 0
            // (exact convergence) alike.
            return Some(0.0);
        }
        if first == 0.0 {
            return None;
        }
        let steps = (self.residual_norms.len() - 1) as f64;
        Some((last / first).powf(1.0 / steps))
    }
}

/// Summary statistics for a completed solve.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final (preconditioned-solver reported) residual norm.
    pub final_residual: f64,
    /// Final residual norm relative to the right-hand side norm, with the
    /// zero-rhs semantics of [`relative_residual_norm`]: for `‖b‖ = 0` this
    /// is `0.0` when the final residual is exactly zero and
    /// [`f64::INFINITY`] otherwise (a zero-rhs solve should be judged by
    /// [`SolveStats::final_residual`] against the absolute tolerance).
    pub final_relative_residual: f64,
    /// Why the solver stopped.
    pub stop_reason: StopReason,
    /// Optional residual trace.
    pub history: ConvergenceHistory,
    /// Classified faults contained during the solve — breakdowns observed by
    /// the driver plus anything the preconditioner recorded internally
    /// (panics, non-finite outputs, downgrades of a resilience ladder).
    /// Empty on the healthy path.
    pub faults: FaultLog,
}

impl SolveStats {
    /// True when the solver reports convergence.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }

    /// True when any fault was contained or any ladder downgrade fired.
    pub fn degraded(&self) -> bool {
        !self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_history_is_scaled_by_first_entry() {
        let mut h = ConvergenceHistory::new();
        h.push(10.0);
        h.push(1.0);
        h.push(0.1);
        assert_eq!(h.relative(), vec![1.0, 0.1, 0.01]);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn mean_reduction_factor_geometric() {
        let mut h = ConvergenceHistory::new();
        h.push(1.0);
        h.push(0.1);
        h.push(0.01);
        let f = h.mean_reduction_factor().unwrap();
        assert!((f - 0.1).abs() < 1e-12);
        assert!(ConvergenceHistory::new().mean_reduction_factor().is_none());
    }

    #[test]
    fn mean_reduction_factor_degenerate_endpoints() {
        let push_all = |norms: &[f64]| {
            let mut h = ConvergenceHistory::new();
            for &v in norms {
                h.push(v);
            }
            h
        };
        // Single entry: no step, no factor.
        assert_eq!(push_all(&[0.0]).mean_reduction_factor(), None);
        // Zero-rhs solve converged at entry and stayed there: Some(0.0),
        // mirroring relative_residual_norm(0, 0) == 0.
        assert_eq!(push_all(&[0.0, 0.0]).mean_reduction_factor(), Some(0.0));
        assert_eq!(push_all(&[0.0, 0.0, 0.0]).mean_reduction_factor(), Some(0.0));
        // Exact convergence from a positive start.
        assert_eq!(push_all(&[1.0, 0.0]).mean_reduction_factor(), Some(0.0));
        // Residual grew from exact zero: undefined.
        assert_eq!(push_all(&[0.0, 1.0]).mean_reduction_factor(), None);
        // Non-finite endpoints (the old guards let these through as NaN/inf).
        assert_eq!(push_all(&[f64::NAN, 1.0]).mean_reduction_factor(), None);
        assert_eq!(push_all(&[f64::INFINITY, 1.0]).mean_reduction_factor(), None);
        assert_eq!(push_all(&[1.0, f64::NAN]).mean_reduction_factor(), None);
        assert_eq!(push_all(&[1.0, f64::INFINITY]).mean_reduction_factor(), None);
        // Negative norms are malformed input, not a reduction.
        assert_eq!(push_all(&[-1.0, 0.5]).mean_reduction_factor(), None);
    }

    #[test]
    fn stats_converged_flag() {
        let stats = SolveStats {
            iterations: 5,
            final_residual: 1e-8,
            final_relative_residual: 1e-9,
            stop_reason: StopReason::Converged,
            history: ConvergenceHistory::new(),
            faults: FaultLog::default(),
        };
        assert!(stats.converged());
        assert!(!stats.degraded());
        let stats = SolveStats { stop_reason: StopReason::MaxIterations, ..stats };
        assert!(!stats.converged());
    }

    #[test]
    fn empty_history_relative_is_empty() {
        let h = ConvergenceHistory::new();
        assert!(h.relative().is_empty());
        assert!(h.is_empty());
    }
}
