//! The preconditioner abstraction and the simple built-in preconditioners.
//!
//! A preconditioner maps a residual vector `r` to a correction `z ≈ A⁻¹ r`.
//! The DDM-GNN and Schwarz preconditioners of the paper implement this trait
//! in their own crates; here we provide the identity (plain CG), Jacobi
//! (diagonal scaling) and IC(0) wrappers used as baselines.

use sanitizer::TrackedMutex;
use std::sync::atomic::{AtomicU64, Ordering};

use sparse::{CsrMatrix, IncompleteCholesky};

use crate::resilience::{FaultEvent, FaultKind, FaultLog};

/// Maps a residual to a correction, `z = M⁻¹ r`.
///
/// Implementations must be `Send + Sync` so the solve drivers can be used from
/// parallel benchmark harnesses.
pub trait Preconditioner: Send + Sync {
    /// Apply the preconditioner: write `z = M⁻¹ r` into `z`.
    ///
    /// `z` and `r` always have the same length (the system dimension).
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Fallible application: like [`Preconditioner::apply`] but classified
    /// numerical errors (dimension mismatches, singular local factors, ...)
    /// are returned instead of panicking or being silently absorbed.
    ///
    /// The default forwards to `apply`; the resilience guards in
    /// [`crate::resilience`] call this entry point so implementations that
    /// *can* fail get their errors classified as
    /// [`crate::resilience::FaultKind::NumericalError`] rather than
    /// [`crate::resilience::FaultKind::Panic`].
    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> sparse::Result<()> {
        self.apply(r, z);
        Ok(())
    }

    /// Apply the preconditioner to a batch of residuals at once: write
    /// `zs[c] = M⁻¹ rs[c]` for every column `c`.
    ///
    /// The default loops over the columns with [`Preconditioner::apply`], so
    /// every existing preconditioner works unchanged; bandwidth-bound
    /// implementations (the DDM-GNN apply in particular) override this to
    /// stream their weight/plan panels once for all columns.  Implementations
    /// must keep each column's result bit-identical to an unbatched `apply`
    /// of that column alone.
    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        for (r, z) in rs.iter().zip(zs.iter_mut()) {
            self.apply(r, z);
        }
    }

    /// Dimension of vectors this preconditioner acts on.
    fn dim(&self) -> usize;

    /// A short human-readable name used by the benchmark harness tables.
    fn name(&self) -> &str {
        "preconditioner"
    }

    /// Append any faults this preconditioner contained internally (since its
    /// construction) to `into`.  The solve drivers call this once at the end
    /// of a solve so contained faults surface on
    /// [`crate::SolveStats::faults`].  The default records nothing.
    fn collect_faults(&self, _into: &mut FaultLog) {}
}

/// Boxed trait objects forward every entry point, so ladder tiers
/// (`Box<dyn Preconditioner>`) compose with the generic wrappers — e.g.
/// `FaultInjectingPreconditioner<Box<dyn Preconditioner>>`.
impl Preconditioner for Box<dyn Preconditioner> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z);
    }

    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> sparse::Result<()> {
        (**self).apply_checked(r, z)
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        (**self).apply_batch(rs, zs);
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        (**self).collect_faults(into);
    }
}

/// The identity preconditioner: `z = r` (turns PCG into plain CG).
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity acting on vectors of length `n`.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = r_i / A_ii`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from the diagonal of `a`.  Zero diagonal entries are treated as 1
    /// so the operator stays well defined (they do not occur for assembled
    /// Poisson matrices).
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d.abs() <= f64::EPSILON { 1.0 } else { 1.0 / d })
            .collect();
        JacobiPreconditioner { inv_diag }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn name(&self) -> &str {
        "jacobi"
    }
}

/// IC(0) incomplete-Cholesky preconditioner (the paper's Table III baseline).
pub struct Ic0Preconditioner {
    factor: IncompleteCholesky,
    applies: AtomicU64,
    faults: TrackedMutex<FaultLog>,
}

impl Ic0Preconditioner {
    /// Factor the matrix with zero fill-in.
    pub fn new(a: &CsrMatrix) -> sparse::Result<Self> {
        Ok(Ic0Preconditioner {
            factor: IncompleteCholesky::factor(a)?,
            applies: AtomicU64::new(0),
            faults: TrackedMutex::new(
                FaultLog::new(),
                "krylov::preconditioner::Ic0Preconditioner::faults",
            ),
        })
    }
}

impl Preconditioner for Ic0Preconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        if let Err(e) = self.factor.apply_into(r, z) {
            // A classified error (dimension mismatch), not a panic: fall back
            // to the identity correction when shapes admit it (zeros
            // otherwise) and record the fault so it surfaces on SolveStats.
            if z.len() == r.len() {
                z.copy_from_slice(r);
            } else {
                for v in z.iter_mut() {
                    *v = 0.0;
                }
            }
            self.faults.lock().record(FaultEvent::new(
                FaultKind::NumericalError,
                idx,
                "ic0",
                format!("{e}; identity fallback engaged"),
            ));
        }
    }

    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> sparse::Result<()> {
        self.applies.fetch_add(1, Ordering::SeqCst);
        self.factor.apply_into(r, z)
    }

    fn dim(&self) -> usize {
        self.factor.dim()
    }

    fn name(&self) -> &str {
        "ic0"
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        into.merge(self.faults.lock().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_matrices::laplacian_2d;

    #[test]
    fn identity_copies_input() {
        let p = IdentityPreconditioner::new(3);
        let r = [1.0, 2.0, 3.0];
        let mut z = [0.0; 3];
        p.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_scales_by_inverse_diagonal() {
        let a = laplacian_2d(3, 3);
        let p = JacobiPreconditioner::new(&a);
        let r = vec![4.0; 9];
        let mut z = vec![0.0; 9];
        p.apply(&r, &mut z);
        assert!(z.iter().all(|&v| (v - 1.0).abs() < 1e-14));
        assert_eq!(p.dim(), 9);
    }

    #[test]
    fn ic0_wrapper_is_spd_application() {
        let a = laplacian_2d(6, 6);
        let p = Ic0Preconditioner::new(&a).unwrap();
        let r: Vec<f64> = (0..36).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut z = vec![0.0; 36];
        p.apply(&r, &mut z);
        assert!(sparse::vector::dot(&z, &r) > 0.0);
        assert_eq!(p.name(), "ic0");
        assert_eq!(p.dim(), 36);
    }

    #[test]
    fn ic0_dimension_mismatch_is_classified_not_a_panic() {
        let a = laplacian_2d(4, 4);
        let p = Ic0Preconditioner::new(&a).unwrap();
        // Wrong-length vectors: apply_checked reports the error...
        let r_bad = vec![1.0; 7];
        let mut z_bad = vec![0.0; 7];
        assert!(p.apply_checked(&r_bad, &mut z_bad).is_err());
        // ...and apply survives with the identity fallback plus a recorded
        // fault instead of the old `.expect` panic.
        p.apply(&r_bad, &mut z_bad);
        assert_eq!(z_bad, r_bad);
        let mut log = FaultLog::new();
        p.collect_faults(&mut log);
        assert!(log.has_kind(FaultKind::NumericalError));
        assert_eq!(log.events()[0].tier, "ic0");
    }
}
