//! The preconditioner abstraction and the simple built-in preconditioners.
//!
//! A preconditioner maps a residual vector `r` to a correction `z ≈ A⁻¹ r`.
//! The DDM-GNN and Schwarz preconditioners of the paper implement this trait
//! in their own crates; here we provide the identity (plain CG), Jacobi
//! (diagonal scaling) and IC(0) wrappers used as baselines.

use sparse::{CsrMatrix, IncompleteCholesky};

/// Maps a residual to a correction, `z = M⁻¹ r`.
///
/// Implementations must be `Send + Sync` so the solve drivers can be used from
/// parallel benchmark harnesses.
pub trait Preconditioner: Send + Sync {
    /// Apply the preconditioner: write `z = M⁻¹ r` into `z`.
    ///
    /// `z` and `r` always have the same length (the system dimension).
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Dimension of vectors this preconditioner acts on.
    fn dim(&self) -> usize;

    /// A short human-readable name used by the benchmark harness tables.
    fn name(&self) -> &str {
        "preconditioner"
    }
}

/// The identity preconditioner: `z = r` (turns PCG into plain CG).
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity acting on vectors of length `n`.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = r_i / A_ii`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from the diagonal of `a`.  Zero diagonal entries are treated as 1
    /// so the operator stays well defined (they do not occur for assembled
    /// Poisson matrices).
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d.abs() <= f64::EPSILON { 1.0 } else { 1.0 / d })
            .collect();
        JacobiPreconditioner { inv_diag }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn name(&self) -> &str {
        "jacobi"
    }
}

/// IC(0) incomplete-Cholesky preconditioner (the paper's Table III baseline).
pub struct Ic0Preconditioner {
    factor: IncompleteCholesky,
}

impl Ic0Preconditioner {
    /// Factor the matrix with zero fill-in.
    pub fn new(a: &CsrMatrix) -> sparse::Result<Self> {
        Ok(Ic0Preconditioner { factor: IncompleteCholesky::factor(a)? })
    }
}

impl Preconditioner for Ic0Preconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.factor
            .apply_into(r, z)
            .expect("IC(0) application failed on a vector of the factored dimension");
    }

    fn dim(&self) -> usize {
        self.factor.dim()
    }

    fn name(&self) -> &str {
        "ic0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_matrices::laplacian_2d;

    #[test]
    fn identity_copies_input() {
        let p = IdentityPreconditioner::new(3);
        let r = [1.0, 2.0, 3.0];
        let mut z = [0.0; 3];
        p.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_scales_by_inverse_diagonal() {
        let a = laplacian_2d(3, 3);
        let p = JacobiPreconditioner::new(&a);
        let r = vec![4.0; 9];
        let mut z = vec![0.0; 9];
        p.apply(&r, &mut z);
        assert!(z.iter().all(|&v| (v - 1.0).abs() < 1e-14));
        assert_eq!(p.dim(), 9);
    }

    #[test]
    fn ic0_wrapper_is_spd_application() {
        let a = laplacian_2d(6, 6);
        let p = Ic0Preconditioner::new(&a).unwrap();
        let r: Vec<f64> = (0..36).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut z = vec![0.0; 36];
        p.apply(&r, &mut z);
        assert!(sparse::vector::dot(&z, &r) > 0.0);
        assert_eq!(p.name(), "ic0");
        assert_eq!(p.dim(), 36);
    }
}
