//! Krylov iterative solvers for sparse symmetric and nonsymmetric systems.
//!
//! The paper's hybrid solver is a Preconditioned Conjugate Gradient
//! (Algorithm 1) whose preconditioner is the DDM-GNN operator.  This crate
//! provides that PCG driver together with the unpreconditioned CG baseline of
//! Table I, plus BiCGStab and restarted GMRES which the paper cites as the
//! standard Krylov family (Section II) — useful for ablation experiments with
//! non-symmetric perturbations of the operator.
//!
//! Preconditioners plug in through the [`Preconditioner`] trait; the identity,
//! Jacobi and IC(0) wrappers live here, the Schwarz and GNN preconditioners in
//! the `ddm` and `ddm-gnn` crates.

// Library code must not panic via unwrap — the resilience supervisor relies
// on it (detlint enforces the wider contract; clippy carries this slice).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod batch;
pub mod bicgstab;
pub mod cg;
pub mod gmres;
pub mod history;
pub mod pcg;
pub mod preconditioner;
pub mod resilience;

pub use batch::solve_batch;
pub use bicgstab::bicgstab;
pub use cg::conjugate_gradient;
pub use gmres::gmres;
pub use history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
pub use pcg::preconditioned_conjugate_gradient;
pub use preconditioner::{
    Ic0Preconditioner, IdentityPreconditioner, JacobiPreconditioner, Preconditioner,
};
pub use resilience::{
    Degradation, DegradationLadder, FaultEvent, FaultInjectingPreconditioner, FaultKind, FaultLog,
    GuardedPreconditioner, InjectedFault, ResiliencePolicy,
};

use sparse::CsrMatrix;

/// Options shared by every Krylov driver in this crate.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Relative residual tolerance `‖rₖ‖ / ‖b‖` at which to declare convergence.
    pub rel_tolerance: f64,
    /// Absolute residual tolerance (used when `‖b‖` is zero, and as a floor).
    pub abs_tolerance: f64,
    /// Hard cap on the number of iterations.
    pub max_iterations: usize,
    /// Record the residual norm at every iteration in the returned history.
    pub record_history: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            rel_tolerance: 1e-6,
            abs_tolerance: 1e-14,
            max_iterations: 10_000,
            record_history: true,
        }
    }
}

impl SolverOptions {
    /// Convenience constructor with the given relative tolerance.
    pub fn with_tolerance(rel_tolerance: f64) -> Self {
        SolverOptions { rel_tolerance, ..Default::default() }
    }

    /// Builder-style setter for the iteration cap.
    pub fn max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// The residual threshold for a right-hand side of norm `bnorm`.
    pub fn threshold(&self, bnorm: f64) -> f64 {
        (self.rel_tolerance * bnorm).max(self.abs_tolerance)
    }
}

/// Result of a linear solve: the approximate solution plus statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Approximate solution vector.
    pub x: Vec<f64>,
    /// Statistics (iterations, final residual, convergence flag, history).
    pub stats: SolveStats,
}

/// Compute the true relative residual `‖b - A x‖ / ‖b‖`, with the zero-rhs
/// semantics of [`relative_residual_norm`] (0 for a zero residual, infinite
/// otherwise).
pub fn true_relative_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.residual_into(b, x, &mut r);
    relative_residual_norm(sparse::vector::norm2(&r), sparse::vector::norm2(b))
}

#[cfg(test)]
pub(crate) mod test_matrices {
    //! Matrices shared by the solver tests.
    use sparse::{CooMatrix, CsrMatrix};

    /// 2D 5-point Laplacian on an `nx × ny` grid (SPD).
    pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                coo.push(me, me, 4.0).unwrap();
                if i > 0 {
                    coo.push(me, idx(i - 1, j), -1.0).unwrap();
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1), -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    /// A nonsymmetric convection–diffusion style matrix (diagonally dominant).
    pub fn convection_diffusion_1d(n: usize, wind: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + wind.abs()).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0 - wind).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0 + wind).unwrap();
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_threshold_uses_relative_and_absolute_floors() {
        let opts = SolverOptions::with_tolerance(1e-6);
        assert!((opts.threshold(100.0) - 1e-4).abs() < 1e-18);
        assert_eq!(opts.threshold(0.0), opts.abs_tolerance);
        let opts = opts.max_iterations(3);
        assert_eq!(opts.max_iterations, 3);
    }

    #[test]
    fn true_relative_residual_zero_for_exact_solution() {
        let a = test_matrices::laplacian_2d(4, 4);
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b = a.spmv(&x);
        assert!(true_relative_residual(&a, &x, &b) < 1e-14);
        let zero_b = vec![0.0; 16];
        let zero_x = vec![0.0; 16];
        assert_eq!(true_relative_residual(&a, &zero_x, &zero_b), 0.0);
    }
}
