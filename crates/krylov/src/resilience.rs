//! Fault containment, classification and graceful degradation for
//! preconditioned solves.
//!
//! The flexible-PCG safeguard in [`crate::pcg`] already tolerates a
//! *numerically wrong* preconditioner; this module extends the guarantee to a
//! preconditioner that panics, emits NaN/inf, returns identically zero
//! corrections, stalls, or stops making progress.  Three cooperating pieces:
//!
//! * [`GuardedPreconditioner`] — wraps a single preconditioner, contains
//!   panics (`catch_unwind`), scans outputs for non-finite values, tracks
//!   stagnation and per-apply wall-clock budgets, and classifies every event
//!   into a [`FaultKind`] recorded on a [`FaultLog`];
//! * [`DegradationLadder`] — a stack of tiers (e.g. GNN-int8 → GNN-f32 →
//!   GNN-f64 → ASM → Jacobi) that downgrades *in place* on a classified
//!   fault, without restarting the outer solve — the flexible PCG update
//!   tolerates a preconditioner that changes between iterations;
//! * [`FaultInjectingPreconditioner`] — a deterministic test double whose
//!   faults are scheduled by apply-count (optionally drawn from a seeded
//!   ChaCha8 stream), so fault-injection runs are bit-reproducible at every
//!   thread count.
//!
//! Guards never perturb a healthy apply: they only *read* the output vector,
//! so a fault-free solve is bit-identical to an unguarded one (hash-pinned by
//! the end-to-end resilience suite).

use sanitizer::TrackedMutex;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sparse::vector::norm2;

use crate::preconditioner::Preconditioner;

/// Classification of a contained preconditioner fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The preconditioner panicked during `apply` (contained by
    /// `catch_unwind`).
    Panic,
    /// The output vector contained a NaN or infinite component.
    NonFinite,
    /// The output vector was identically zero for a nonzero residual.
    ZeroOutput,
    /// No residual reduction over the configured stagnation window.
    Stagnation,
    /// A single apply exceeded the configured wall-clock budget.
    TimeBudget,
    /// A Krylov recurrence denominator vanished or left the real line.
    Breakdown,
    /// A fallible operation reported a classified numerical error
    /// (dimension mismatch, singular local factor, ...).
    NumericalError,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Panic => "panic",
            FaultKind::NonFinite => "non-finite-output",
            FaultKind::ZeroOutput => "zero-output",
            FaultKind::Stagnation => "stagnation",
            FaultKind::TimeBudget => "time-budget",
            FaultKind::Breakdown => "breakdown",
            FaultKind::NumericalError => "numerical-error",
        };
        f.write_str(s)
    }
}

/// One classified fault: what happened, at which apply, in which tier.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Classification of the fault.
    pub kind: FaultKind,
    /// The preconditioner apply count (≈ outer iteration) at which it fired.
    pub apply_index: u64,
    /// Name of the tier (or solver) in which the fault was observed.
    pub tier: String,
    /// Free-form human-readable description.
    pub detail: String,
}

impl FaultEvent {
    /// Construct an event.
    pub fn new(kind: FaultKind, apply_index: u64, tier: &str, detail: impl Into<String>) -> Self {
        FaultEvent { kind, apply_index, tier: tier.to_string(), detail: detail.into() }
    }
}

/// One step down the degradation ladder.
#[derive(Debug, Clone)]
pub struct Degradation {
    /// Tier that faulted.
    pub from: String,
    /// Tier that took over.
    pub to: String,
    /// The apply count at which the downgrade fired.
    pub apply_index: u64,
}

/// Record of every contained fault and downgrade observed during a solve.
///
/// Carried by [`crate::SolveStats`]; empty (and allocation-free) on the
/// healthy path.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
    degradations: Vec<Degradation>,
    final_tier: Option<String>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Append a classified fault.
    pub fn record(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Append a ladder downgrade.
    pub fn record_degradation(&mut self, degradation: Degradation) {
        self.degradations.push(degradation);
    }

    /// Set the tier that finished the solve.
    pub fn set_final_tier(&mut self, tier: &str) {
        self.final_tier = Some(tier.to_string());
    }

    /// The tier that finished the solve, when a supervisor reported one.
    pub fn final_tier(&self) -> Option<&str> {
        self.final_tier.as_deref()
    }

    /// All classified faults, oldest first.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// All ladder downgrades, oldest first.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// Whether any fault of the given kind was recorded.
    pub fn has_kind(&self, kind: FaultKind) -> bool {
        self.events.iter().any(|e| e.kind == kind)
    }

    /// Number of faults of the given kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// True when nothing was recorded (the healthy path).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.degradations.is_empty()
    }

    /// Absorb another log (events and degradations appended; `other`'s final
    /// tier wins when set).
    pub fn merge(&mut self, other: FaultLog) {
        self.events.extend(other.events);
        self.degradations.extend(other.degradations);
        if other.final_tier.is_some() {
            self.final_tier = other.final_tier;
        }
    }
}

/// Knobs for the guards in [`GuardedPreconditioner`] and
/// [`DegradationLadder`].
///
/// Every guard only *reads* the residual and output vectors, so no setting
/// here can perturb healthy-path numerics — the hash-pin test in the
/// end-to-end resilience suite holds for any policy.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Scan outputs for NaN/inf components.
    pub nonfinite_guard: bool,
    /// Flag identically-zero outputs for a nonzero residual.
    pub zero_output_guard: bool,
    /// Number of consecutive applies without residual-norm improvement
    /// before a [`FaultKind::Stagnation`] fires.  `0` disables the check.
    pub stagnation_window: usize,
    /// Per-apply wall-clock budget; an overrun keeps the (valid) output but
    /// downgrades the ladder for subsequent applies.  `None` disables the
    /// check — the default, so machine load cannot trigger spurious
    /// downgrades in reproducible benchmark runs.
    pub apply_time_budget: Option<Duration>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            nonfinite_guard: true,
            zero_output_guard: true,
            stagnation_window: 64,
            apply_time_budget: None,
        }
    }
}

/// Renders a contained panic payload for the fault log.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scan the output of an apply and classify it, if faulty.
fn classify_output(r: &[f64], z: &[f64], policy: &ResiliencePolicy) -> Option<(FaultKind, String)> {
    if policy.nonfinite_guard {
        if let Some(i) = z.iter().position(|v| !v.is_finite()) {
            return Some((
                FaultKind::NonFinite,
                format!("output component {i} is {} after apply", z[i]),
            ));
        }
    }
    if policy.zero_output_guard && z.iter().all(|&v| v == 0.0) && r.iter().any(|&v| v != 0.0) {
        return Some((
            FaultKind::ZeroOutput,
            "identically zero output for a nonzero residual".to_string(),
        ));
    }
    None
}

/// Run one apply under the panic/error/output guards.
///
/// Returns the wall-clock time of a healthy apply, or the classified fault.
/// `AssertUnwindSafe` is sound here: the scratch buffers the wrapped
/// preconditioners share across threads sit behind mutexes that already
/// recover from poisoning, and `z` is overwritten by any fallback.
fn run_guarded(
    p: &dyn Preconditioner,
    r: &[f64],
    z: &mut [f64],
    policy: &ResiliencePolicy,
) -> Result<Duration, (FaultKind, String)> {
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| p.apply_checked(r, z))) {
        Err(payload) => return Err((FaultKind::Panic, panic_message(payload.as_ref()))),
        Ok(Err(e)) => return Err((FaultKind::NumericalError, e.to_string())),
        Ok(Ok(())) => {}
    }
    if let Some(fault) = classify_output(r, z, policy) {
        return Err(fault);
    }
    Ok(start.elapsed())
}

/// Run one *batched* apply under the panic/output guards.
///
/// The whole batch is treated as one guarded unit: a panic anywhere, or a
/// classified output in any column, fails the batch (and, under
/// [`DegradationLadder`], degrades the tier for every column — consistent
/// with the single-vector semantics, where the faulty tier is abandoned for
/// all subsequent work).
fn run_guarded_batch(
    p: &dyn Preconditioner,
    rs: &[&[f64]],
    zs: &mut [&mut [f64]],
    policy: &ResiliencePolicy,
) -> Result<Duration, (FaultKind, String)> {
    let start = Instant::now();
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| p.apply_batch(rs, zs))) {
        return Err((FaultKind::Panic, panic_message(payload.as_ref())));
    }
    for (c, (r, z)) in rs.iter().zip(zs.iter()).enumerate() {
        if let Some((kind, detail)) = classify_output(r, z, policy) {
            return Err((kind, format!("column {c}: {detail}")));
        }
    }
    Ok(start.elapsed())
}

/// Root-sum-square of the per-column residual norms — the batch analogue of
/// the scalar residual norm fed to the stagnation tracker.
fn panel_norm(rs: &[&[f64]]) -> f64 {
    rs.iter()
        .map(|r| {
            let n = norm2(r);
            n * n
        })
        .sum::<f64>()
        .sqrt()
}

/// Detects "no residual reduction over a window of applies".
#[derive(Debug)]
struct StagnationTracker {
    best: f64,
    since_best: usize,
}

impl StagnationTracker {
    fn new() -> Self {
        StagnationTracker { best: f64::INFINITY, since_best: 0 }
    }

    /// Observe the residual norm of the incoming apply; `true` when the
    /// window elapsed without improvement (the counter then restarts so the
    /// check can fire again one window later).
    fn observe(&mut self, rnorm: f64, window: usize) -> bool {
        if rnorm < self.best {
            self.best = rnorm;
            self.since_best = 0;
            return false;
        }
        self.since_best += 1;
        if self.since_best >= window {
            self.since_best = 0;
            return true;
        }
        false
    }
}

/// A single-tier fault guard: contains panics, classifies bad outputs, and
/// falls back to the identity correction `z = r` so the outer (flexible)
/// Krylov iteration stays well-defined.
///
/// For a multi-tier fallback chain use [`DegradationLadder`] instead.
pub struct GuardedPreconditioner<P> {
    inner: P,
    policy: ResiliencePolicy,
    applies: AtomicU64,
    log: TrackedMutex<FaultLog>,
    stagnation: TrackedMutex<StagnationTracker>,
    name: String,
}

impl<P: Preconditioner> GuardedPreconditioner<P> {
    /// Wrap `inner` under the given policy.
    pub fn new(inner: P, policy: ResiliencePolicy) -> Self {
        let name = format!("guarded({})", inner.name());
        GuardedPreconditioner {
            inner,
            policy,
            applies: AtomicU64::new(0),
            log: TrackedMutex::new(
                FaultLog::new(),
                "krylov::resilience::GuardedPreconditioner::log",
            ),
            stagnation: TrackedMutex::new(
                StagnationTracker::new(),
                "krylov::resilience::GuardedPreconditioner::stagnation",
            ),
            name,
        }
    }

    /// Snapshot of the faults recorded so far.
    pub fn fault_log(&self) -> FaultLog {
        self.log.lock().clone()
    }

    /// The wrapped preconditioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Preconditioner> Preconditioner for GuardedPreconditioner<P> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        if self.policy.stagnation_window > 0 {
            let rnorm = norm2(r);
            let fired = self.stagnation.lock().observe(rnorm, self.policy.stagnation_window);
            if fired {
                self.log.lock().record(FaultEvent::new(
                    FaultKind::Stagnation,
                    idx,
                    self.inner.name(),
                    format!(
                        "no residual reduction over {} applies (‖r‖ = {rnorm:.3e})",
                        self.policy.stagnation_window
                    ),
                ));
            }
        }
        match run_guarded(&self.inner, r, z, &self.policy) {
            Ok(elapsed) => {
                if let Some(budget) = self.policy.apply_time_budget {
                    if elapsed > budget {
                        self.log.lock().record(FaultEvent::new(
                            FaultKind::TimeBudget,
                            idx,
                            self.inner.name(),
                            format!("apply took {elapsed:?} against a budget of {budget:?}"),
                        ));
                    }
                }
            }
            Err((kind, detail)) => {
                self.log.lock().record(FaultEvent::new(
                    kind,
                    idx,
                    self.inner.name(),
                    format!("{detail}; identity fallback engaged"),
                ));
                z.copy_from_slice(r);
            }
        }
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        if self.policy.stagnation_window > 0 {
            let rnorm = panel_norm(rs);
            let fired = self.stagnation.lock().observe(rnorm, self.policy.stagnation_window);
            if fired {
                self.log.lock().record(FaultEvent::new(
                    FaultKind::Stagnation,
                    idx,
                    self.inner.name(),
                    format!(
                        "no residual reduction over {} batched applies (‖R‖ = {rnorm:.3e})",
                        self.policy.stagnation_window
                    ),
                ));
            }
        }
        match run_guarded_batch(&self.inner, rs, zs, &self.policy) {
            Ok(elapsed) => {
                if let Some(budget) = self.policy.apply_time_budget {
                    if elapsed > budget {
                        self.log.lock().record(FaultEvent::new(
                            FaultKind::TimeBudget,
                            idx,
                            self.inner.name(),
                            format!(
                                "batched apply took {elapsed:?} against a budget of {budget:?}"
                            ),
                        ));
                    }
                }
            }
            Err((kind, detail)) => {
                self.log.lock().record(FaultEvent::new(
                    kind,
                    idx,
                    self.inner.name(),
                    format!("{detail}; identity fallback engaged for the whole batch"),
                ));
                // The faulty batch may be partially written: fall back to the
                // identity correction in every column.
                for (r, z) in rs.iter().zip(zs.iter_mut()) {
                    z.copy_from_slice(r);
                }
            }
        }
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        self.inner.collect_faults(into);
        into.merge(self.fault_log());
    }
}

/// A supervisor over a stack of preconditioner tiers that downgrades in
/// place on a classified fault, without restarting the outer solve.
///
/// Tier 0 is the preferred (fastest / most aggressive) operator; the last
/// tier is the most conservative (typically diagonal Jacobi).  A fault in
/// the active tier advances to the next one *within the same apply* — the
/// output always comes from a healthy tier, or from the identity fallback
/// `z = r` when even the last tier faults.  Downgrades are monotone and
/// permanent for the lifetime of the ladder.
pub struct DegradationLadder {
    tiers: Vec<Box<dyn Preconditioner>>,
    policy: ResiliencePolicy,
    active: AtomicUsize,
    applies: AtomicU64,
    log: TrackedMutex<FaultLog>,
    stagnation: TrackedMutex<StagnationTracker>,
    name: String,
    dim: usize,
}

impl DegradationLadder {
    /// Build a ladder from an ordered, non-empty stack of tiers sharing one
    /// dimension.
    pub fn new(tiers: Vec<Box<dyn Preconditioner>>, policy: ResiliencePolicy) -> Self {
        assert!(!tiers.is_empty(), "degradation ladder needs at least one tier");
        let dim = tiers[0].dim();
        for t in &tiers {
            assert_eq!(t.dim(), dim, "every ladder tier must share the system dimension");
        }
        let name = format!(
            "resilient[{}]",
            tiers.iter().map(|t| t.name()).collect::<Vec<_>>().join(" -> ")
        );
        DegradationLadder {
            tiers,
            policy,
            active: AtomicUsize::new(0),
            applies: AtomicU64::new(0),
            log: TrackedMutex::new(FaultLog::new(), "krylov::resilience::DegradationLadder::log"),
            stagnation: TrackedMutex::new(
                StagnationTracker::new(),
                "krylov::resilience::DegradationLadder::stagnation",
            ),
            name,
            dim,
        }
    }

    /// Index of the currently active tier.
    pub fn active_tier(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Name of the currently active tier.
    pub fn active_tier_name(&self) -> &str {
        self.tiers[self.active_tier()].name()
    }

    /// Snapshot of the faults and downgrades recorded so far (with the
    /// current tier as the final tier).
    pub fn fault_log(&self) -> FaultLog {
        let mut log = self.log.lock().clone();
        log.set_final_tier(self.active_tier_name());
        log
    }

    /// Record a fault in `tier` and advance the active tier past it.
    /// Returns the tier to retry with, or `None` when `tier` was the last.
    fn downgrade(
        &self,
        tier: usize,
        kind: FaultKind,
        apply_index: u64,
        detail: String,
    ) -> Option<usize> {
        let mut log = self.log.lock();
        log.record(FaultEvent::new(kind, apply_index, self.tiers[tier].name(), detail));
        if tier + 1 >= self.tiers.len() {
            return None;
        }
        log.record_degradation(Degradation {
            from: self.tiers[tier].name().to_string(),
            to: self.tiers[tier + 1].name().to_string(),
            apply_index,
        });
        // Monotone: a concurrent apply may already have downgraded further.
        self.active.fetch_max(tier + 1, Ordering::SeqCst);
        Some(tier + 1)
    }
}

impl Preconditioner for DegradationLadder {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        let mut tier = self.active_tier();
        if self.policy.stagnation_window > 0 && tier + 1 < self.tiers.len() {
            let rnorm = norm2(r);
            let fired = self.stagnation.lock().observe(rnorm, self.policy.stagnation_window);
            if fired {
                if let Some(next) = self.downgrade(
                    tier,
                    FaultKind::Stagnation,
                    idx,
                    format!(
                        "no residual reduction over {} applies (‖r‖ = {rnorm:.3e})",
                        self.policy.stagnation_window
                    ),
                ) {
                    tier = next;
                }
            }
        }
        loop {
            match run_guarded(self.tiers[tier].as_ref(), r, z, &self.policy) {
                Ok(elapsed) => {
                    if let Some(budget) = self.policy.apply_time_budget {
                        if elapsed > budget && tier + 1 < self.tiers.len() {
                            // The output is numerically valid — keep it, and
                            // downgrade only the *subsequent* applies.
                            self.downgrade(
                                tier,
                                FaultKind::TimeBudget,
                                idx,
                                format!("apply took {elapsed:?} against a budget of {budget:?}"),
                            );
                        }
                    }
                    return;
                }
                Err((kind, detail)) => match self.downgrade(tier, kind, idx, detail) {
                    Some(next) => tier = next,
                    None => {
                        // Even the most conservative tier faulted: identity
                        // fallback keeps the flexible outer iteration alive.
                        z.copy_from_slice(r);
                        return;
                    }
                },
            }
        }
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        let mut tier = self.active_tier();
        if self.policy.stagnation_window > 0 && tier + 1 < self.tiers.len() {
            let rnorm = panel_norm(rs);
            let fired = self.stagnation.lock().observe(rnorm, self.policy.stagnation_window);
            if fired {
                if let Some(next) = self.downgrade(
                    tier,
                    FaultKind::Stagnation,
                    idx,
                    format!(
                        "no residual reduction over {} batched applies (‖R‖ = {rnorm:.3e})",
                        self.policy.stagnation_window
                    ),
                ) {
                    tier = next;
                }
            }
        }
        loop {
            match run_guarded_batch(self.tiers[tier].as_ref(), rs, zs, &self.policy) {
                Ok(elapsed) => {
                    if let Some(budget) = self.policy.apply_time_budget {
                        if elapsed > budget && tier + 1 < self.tiers.len() {
                            self.downgrade(
                                tier,
                                FaultKind::TimeBudget,
                                idx,
                                format!(
                                    "batched apply took {elapsed:?} against a budget of {budget:?}"
                                ),
                            );
                        }
                    }
                    return;
                }
                // A fault in any column degrades the tier for the whole
                // batch: the faulty tier retries the *entire* batch one rung
                // down, exactly as the single-vector path abandons it for all
                // subsequent applies.
                Err((kind, detail)) => match self.downgrade(tier, kind, idx, detail) {
                    Some(next) => tier = next,
                    None => {
                        for (r, z) in rs.iter().zip(zs.iter_mut()) {
                            z.copy_from_slice(r);
                        }
                        return;
                    }
                },
            }
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        for t in &self.tiers {
            t.collect_faults(into);
        }
        into.merge(self.fault_log());
    }
}

/// A fault the test double can inject at a scheduled apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic before touching the output.
    Panic,
    /// Run the inner apply, then corrupt one component to NaN.
    NanOutput,
    /// Run the inner apply, then corrupt one component to +inf.
    InfOutput,
    /// Overwrite the output with zeros.
    ZeroOutput,
    /// Run the inner apply, then sleep for the given duration.
    Stall(Duration),
}

/// Deterministic fault-injection wrapper for resilience tests.
///
/// Faults are keyed by the apply count, which the outer Krylov drivers
/// advance sequentially — so a given schedule reproduces bit-identically at
/// every thread count.  The random constructor draws the schedule from a
/// seeded ChaCha8 stream *at construction time*; the apply path itself is
/// deterministic.
pub struct FaultInjectingPreconditioner<P> {
    inner: P,
    schedule: BTreeMap<u64, InjectedFault>,
    applies: AtomicU64,
    name: String,
}

impl<P: Preconditioner> FaultInjectingPreconditioner<P> {
    /// Inject the given faults at the given apply counts.
    pub fn scheduled(inner: P, schedule: impl IntoIterator<Item = (u64, InjectedFault)>) -> Self {
        let name = format!("inject({})", inner.name());
        FaultInjectingPreconditioner {
            inner,
            schedule: schedule.into_iter().collect(),
            applies: AtomicU64::new(0),
            name,
        }
    }

    /// Draw `num_faults` distinct apply counts in `0..within_applies` and a
    /// fault from `menu` for each, from a ChaCha8 stream seeded with `seed`.
    pub fn random(
        inner: P,
        seed: u64,
        num_faults: usize,
        within_applies: u64,
        menu: &[InjectedFault],
    ) -> Self {
        assert!(!menu.is_empty(), "fault menu must not be empty");
        let span = within_applies.max(1);
        let wanted = num_faults.min(span as usize);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut schedule = BTreeMap::new();
        while schedule.len() < wanted {
            let at = rng.next_u64() % span;
            let what = menu[(rng.next_u64() % menu.len() as u64) as usize];
            schedule.entry(at).or_insert(what);
        }
        Self::scheduled(inner, schedule)
    }

    /// The injection schedule, apply-count → fault.
    pub fn schedule(&self) -> &BTreeMap<u64, InjectedFault> {
        &self.schedule
    }
}

impl<P: Preconditioner> Preconditioner for FaultInjectingPreconditioner<P> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let idx = self.applies.fetch_add(1, Ordering::SeqCst);
        match self.schedule.get(&idx) {
            // detlint::allow(panic-in-guarded): deliberate fault injection — this panic IS the feature under test
            Some(InjectedFault::Panic) => panic!("injected panic at apply {idx}"),
            Some(InjectedFault::NanOutput) => {
                self.inner.apply(r, z);
                if let Some(v) = z.first_mut() {
                    *v = f64::NAN;
                }
            }
            Some(InjectedFault::InfOutput) => {
                self.inner.apply(r, z);
                if let Some(v) = z.first_mut() {
                    *v = f64::INFINITY;
                }
            }
            Some(InjectedFault::ZeroOutput) => {
                for v in z.iter_mut() {
                    *v = 0.0;
                }
            }
            Some(InjectedFault::Stall(d)) => {
                self.inner.apply(r, z);
                std::thread::sleep(*d);
            }
            None => self.inner.apply(r, z),
        }
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        self.inner.collect_faults(into);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::{IdentityPreconditioner, JacobiPreconditioner};
    use crate::test_matrices::laplacian_2d;
    use crate::{preconditioned_conjugate_gradient, SolverOptions};

    /// A preconditioner that always panics.
    struct AlwaysPanics(usize);
    impl Preconditioner for AlwaysPanics {
        fn apply(&self, _r: &[f64], _z: &mut [f64]) {
            panic!("intentional test panic");
        }
        fn dim(&self) -> usize {
            self.0
        }
        fn name(&self) -> &str {
            "always-panics"
        }
    }

    /// A preconditioner that always writes NaN.
    struct AlwaysNan(usize);
    impl Preconditioner for AlwaysNan {
        fn apply(&self, _r: &[f64], z: &mut [f64]) {
            for v in z.iter_mut() {
                *v = f64::NAN;
            }
        }
        fn dim(&self) -> usize {
            self.0
        }
        fn name(&self) -> &str {
            "always-nan"
        }
    }

    #[test]
    fn guard_is_bit_transparent_when_healthy() {
        let a = laplacian_2d(8, 8);
        let jacobi = JacobiPreconditioner::new(&a);
        let guarded =
            GuardedPreconditioner::new(JacobiPreconditioner::new(&a), ResiliencePolicy::default());
        let r: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut z_plain = vec![0.0; 64];
        let mut z_guarded = vec![0.0; 64];
        jacobi.apply(&r, &mut z_plain);
        guarded.apply(&r, &mut z_guarded);
        assert_eq!(z_plain, z_guarded, "guard must not perturb a healthy apply");
        assert!(guarded.fault_log().is_empty());
    }

    #[test]
    fn guard_contains_panics_with_identity_fallback() {
        let guarded = GuardedPreconditioner::new(AlwaysPanics(4), ResiliencePolicy::default());
        let r = [1.0, -2.0, 3.0, -4.0];
        let mut z = [9.0; 4];
        guarded.apply(&r, &mut z);
        assert_eq!(z, r, "fallback must be the identity correction");
        let log = guarded.fault_log();
        assert!(log.has_kind(FaultKind::Panic));
        assert_eq!(log.events()[0].tier, "always-panics");
        assert_eq!(log.events()[0].apply_index, 0);
    }

    #[test]
    fn guard_classifies_nonfinite_output() {
        let guarded = GuardedPreconditioner::new(AlwaysNan(3), ResiliencePolicy::default());
        let r = [1.0, 2.0, 3.0];
        let mut z = [0.0; 3];
        guarded.apply(&r, &mut z);
        assert_eq!(z, r);
        assert!(guarded.fault_log().has_kind(FaultKind::NonFinite));
    }

    #[test]
    fn guard_reports_time_budget_overruns_without_discarding_output() {
        struct Slow(usize);
        impl Preconditioner for Slow {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                std::thread::sleep(Duration::from_millis(20));
                z.copy_from_slice(r);
            }
            fn dim(&self) -> usize {
                self.0
            }
            fn name(&self) -> &str {
                "slow"
            }
        }
        let policy = ResiliencePolicy {
            apply_time_budget: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        let guarded = GuardedPreconditioner::new(Slow(2), policy);
        let r = [1.0, 2.0];
        let mut z = [0.0; 2];
        guarded.apply(&r, &mut z);
        assert_eq!(z, r, "a slow but valid output must be kept");
        assert!(guarded.fault_log().has_kind(FaultKind::TimeBudget));
    }

    #[test]
    fn ladder_downgrades_in_order_and_reports_final_tier() {
        let tiers: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(AlwaysPanics(4)),
            Box::new(AlwaysNan(4)),
            Box::new(IdentityPreconditioner::new(4)),
        ];
        let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
        let r = [1.0, 2.0, 3.0, 4.0];
        let mut z = [0.0; 4];
        ladder.apply(&r, &mut z);
        // Both broken tiers fault within the same apply; the identity tier
        // produces the output.
        assert_eq!(z, r);
        assert_eq!(ladder.active_tier(), 2);
        let log = ladder.fault_log();
        assert!(log.has_kind(FaultKind::Panic));
        assert!(log.has_kind(FaultKind::NonFinite));
        assert_eq!(log.degradations().len(), 2);
        assert_eq!(log.degradations()[0].from, "always-panics");
        assert_eq!(log.degradations()[0].to, "always-nan");
        assert_eq!(log.final_tier(), Some("identity"));
        // Subsequent applies start directly at the healthy tier.
        let mut z2 = [0.0; 4];
        ladder.apply(&r, &mut z2);
        assert_eq!(z2, r);
        assert_eq!(ladder.fault_log().events().len(), 2);
    }

    #[test]
    fn ladder_identity_fallback_when_every_tier_faults() {
        let tiers: Vec<Box<dyn Preconditioner>> =
            vec![Box::new(AlwaysPanics(3)), Box::new(AlwaysNan(3))];
        let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
        let r = [1.0, -1.0, 2.0];
        let mut z = [0.0; 3];
        ladder.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(ladder.active_tier(), 1, "downgrades stop at the last tier");
    }

    #[test]
    fn ladder_stagnation_fires_after_window() {
        let tiers: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(IdentityPreconditioner::new(2)),
            Box::new(IdentityPreconditioner::new(2)),
        ];
        let policy = ResiliencePolicy { stagnation_window: 5, ..Default::default() };
        let ladder = DegradationLadder::new(tiers, policy);
        let r = [1.0, 1.0]; // constant residual: no improvement after the first
        let mut z = [0.0; 2];
        for _ in 0..6 {
            ladder.apply(&r, &mut z);
        }
        let log = ladder.fault_log();
        assert!(log.has_kind(FaultKind::Stagnation));
        assert_eq!(ladder.active_tier(), 1);
    }

    #[test]
    fn injector_is_deterministic_for_a_seed() {
        let a = FaultInjectingPreconditioner::random(
            IdentityPreconditioner::new(4),
            42,
            3,
            50,
            &[InjectedFault::Panic, InjectedFault::NanOutput, InjectedFault::ZeroOutput],
        );
        let b = FaultInjectingPreconditioner::random(
            IdentityPreconditioner::new(4),
            42,
            3,
            50,
            &[InjectedFault::Panic, InjectedFault::NanOutput, InjectedFault::ZeroOutput],
        );
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.schedule().len(), 3);
        let c = FaultInjectingPreconditioner::random(
            IdentityPreconditioner::new(4),
            43,
            3,
            50,
            &[InjectedFault::Panic],
        );
        assert_ne!(a.schedule(), c.schedule());
    }

    #[test]
    fn injector_fires_by_apply_count() {
        let inj = FaultInjectingPreconditioner::scheduled(
            IdentityPreconditioner::new(2),
            [(1, InjectedFault::ZeroOutput)],
        );
        let r = [3.0, 4.0];
        let mut z = [0.0; 2];
        inj.apply(&r, &mut z);
        assert_eq!(z, r, "apply 0 is healthy");
        inj.apply(&r, &mut z);
        assert_eq!(z, [0.0, 0.0], "apply 1 injects the zero output");
        inj.apply(&r, &mut z);
        assert_eq!(z, r, "apply 2 is healthy again");
    }

    #[test]
    fn pcg_converges_through_an_injected_panic() {
        let a = laplacian_2d(12, 12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = SolverOptions::with_tolerance(1e-8);
        let clean =
            preconditioned_conjugate_gradient(&a, &b, None, &JacobiPreconditioner::new(&a), &opts);
        let tiers: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(FaultInjectingPreconditioner::scheduled(
                JacobiPreconditioner::new(&a),
                [(3, InjectedFault::Panic)],
            )),
            Box::new(JacobiPreconditioner::new(&a)),
        ];
        let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
        let faulted = preconditioned_conjugate_gradient(&a, &b, None, &ladder, &opts);
        assert!(faulted.stats.converged());
        assert!(
            faulted.stats.iterations <= 2 * clean.stats.iterations.max(1),
            "fault recovery overhead too large: {} vs {}",
            faulted.stats.iterations,
            clean.stats.iterations
        );
        assert!(faulted.stats.faults.has_kind(FaultKind::Panic));
        assert_eq!(faulted.stats.faults.final_tier(), Some("jacobi"));
        assert_eq!(faulted.stats.faults.degradations().len(), 1);
    }

    #[test]
    fn fault_log_merge_keeps_order_and_final_tier() {
        let mut a = FaultLog::new();
        a.record(FaultEvent::new(FaultKind::Panic, 0, "t0", "first"));
        let mut b = FaultLog::new();
        b.record(FaultEvent::new(FaultKind::Breakdown, 5, "t1", "second"));
        b.set_final_tier("t1");
        a.merge(b);
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.events()[1].kind, FaultKind::Breakdown);
        assert_eq!(a.final_tier(), Some("t1"));
        assert_eq!(a.count(FaultKind::Panic), 1);
        assert!(!a.is_empty());
    }
}
