//! Preconditioned Conjugate Gradient — Algorithm 1 of the paper.
//!
//! The driver is written exactly as the paper states it: the preconditioner is
//! applied to the residual at every iteration (the step highlighted in red in
//! Algorithm 1), and convergence is declared on the recurrence residual norm
//! `‖rᵢ₊₁‖ < tol`.
//!
//! The update for the search direction uses the *flexible* (Polak–Ribière)
//! form `β = zᵢ₊₁·(rᵢ₊₁ - rᵢ) / zᵢ·rᵢ` instead of the classical
//! Fletcher–Reeves `β = zᵢ₊₁·rᵢ₊₁ / zᵢ·rᵢ`.  For a fixed SPD preconditioner
//! the two are identical in exact arithmetic, but the flexible form stays
//! convergent when the preconditioner varies between iterations — which the
//! DDM-GNN operator does, since DSS inference is a nonlinear map of the
//! residual (Notay, *Flexible Conjugate Gradients*, SIAM J. Sci. Comput.
//! 2000).  Two safeguards keep the iteration well-defined for arbitrary
//! learned preconditioners: a non-positive curvature `z·r ≤ 0` falls back to
//! the unpreconditioned residual direction for that step, and a negative `β`
//! is clamped to zero (a steepest-descent restart).  With these, the outer
//! Krylov method retains its convergence guarantee no matter how badly the
//! GNN is trained — the central robustness claim of the hybrid solver.

use sparse::vector::{axpby, axpy, dot, norm2};
use sparse::CsrMatrix;

use crate::history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
use crate::preconditioner::Preconditioner;
use crate::resilience::{FaultEvent, FaultKind, FaultLog};
use crate::{SolveResult, SolverOptions};

/// Solve `A x = b` with PCG using the supplied preconditioner.
///
/// `A` must be symmetric positive definite and the preconditioner symmetric
/// positive definite as an operator for the classical convergence theory to
/// hold; in practice the DDM-GNN preconditioner is only approximately
/// symmetric, which — as the paper observes — still converges reliably.
pub fn preconditioned_conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    opts: &SolverOptions,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "PCG requires a square matrix");
    assert_eq!(a.nrows(), b.len(), "PCG rhs length mismatch");
    assert_eq!(preconditioner.dim(), b.len(), "preconditioner dimension mismatch");
    let n = b.len();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "PCG initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let bnorm = norm2(b);
    let threshold = opts.threshold(bnorm);
    let mut history = ConvergenceHistory::new();
    let mut faults = FaultLog::new();

    // r0 = b - A x0, z0 = M⁻¹ r0, p0 = z0
    let mut r = vec![0.0; n];
    a.residual_into(b, &x, &mut r);
    let mut rnorm = norm2(&r);
    if opts.record_history {
        history.push(rnorm);
    }
    if rnorm <= threshold {
        return SolveResult {
            x,
            stats: SolveStats {
                iterations: 0,
                final_residual: rnorm,
                final_relative_residual: relative_residual_norm(rnorm, bnorm),
                stop_reason: StopReason::Converged,
                history,
                faults,
            },
        };
    }

    let mut z = vec![0.0; n];
    preconditioner.apply(&r, &mut z);
    // Safeguard: a learned preconditioner may return a direction with
    // non-positive alignment z·r; fall back to the residual itself so the
    // step is still a descent direction for the SPD system.
    let mut rho = dot(&r, &z);
    if rho <= 0.0 || !rho.is_finite() {
        z.copy_from_slice(&r);
        rho = rnorm * rnorm;
    }
    let mut p = z.clone();
    let mut q = vec![0.0; n];
    let mut r_prev = r.clone();

    let mut stop = StopReason::MaxIterations;
    let mut iterations = opts.max_iterations;

    for iter in 0..opts.max_iterations {
        a.spmv_into(&p, &mut q);
        let pq = dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "pcg",
                format!("non-positive or non-finite curvature p·Ap = {pq}"),
            ));
            iterations = iter;
            break;
        }
        let alpha = rho / pq;
        r_prev.copy_from_slice(&r);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &q, &mut r);
        rnorm = norm2(&r);
        if opts.record_history {
            history.push(rnorm);
        }
        if !rnorm.is_finite() {
            stop = StopReason::Diverged;
            faults.record(FaultEvent::new(
                FaultKind::NonFinite,
                iter as u64,
                "pcg",
                "residual norm became non-finite",
            ));
            iterations = iter + 1;
            break;
        }
        if rnorm <= threshold {
            stop = StopReason::Converged;
            iterations = iter + 1;
            break;
        }
        preconditioner.apply(&r, &mut z);
        let mut rho_new = dot(&r, &z);
        if rho_new <= 0.0 || !rho_new.is_finite() {
            // Safeguarded fallback: unpreconditioned residual direction.
            z.copy_from_slice(&r);
            rho_new = rnorm * rnorm;
        }
        // Flexible (Polak–Ribière) β; for a constant SPD preconditioner
        // z·r_prev vanishes and this equals the classical update.
        let beta = ((rho_new - dot(&z, &r_prev)) / rho).max(0.0);
        rho = rho_new;
        if rho == 0.0 {
            stop = StopReason::Breakdown;
            faults.record(FaultEvent::new(
                FaultKind::Breakdown,
                iter as u64,
                "pcg",
                "z·r vanished while the residual is above the threshold",
            ));
            iterations = iter + 1;
            break;
        }
        // p = z + beta p
        axpby(1.0, &z, beta, &mut p);
    }

    preconditioner.collect_faults(&mut faults);
    SolveResult {
        x,
        stats: SolveStats {
            iterations,
            final_residual: rnorm,
            final_relative_residual: relative_residual_norm(rnorm, bnorm),
            stop_reason: stop,
            history,
            faults,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::{Ic0Preconditioner, IdentityPreconditioner, JacobiPreconditioner};
    use crate::test_matrices::laplacian_2d;
    use crate::true_relative_residual;

    #[test]
    fn identity_preconditioner_matches_plain_cg() {
        let a = laplacian_2d(10, 10);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let opts = SolverOptions::with_tolerance(1e-8);
        let plain = crate::conjugate_gradient(&a, &b, None, &opts);
        let id = IdentityPreconditioner::new(n);
        let pcg = preconditioned_conjugate_gradient(&a, &b, None, &id, &opts);
        assert_eq!(plain.stats.iterations, pcg.stats.iterations);
        assert!(sparse::vector::relative_error(&plain.x, &pcg.x) < 1e-12);
    }

    #[test]
    fn ic0_reduces_iterations_vs_plain_cg() {
        let a = laplacian_2d(25, 25);
        let b = vec![1.0; a.nrows()];
        let opts = SolverOptions::with_tolerance(1e-8);
        let plain = crate::conjugate_gradient(&a, &b, None, &opts);
        let ic0 = Ic0Preconditioner::new(&a).unwrap();
        let pcg = preconditioned_conjugate_gradient(&a, &b, None, &ic0, &opts);
        assert!(pcg.stats.converged());
        assert!(
            pcg.stats.iterations < plain.stats.iterations,
            "IC(0) {} vs CG {}",
            pcg.stats.iterations,
            plain.stats.iterations
        );
        assert!(true_relative_residual(&a, &pcg.x, &b) < 1e-7);
    }

    #[test]
    fn jacobi_preconditioner_converges() {
        let a = laplacian_2d(12, 12);
        let b = vec![1.0; a.nrows()];
        let opts = SolverOptions::with_tolerance(1e-8);
        let jacobi = JacobiPreconditioner::new(&a);
        let result = preconditioned_conjugate_gradient(&a, &b, None, &jacobi, &opts);
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-7);
    }

    #[test]
    fn converged_initial_guess_returns_immediately() {
        let a = laplacian_2d(6, 6);
        let x_true: Vec<f64> = (0..36).map(|i| i as f64 * 0.1).collect();
        let b = a.spmv(&x_true);
        let id = IdentityPreconditioner::new(36);
        let result = preconditioned_conjugate_gradient(
            &a,
            &b,
            Some(&x_true),
            &id,
            &SolverOptions::default(),
        );
        assert_eq!(result.stats.iterations, 0);
        assert!(result.stats.converged());
    }

    #[test]
    fn respects_iteration_cap() {
        let a = laplacian_2d(30, 30);
        let b = vec![1.0; a.nrows()];
        let id = IdentityPreconditioner::new(a.nrows());
        let opts = SolverOptions { max_iterations: 2, ..SolverOptions::with_tolerance(1e-14) };
        let result = preconditioned_conjugate_gradient(&a, &b, None, &id, &opts);
        assert_eq!(result.stats.iterations, 2);
        assert!(!result.stats.converged());
    }
}
