//! Multi-RHS lockstep PCG: `b` independent solves sharing one batched
//! preconditioner apply per outer iteration.
//!
//! [`solve_batch`] runs one PCG instance per right-hand side, advancing them
//! in lockstep so the preconditioner sees all still-active residuals at once
//! through [`Preconditioner::apply_batch`].  For the bandwidth-bound GNN
//! preconditioner this amortises the weight/plan panel traffic across the
//! batch; for every other preconditioner the default column-loop makes the
//! driver behave exactly like `b` sequential solves.
//!
//! Column `c`'s recurrence is *bit-identical* to an independent
//! [`crate::preconditioned_conjugate_gradient`] call on `(A, bs[c])`: every
//! per-column scalar (`α`, `β`, `ρ`, residual norms) is computed from that
//! column's vectors alone in the same operation order, and converged /
//! broken-down columns retire from the batch without perturbing the others.
//! The only shared state is the preconditioner itself, whose batched apply
//! contract (see [`Preconditioner::apply_batch`]) requires per-column
//! bit-identity with the unbatched apply.

use sparse::vector::{axpby, axpy, dot, norm2};
use sparse::CsrMatrix;

use crate::history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
use crate::preconditioner::Preconditioner;
use crate::resilience::{FaultEvent, FaultKind, FaultLog};
use crate::{SolveResult, SolverOptions};

/// Per-column mutable state of one lockstep PCG instance.
struct Column {
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    r_prev: Vec<f64>,
    rho: f64,
    rnorm: f64,
    bnorm: f64,
    threshold: f64,
    history: ConvergenceHistory,
    faults: FaultLog,
    stop: StopReason,
    iterations: usize,
    /// Still iterating (not converged / broken down / diverged).
    active: bool,
    /// Converged before the first preconditioner apply — the single-solve
    /// driver returns early in that case without collecting preconditioner
    /// faults, and the batched driver mirrors that.
    init_converged: bool,
}

/// One batched preconditioner apply over the still-active columns.
fn apply_batch_active(preconditioner: &dyn Preconditioner, cols: &mut [Column]) {
    // Split borrows: the residuals are read-only, the corrections mutable,
    // and they live in different fields of the same `Column`s — destructure
    // so the borrow checker sees the disjointness.
    let mut r_refs: Vec<&[f64]> = Vec::new();
    let mut z_refs: Vec<&mut [f64]> = Vec::new();
    for col in cols.iter_mut() {
        if col.active {
            r_refs.push(col.r.as_slice());
            z_refs.push(col.z.as_mut_slice());
        }
    }
    if !r_refs.is_empty() {
        preconditioner.apply_batch(&r_refs, &mut z_refs);
    }
}

/// Solve `A x_c = bs[c]` for every column with lockstep flexible PCG, sharing
/// one [`Preconditioner::apply_batch`] across the active columns per outer
/// iteration.
///
/// `x0s`, when given, supplies one initial guess per column.  The returned
/// results are in column order; each column's `SolveStats` (iterations,
/// residual history, stop reason) matches an independent
/// [`crate::preconditioned_conjugate_gradient`] run of that column
/// bit-for-bit whenever the preconditioner honours the batched-apply
/// bit-identity contract.
pub fn solve_batch(
    a: &CsrMatrix,
    bs: &[&[f64]],
    x0s: Option<&[&[f64]]>,
    preconditioner: &dyn Preconditioner,
    opts: &SolverOptions,
) -> Vec<SolveResult> {
    assert_eq!(a.nrows(), a.ncols(), "batched PCG requires a square matrix");
    let n = a.nrows();
    if let Some(x0s) = x0s {
        assert_eq!(x0s.len(), bs.len(), "batched PCG: one initial guess per right-hand side");
    }

    let mut cols: Vec<Column> = bs
        .iter()
        .enumerate()
        .map(|(c, b)| {
            assert_eq!(b.len(), n, "batched PCG rhs length mismatch in column {c}");
            assert_eq!(preconditioner.dim(), n, "preconditioner dimension mismatch");
            let x = match x0s {
                Some(x0s) => {
                    assert_eq!(
                        x0s[c].len(),
                        n,
                        "batched PCG initial guess length mismatch in column {c}"
                    );
                    x0s[c].to_vec()
                }
                None => vec![0.0; n],
            };
            let bnorm = norm2(b);
            let threshold = opts.threshold(bnorm);
            let mut r = vec![0.0; n];
            a.residual_into(b, &x, &mut r);
            let rnorm = norm2(&r);
            let mut history = ConvergenceHistory::new();
            if opts.record_history {
                history.push(rnorm);
            }
            let converged = rnorm <= threshold;
            Column {
                x,
                r,
                z: vec![0.0; n],
                p: Vec::new(),
                q: vec![0.0; n],
                r_prev: Vec::new(),
                rho: 0.0,
                rnorm,
                bnorm,
                threshold,
                history,
                faults: FaultLog::new(),
                stop: if converged { StopReason::Converged } else { StopReason::MaxIterations },
                iterations: if converged { 0 } else { opts.max_iterations },
                active: !converged,
                init_converged: converged,
            }
        })
        .collect();

    // z0 = M⁻¹ r0 for every not-yet-converged column, in one batched apply.
    apply_batch_active(preconditioner, &mut cols);
    for col in cols.iter_mut().filter(|c| c.active) {
        col.rho = dot(&col.r, &col.z);
        if col.rho <= 0.0 || !col.rho.is_finite() {
            col.z.copy_from_slice(&col.r);
            col.rho = col.rnorm * col.rnorm;
        }
        col.p = col.z.clone();
        col.r_prev = col.r.clone();
    }

    for iter in 0..opts.max_iterations {
        if cols.iter().all(|c| !c.active) {
            break;
        }
        // Per-column spmv + updates, retiring columns exactly where the
        // single-solve driver would stop them.
        for col in cols.iter_mut().filter(|c| c.active) {
            a.spmv_into(&col.p, &mut col.q);
            let pq = dot(&col.p, &col.q);
            if pq <= 0.0 || !pq.is_finite() {
                col.stop = StopReason::Breakdown;
                col.faults.record(FaultEvent::new(
                    FaultKind::Breakdown,
                    iter as u64,
                    "pcg",
                    format!("non-positive or non-finite curvature p·Ap = {pq}"),
                ));
                col.iterations = iter;
                col.active = false;
                continue;
            }
            let alpha = col.rho / pq;
            col.r_prev.copy_from_slice(&col.r);
            axpy(alpha, &col.p, &mut col.x);
            axpy(-alpha, &col.q, &mut col.r);
            col.rnorm = norm2(&col.r);
            if opts.record_history {
                col.history.push(col.rnorm);
            }
            if !col.rnorm.is_finite() {
                col.stop = StopReason::Diverged;
                col.faults.record(FaultEvent::new(
                    FaultKind::NonFinite,
                    iter as u64,
                    "pcg",
                    "residual norm became non-finite",
                ));
                col.iterations = iter + 1;
                col.active = false;
                continue;
            }
            if col.rnorm <= col.threshold {
                col.stop = StopReason::Converged;
                col.iterations = iter + 1;
                col.active = false;
            }
        }
        // One shared batched apply for everything still running.
        apply_batch_active(preconditioner, &mut cols);
        for col in cols.iter_mut().filter(|c| c.active) {
            let mut rho_new = dot(&col.r, &col.z);
            if rho_new <= 0.0 || !rho_new.is_finite() {
                col.z.copy_from_slice(&col.r);
                rho_new = col.rnorm * col.rnorm;
            }
            let beta = ((rho_new - dot(&col.z, &col.r_prev)) / col.rho).max(0.0);
            col.rho = rho_new;
            if col.rho == 0.0 {
                col.stop = StopReason::Breakdown;
                col.faults.record(FaultEvent::new(
                    FaultKind::Breakdown,
                    iter as u64,
                    "pcg",
                    "z·r vanished while the residual is above the threshold",
                ));
                col.iterations = iter + 1;
                col.active = false;
                continue;
            }
            axpby(1.0, &col.z, beta, &mut col.p);
        }
    }

    // The single-solve driver collects preconditioner faults once per solve,
    // except on the converged-initial-guess early return.
    let mut shared = FaultLog::new();
    preconditioner.collect_faults(&mut shared);
    cols.into_iter()
        .map(|mut col| {
            if !col.init_converged {
                col.faults.merge(shared.clone());
            }
            SolveResult {
                x: col.x,
                stats: SolveStats {
                    iterations: col.iterations,
                    final_residual: col.rnorm,
                    final_relative_residual: relative_residual_norm(col.rnorm, col.bnorm),
                    stop_reason: col.stop,
                    history: col.history,
                    faults: col.faults,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::{Ic0Preconditioner, IdentityPreconditioner, JacobiPreconditioner};
    use crate::test_matrices::laplacian_2d;
    use crate::{preconditioned_conjugate_gradient, SolverOptions};

    fn batch_rhs(n: usize, b: usize) -> Vec<Vec<f64>> {
        (0..b)
            .map(|c| (0..n).map(|i| ((i * (c + 3)) % 7) as f64 - 2.5 + 0.1 * c as f64).collect())
            .collect()
    }

    /// The batched driver must match b independent single solves bit-for-bit
    /// for a preconditioner with the default column-loop `apply_batch`.
    #[test]
    fn solve_batch_matches_sequential_solves_bitwise() {
        let a = laplacian_2d(14, 14);
        let n = a.nrows();
        let opts = SolverOptions::with_tolerance(1e-9);
        for nrhs in [1usize, 2, 4] {
            let rhs = batch_rhs(n, nrhs);
            let refs: Vec<&[f64]> = rhs.iter().map(|b| b.as_slice()).collect();
            let jacobi = JacobiPreconditioner::new(&a);
            let batched = solve_batch(&a, &refs, None, &jacobi, &opts);
            assert_eq!(batched.len(), nrhs);
            for (c, b) in rhs.iter().enumerate() {
                let single = preconditioned_conjugate_gradient(&a, b, None, &jacobi, &opts);
                assert_eq!(batched[c].x, single.x, "column {c}: solution diverged");
                assert_eq!(
                    batched[c].stats.iterations, single.stats.iterations,
                    "column {c}: iteration count diverged"
                );
                assert_eq!(
                    batched[c].stats.history.norms(),
                    single.stats.history.norms(),
                    "column {c}: residual history diverged"
                );
                assert_eq!(batched[c].stats.stop_reason, single.stats.stop_reason);
            }
        }
    }

    /// Converged columns retire from the batch: mixing an already-solved
    /// column with hard columns must not change anyone's stats.
    #[test]
    fn solve_batch_retires_converged_columns_independently() {
        let a = laplacian_2d(10, 10);
        let n = a.nrows();
        let opts = SolverOptions::with_tolerance(1e-8);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let solved_rhs = a.spmv(&x_true);
        let hard_rhs: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let refs: Vec<&[f64]> = vec![&solved_rhs, &hard_rhs];
        let guesses: Vec<&[f64]> = vec![&x_true, &x_true];
        let ic0 = Ic0Preconditioner::new(&a).unwrap();
        let batched = solve_batch(&a, &refs, Some(&guesses), &ic0, &opts);
        assert_eq!(batched[0].stats.iterations, 0, "pre-solved column must retire at init");
        assert!(batched[0].stats.converged());
        assert!(batched[0].stats.faults.is_empty());
        let single = preconditioned_conjugate_gradient(&a, &hard_rhs, Some(&x_true), &ic0, &opts);
        assert_eq!(batched[1].stats.iterations, single.stats.iterations);
        assert_eq!(batched[1].x, single.x);
        assert!(batched[1].stats.converged());
    }

    /// With the identity preconditioner the batch behaves like plain CG per
    /// column, and respects the iteration cap per column.
    #[test]
    fn solve_batch_respects_iteration_cap_per_column() {
        let a = laplacian_2d(20, 20);
        let n = a.nrows();
        let rhs = batch_rhs(n, 3);
        let refs: Vec<&[f64]> = rhs.iter().map(|b| b.as_slice()).collect();
        let id = IdentityPreconditioner::new(n);
        let opts = SolverOptions { max_iterations: 4, ..SolverOptions::with_tolerance(1e-14) };
        let batched = solve_batch(&a, &refs, None, &id, &opts);
        for (c, res) in batched.iter().enumerate() {
            assert_eq!(res.stats.iterations, 4, "column {c}");
            assert!(!res.stats.converged(), "column {c}");
        }
    }
}
