//! Restarted GMRES(m) with right preconditioning.
//!
//! GMRES completes the Krylov family the paper cites (CG, BiCGStab, GMRES).
//! The implementation is the standard Arnoldi process with modified
//! Gram–Schmidt orthogonalisation and Givens rotations applied to the
//! Hessenberg matrix so the residual norm is available at every inner step.

use sparse::vector::norm2;
use sparse::CsrMatrix;

use crate::history::{relative_residual_norm, ConvergenceHistory, SolveStats, StopReason};
use crate::preconditioner::Preconditioner;
use crate::resilience::{FaultEvent, FaultKind, FaultLog};
use crate::{SolveResult, SolverOptions};

/// Solve `A x = b` with right-preconditioned restarted GMRES.
///
/// `restart` is the Krylov subspace dimension `m`; the method restarts from
/// the current iterate whenever `m` inner iterations have been performed.
pub fn gmres(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    restart: usize,
    opts: &SolverOptions,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "GMRES requires a square matrix");
    assert_eq!(a.nrows(), b.len(), "GMRES rhs length mismatch");
    assert!(restart >= 1, "GMRES restart dimension must be at least 1");
    let n = b.len();
    let m = restart.min(n.max(1));

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "GMRES initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let bnorm = norm2(b);
    let threshold = opts.threshold(bnorm);
    let mut history = ConvergenceHistory::new();
    let mut faults = FaultLog::new();

    let mut r = vec![0.0; n];
    a.residual_into(b, &x, &mut r);
    let mut rnorm = norm2(&r);
    if opts.record_history {
        history.push(rnorm);
    }

    let mut total_iterations = 0usize;
    let mut stop = StopReason::MaxIterations;

    if rnorm <= threshold {
        stop = StopReason::Converged;
    }

    'outer: while rnorm > threshold && total_iterations < opts.max_iterations {
        // Arnoldi basis (m+1 vectors of length n) and Hessenberg matrix.
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut hess = vec![vec![0.0; m]; m + 1]; // (m+1) x m
        let mut cs = vec![0.0; m];
        let mut sn = vec![0.0; m];
        let mut g = vec![0.0; m + 1];
        g[0] = rnorm;
        basis.push(r.iter().map(|v| v / rnorm).collect());

        let mut inner_used = 0usize;
        let mut z = vec![0.0; n];
        let mut w = vec![0.0; n];

        for j in 0..m {
            if total_iterations >= opts.max_iterations {
                break;
            }
            // w = A M⁻¹ v_j
            preconditioner.apply(&basis[j], &mut z);
            a.spmv_into(&z, &mut w);
            // Modified Gram–Schmidt
            for i in 0..=j {
                let hij = sparse::vector::dot(&w, &basis[i]);
                hess[i][j] = hij;
                for (wk, vk) in w.iter_mut().zip(basis[i].iter()) {
                    *wk -= hij * vk;
                }
            }
            let hnext = norm2(&w);
            hess[j + 1][j] = hnext;
            // Happy breakdown: `w` lies entirely in the current subspace, so
            // the Krylov space is invariant and the least-squares solution in
            // it is exact.  No new basis vector exists — solve and leave the
            // inner loop immediately instead of pushing a zero vector and
            // orthogonalising against it for the rest of the restart cycle.
            let happy = hnext == 0.0;
            if !happy {
                basis.push(w.iter().map(|v| v / hnext).collect());
            }

            // Apply previous Givens rotations to the new column.
            for i in 0..j {
                let temp = cs[i] * hess[i][j] + sn[i] * hess[i + 1][j];
                hess[i + 1][j] = -sn[i] * hess[i][j] + cs[i] * hess[i + 1][j];
                hess[i][j] = temp;
            }
            // New rotation to annihilate hess[j+1][j].
            let denom = (hess[j][j] * hess[j][j] + hess[j + 1][j] * hess[j + 1][j]).sqrt();
            if denom == 0.0 || !denom.is_finite() {
                stop = StopReason::Breakdown;
                faults.record(FaultEvent::new(
                    FaultKind::Breakdown,
                    total_iterations as u64,
                    "gmres",
                    format!("Givens rotation denominator {denom}"),
                ));
                total_iterations += 1;
                update_solution(&mut x, &basis, &hess, &g, j + 1, preconditioner, n);
                a.residual_into(b, &x, &mut r);
                rnorm = norm2(&r);
                if opts.record_history {
                    history.push(rnorm);
                }
                break 'outer;
            }
            cs[j] = hess[j][j] / denom;
            sn[j] = hess[j + 1][j] / denom;
            hess[j][j] = denom;
            hess[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];

            total_iterations += 1;
            inner_used = j + 1;
            let inner_res = g[j + 1].abs();
            if opts.record_history {
                history.push(inner_res);
            }
            if happy || inner_res <= threshold {
                stop = StopReason::Converged;
                break;
            }
        }

        update_solution(&mut x, &basis, &hess, &g, inner_used, preconditioner, n);
        a.residual_into(b, &x, &mut r);
        rnorm = norm2(&r);
        if rnorm <= threshold {
            stop = StopReason::Converged;
        } else if !rnorm.is_finite() {
            stop = StopReason::Diverged;
            faults.record(FaultEvent::new(
                FaultKind::NonFinite,
                total_iterations as u64,
                "gmres",
                "restart residual norm became non-finite",
            ));
            break;
        }
    }

    preconditioner.collect_faults(&mut faults);
    SolveResult {
        x,
        stats: SolveStats {
            iterations: total_iterations,
            final_residual: rnorm,
            final_relative_residual: relative_residual_norm(rnorm, bnorm),
            stop_reason: stop,
            history,
            faults,
        },
    }
}

/// Solve the small least-squares triangular system and add the correction
/// `x += M⁻¹ (V y)`.
fn update_solution(
    x: &mut [f64],
    basis: &[Vec<f64>],
    hess: &[Vec<f64>],
    g: &[f64],
    k: usize,
    preconditioner: &dyn Preconditioner,
    n: usize,
) {
    if k == 0 {
        return;
    }
    // Back substitution on the k x k upper triangular part of hess.
    let mut y = vec![0.0; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for j in (i + 1)..k {
            acc -= hess[i][j] * y[j];
        }
        y[i] = if hess[i][i] != 0.0 { acc / hess[i][i] } else { 0.0 };
    }
    // v = V y
    let mut v = vec![0.0; n];
    for (j, yj) in y.iter().enumerate() {
        for (vi, bi) in v.iter_mut().zip(basis[j].iter()) {
            *vi += yj * bi;
        }
    }
    // x += M⁻¹ v
    let mut z = vec![0.0; n];
    preconditioner.apply(&v, &mut z);
    for (xi, zi) in x.iter_mut().zip(z.iter()) {
        *xi += zi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::{IdentityPreconditioner, JacobiPreconditioner};
    use crate::test_matrices::{convection_diffusion_1d, laplacian_2d};
    use crate::true_relative_residual;

    #[test]
    fn solves_spd_system() {
        let a = laplacian_2d(10, 10);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
        let b = a.spmv(&x_true);
        let id = IdentityPreconditioner::new(n);
        let result = gmres(&a, &b, None, &id, 50, &SolverOptions::with_tolerance(1e-10));
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-8);
    }

    #[test]
    fn solves_nonsymmetric_system_with_restart() {
        let a = convection_diffusion_1d(150, 0.7);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let b = a.spmv(&x_true);
        let id = IdentityPreconditioner::new(n);
        let result = gmres(&a, &b, None, &id, 20, &SolverOptions::with_tolerance(1e-10));
        assert!(result.stats.converged());
        assert!(sparse::vector::relative_error(&result.x, &x_true) < 1e-6);
    }

    #[test]
    fn preconditioned_gmres_converges() {
        let a = convection_diffusion_1d(300, 0.4);
        let b = vec![1.0; 300];
        let jacobi = JacobiPreconditioner::new(&a);
        let result = gmres(&a, &b, None, &jacobi, 30, &SolverOptions::with_tolerance(1e-8));
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-6);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_2d(4, 4);
        let id = IdentityPreconditioner::new(16);
        let result = gmres(&a, &[0.0; 16], None, &id, 10, &SolverOptions::default());
        assert_eq!(result.stats.iterations, 0);
        assert!(result.stats.converged());
    }

    #[test]
    fn small_restart_still_converges_eventually() {
        let a = laplacian_2d(8, 8);
        let b = vec![1.0; 64];
        let id = IdentityPreconditioner::new(64);
        let result = gmres(&a, &b, None, &id, 5, &SolverOptions::with_tolerance(1e-8));
        assert!(result.stats.converged());
        assert!(true_relative_residual(&a, &result.x, &b) < 1e-6);
    }

    #[test]
    fn respects_iteration_cap() {
        let a = laplacian_2d(20, 20);
        let b = vec![1.0; a.nrows()];
        let id = IdentityPreconditioner::new(a.nrows());
        let opts = SolverOptions { max_iterations: 4, ..SolverOptions::with_tolerance(1e-14) };
        let result = gmres(&a, &b, None, &id, 10, &opts);
        assert!(result.stats.iterations <= 4);
        assert!(!result.stats.converged());
    }
}
