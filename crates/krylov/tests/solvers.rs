//! Integration tests: every Krylov driver solves a fixed 2D Laplacian to
//! tolerance, and CG's recorded residual history is monotonically
//! non-increasing.

use krylov::{
    bicgstab, conjugate_gradient, gmres, preconditioned_conjugate_gradient, IdentityPreconditioner,
    JacobiPreconditioner, SolverOptions,
};
use sparse::{CooMatrix, CsrMatrix};

/// 2D 5-point Laplacian on an `nx × ny` grid (SPD, diagonally dominant).
fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 4.0).unwrap();
            if i > 0 {
                coo.push(me, idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < nx {
                coo.push(me, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                coo.push(me, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(me, idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

fn fixed_rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect()
}

const TOL: f64 = 1e-9;

#[test]
fn cg_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::with_tolerance(TOL));
    assert!(result.stats.converged(), "CG failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn pcg_with_jacobi_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let jacobi = JacobiPreconditioner::new(&a);
    let result = preconditioned_conjugate_gradient(
        &a,
        &b,
        None,
        &jacobi,
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "PCG failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn bicgstab_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = bicgstab(
        &a,
        &b,
        None,
        &IdentityPreconditioner::new(a.nrows()),
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "BiCGStab failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn gmres_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = gmres(
        &a,
        &b,
        None,
        &IdentityPreconditioner::new(a.nrows()),
        40,
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "GMRES failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn all_drivers_agree_on_the_solution() {
    let a = laplacian_2d(8, 8);
    let b = fixed_rhs(a.nrows());
    let opts = SolverOptions::with_tolerance(1e-11);
    let cg = conjugate_gradient(&a, &b, None, &opts);
    let bi = bicgstab(&a, &b, None, &IdentityPreconditioner::new(a.nrows()), &opts);
    let gm = gmres(&a, &b, None, &IdentityPreconditioner::new(a.nrows()), 64, &opts);
    assert!(sparse::vector::relative_error(&cg.x, &bi.x) < 1e-7);
    assert!(sparse::vector::relative_error(&cg.x, &gm.x) < 1e-7);
}

#[test]
fn cg_history_records_monotone_residual_norms() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::with_tolerance(TOL));
    let norms = result.stats.history.norms();
    assert!(
        norms.len() >= 2,
        "history must be recorded when record_history is on (got {} entries)",
        norms.len()
    );
    // CG on an SPD, diagonally dominant Laplacian contracts the residual at
    // every step; allow a tiny tolerance for floating-point wiggle.
    for w in norms.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-12),
            "residual history not monotone: {} -> {}",
            w[0],
            w[1]
        );
    }
    // The recorded final norm is consistent with convergence.
    assert!(norms.last().unwrap() / norms.first().unwrap() <= TOL * 10.0);
}

#[test]
fn zero_rhs_yields_zero_solution_immediately() {
    let a = laplacian_2d(6, 6);
    let b = vec![0.0; a.nrows()];
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::default());
    assert!(result.stats.converged());
    assert!(result.x.iter().all(|&v| v.abs() < 1e-14));
}
