//! Integration tests: every Krylov driver solves a fixed 2D Laplacian to
//! tolerance, and CG's recorded residual history is monotonically
//! non-increasing.

use krylov::{
    bicgstab, conjugate_gradient, gmres, preconditioned_conjugate_gradient, FaultKind,
    IdentityPreconditioner, JacobiPreconditioner, Preconditioner, SolverOptions, StopReason,
};
use sparse::{CooMatrix, CsrMatrix};

/// 2D 5-point Laplacian on an `nx × ny` grid (SPD, diagonally dominant).
fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 4.0).unwrap();
            if i > 0 {
                coo.push(me, idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < nx {
                coo.push(me, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                coo.push(me, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(me, idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

fn fixed_rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect()
}

const TOL: f64 = 1e-9;

#[test]
fn cg_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::with_tolerance(TOL));
    assert!(result.stats.converged(), "CG failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn pcg_with_jacobi_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let jacobi = JacobiPreconditioner::new(&a);
    let result = preconditioned_conjugate_gradient(
        &a,
        &b,
        None,
        &jacobi,
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "PCG failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn bicgstab_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = bicgstab(
        &a,
        &b,
        None,
        &IdentityPreconditioner::new(a.nrows()),
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "BiCGStab failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn gmres_solves_laplacian_to_tolerance() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = gmres(
        &a,
        &b,
        None,
        &IdentityPreconditioner::new(a.nrows()),
        40,
        &SolverOptions::with_tolerance(TOL),
    );
    assert!(result.stats.converged(), "GMRES failed: {:?}", result.stats);
    assert!(krylov::true_relative_residual(&a, &result.x, &b) < 10.0 * TOL);
}

#[test]
fn all_drivers_agree_on_the_solution() {
    let a = laplacian_2d(8, 8);
    let b = fixed_rhs(a.nrows());
    let opts = SolverOptions::with_tolerance(1e-11);
    let cg = conjugate_gradient(&a, &b, None, &opts);
    let bi = bicgstab(&a, &b, None, &IdentityPreconditioner::new(a.nrows()), &opts);
    let gm = gmres(&a, &b, None, &IdentityPreconditioner::new(a.nrows()), 64, &opts);
    assert!(sparse::vector::relative_error(&cg.x, &bi.x) < 1e-7);
    assert!(sparse::vector::relative_error(&cg.x, &gm.x) < 1e-7);
}

#[test]
fn cg_history_records_monotone_residual_norms() {
    let a = laplacian_2d(12, 12);
    let b = fixed_rhs(a.nrows());
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::with_tolerance(TOL));
    let norms = result.stats.history.norms();
    assert!(
        norms.len() >= 2,
        "history must be recorded when record_history is on (got {} entries)",
        norms.len()
    );
    // CG on an SPD, diagonally dominant Laplacian contracts the residual at
    // every step; allow a tiny tolerance for floating-point wiggle.
    for w in norms.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-12),
            "residual history not monotone: {} -> {}",
            w[0],
            w[1]
        );
    }
    // The recorded final norm is consistent with convergence.
    assert!(norms.last().unwrap() / norms.first().unwrap() <= TOL * 10.0);
}

#[test]
fn zero_rhs_yields_zero_solution_immediately() {
    let a = laplacian_2d(6, 6);
    let b = vec![0.0; a.nrows()];
    let result = conjugate_gradient(&a, &b, None, &SolverOptions::default());
    assert!(result.stats.converged());
    assert!(result.x.iter().all(|&v| v.abs() < 1e-14));
}

/// Zero-rhs semantics regression (all four solvers): `final_relative_residual`
/// must follow the documented convention — `0.0` for an exactly-zero final
/// residual, `f64::INFINITY` for a nonzero one — never the silent absolute
/// residual it used to report.
#[test]
fn zero_rhs_relative_residual_semantics_across_all_solvers() {
    let a = laplacian_2d(5, 5);
    let n = a.nrows();
    let b = vec![0.0; n];
    let id = IdentityPreconditioner::new(n);
    let opts = SolverOptions::default();

    // From the zero initial guess every solver converges immediately with an
    // exactly-zero residual: the relative residual must be 0.0, not NaN and
    // not "the absolute residual" by accident.
    let stats = [
        conjugate_gradient(&a, &b, None, &opts).stats,
        preconditioned_conjugate_gradient(&a, &b, None, &id, &opts).stats,
        bicgstab(&a, &b, None, &id, &opts).stats,
        gmres(&a, &b, None, &id, 20, &opts).stats,
    ];
    for s in &stats {
        assert!(s.converged());
        assert_eq!(s.iterations, 0);
        assert_eq!(s.final_residual, 0.0);
        assert_eq!(s.final_relative_residual, 0.0, "zero residual against zero rhs is 0.0");
    }

    // From a nonzero initial guess the solvers iterate x → 0 under the
    // absolute tolerance; whatever tiny residual remains, the reported
    // relative residual must be 0.0 (exact) or +∞ (nonzero) — and must agree
    // with the final absolute residual, not shadow it.
    let x0: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) * 0.25 - 0.75).collect();
    let stats = [
        conjugate_gradient(&a, &b, Some(&x0), &opts).stats,
        preconditioned_conjugate_gradient(&a, &b, Some(&x0), &id, &opts).stats,
        bicgstab(&a, &b, Some(&x0), &id, &opts).stats,
        gmres(&a, &b, Some(&x0), &id, 25, &opts).stats,
    ];
    for s in &stats {
        assert!(s.converged(), "zero-rhs solve from nonzero guess must converge: {:?}", s);
        assert!(s.final_residual <= opts.abs_tolerance);
        if s.final_residual == 0.0 {
            assert_eq!(s.final_relative_residual, 0.0);
        } else {
            assert!(
                s.final_relative_residual.is_infinite(),
                "nonzero residual against zero rhs must report infinity, got {}",
                s.final_relative_residual
            );
        }
    }

    // The shared helper itself.
    assert_eq!(krylov::relative_residual_norm(1e-3, 2.0), 5e-4);
    assert_eq!(krylov::relative_residual_norm(0.0, 0.0), 0.0);
    assert!(krylov::relative_residual_norm(1e-300, 0.0).is_infinite());
}

/// `mean_reduction_factor` on real zero-rhs solves: a history that starts (and
/// possibly stays) at an exactly-zero residual must report `Some(0.0)` once a
/// step has been taken and `None` for the zero-step immediate exit — never
/// NaN from dividing by the zero first entry.
#[test]
fn zero_rhs_mean_reduction_factor_is_well_defined() {
    let a = laplacian_2d(5, 5);
    let n = a.nrows();
    let b = vec![0.0; n];
    let opts = SolverOptions::default();

    // Immediate convergence from the zero guess records only the initial
    // residual: a single entry has no per-step factor.
    let result = conjugate_gradient(&a, &b, None, &opts);
    assert!(result.stats.converged());
    assert_eq!(result.stats.history.mean_reduction_factor(), None);

    // From a nonzero guess the solver takes real steps toward x = 0; whatever
    // the history looks like, the factor must be a defined, finite value.
    let x0: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.5 - 1.0).collect();
    let result = conjugate_gradient(&a, &b, Some(&x0), &opts);
    assert!(result.stats.converged());
    if let Some(f) = result.stats.history.mean_reduction_factor() {
        assert!(f.is_finite() && f >= 0.0, "factor must be finite and non-negative, got {f}");
    } else {
        // None is only allowed when no meaningful factor exists.
        assert!(result.stats.history.len() < 2 || result.stats.history.norms()[0] == 0.0);
    }
}

/// PCG on an indefinite matrix hits a non-positive curvature `p·Ap ≤ 0` in the
/// very first iteration: the exit must be a classified
/// `StopReason::Breakdown` carrying a `FaultKind::Breakdown` event on
/// `SolveStats::faults` — not a silent max-iterations grind.
#[test]
fn pcg_zero_curvature_breakdown_is_classified() {
    let n = 4;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        // diag(1, -1, 1, -1): indefinite, so some directions have p·Ap < 0.
        coo.push(i, i, if i % 2 == 0 { 1.0 } else { -1.0 }).unwrap();
    }
    let a = coo.to_csr();
    let b = vec![0.0, 1.0, 0.0, 1.0]; // excites only the negative eigenspace
    let id = IdentityPreconditioner::new(n);
    let result = preconditioned_conjugate_gradient(&a, &b, None, &id, &SolverOptions::default());
    assert_eq!(result.stats.stop_reason, StopReason::Breakdown);
    assert!(result.stats.faults.has_kind(FaultKind::Breakdown));
    assert_eq!(result.stats.faults.events()[0].tier, "pcg");
    assert!(result.stats.degraded());
}

/// BiCGStab with a zero-output preconditioner: `v = A M⁻¹ p = 0` makes the
/// denominator `r̂·v` vanish.  The classified breakdown must surface on
/// `SolveStats::faults`, naming the solver stage.
#[test]
fn bicgstab_zero_denominator_breakdown_is_classified() {
    struct ZeroPreconditioner(usize);
    impl Preconditioner for ZeroPreconditioner {
        fn apply(&self, _r: &[f64], z: &mut [f64]) {
            for v in z.iter_mut() {
                *v = 0.0;
            }
        }
        fn dim(&self) -> usize {
            self.0
        }
        fn name(&self) -> &str {
            "zero"
        }
    }
    let a = laplacian_2d(6, 6);
    let b = fixed_rhs(a.nrows());
    let zero = ZeroPreconditioner(a.nrows());
    let result = bicgstab(&a, &b, None, &zero, &SolverOptions::default());
    assert_eq!(result.stats.stop_reason, StopReason::Breakdown);
    assert!(result.stats.faults.has_kind(FaultKind::Breakdown));
    assert_eq!(result.stats.faults.events()[0].tier, "bicgstab");
    assert!(result.stats.faults.events()[0].detail.contains("r̂·v"));
}

/// Happy breakdown: when the Krylov space becomes invariant (`h_{j+1,j} = 0`)
/// GMRES must solve in the current subspace and exit the inner loop as
/// `Converged` immediately — not keep orthogonalising against a zero basis
/// vector for the rest of the restart cycle.
#[test]
fn gmres_happy_breakdown_exits_immediately_with_converged() {
    // A x = b with A = I: the first Arnoldi step gives w = v0, which
    // orthogonalises to exactly zero — a guaranteed happy breakdown at j = 0.
    let n = 12;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0).unwrap();
    }
    let a = coo.to_csr();
    let b: Vec<f64> = (0..n).map(|i| (i as f64) - 4.5).collect();
    let id = IdentityPreconditioner::new(n);
    let result = gmres(&a, &b, None, &id, 10, &SolverOptions::with_tolerance(1e-12));
    assert!(result.stats.converged());
    assert_eq!(result.stats.iterations, 1, "identity system must solve in one inner step");
    assert!(sparse::vector::relative_error(&result.x, &b) < 1e-14);

    // A matrix with exactly two distinct eigenvalues: the Krylov space is
    // invariant after two steps, so the breakdown fires at j = 1 well before
    // the restart length is exhausted.
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, if i % 2 == 0 { 2.0 } else { 5.0 }).unwrap();
    }
    let a2 = coo.to_csr();
    let result = gmres(&a2, &b, None, &id, 10, &SolverOptions::with_tolerance(1e-12));
    assert!(result.stats.converged());
    assert_eq!(result.stats.iterations, 2, "two-eigenvalue system must solve in two inner steps");
    assert!(krylov::true_relative_residual(&a2, &result.x, &b) < 1e-13);
}
