//! Linear layers and two-layer MLPs with hand-derived reverse-mode gradients.
//!
//! Every neural component of the DSS model (message functions `Φ→`, `Φ←`, the
//! update `Ψ` and the decoders `D`) is a two-layer perceptron with one ReLU
//! hidden layer whose width equals the latent dimension `d` — that choice
//! reproduces the paper's reported weight counts exactly.
//!
//! The layers operate on row-major batches: an input of `n` rows of `in_dim`
//! features is a `&[f64]` of length `n * in_dim`.

use rand::prelude::*;

/// A dense affine layer `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Weights, row-major `out_dim × in_dim`.
    pub weight: Vec<f64>,
    /// Bias, length `out_dim`.
    pub bias: Vec<f64>,
}

impl Linear {
    /// Xavier/Glorot-uniform initialised layer (the paper's initialisation).
    pub fn xavier(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weight = (0..in_dim * out_dim).map(|_| rng.gen_range(-limit..limit)).collect();
        let bias = vec![0.0; out_dim];
        Linear { in_dim, out_dim, weight, bias }
    }

    /// Zero-initialised layer (used as a gradient container).
    pub fn zeros(in_dim: usize, out_dim: usize) -> Self {
        Linear { in_dim, out_dim, weight: vec![0.0; in_dim * out_dim], bias: vec![0.0; out_dim] }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass on a batch of `n` rows.
    pub fn forward(&self, x: &[f64], n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n * self.out_dim];
        self.forward_into(x, n, &mut y);
        y
    }

    /// Forward pass writing into a preallocated output of `n * out_dim`.
    ///
    /// Runs as a register-blocked batch GEMM (see [`crate::gemm`]); the
    /// per-element accumulation order is unchanged, so the results are
    /// bit-identical to the scalar triple loop this replaced.
    pub fn forward_into(&self, x: &[f64], n: usize, y: &mut [f64]) {
        debug_assert_eq!(x.len(), n * self.in_dim);
        debug_assert_eq!(y.len(), n * self.out_dim);
        crate::gemm::gemm_bias_into(x, n, self.in_dim, self.out_dim, &self.weight, &self.bias, y);
    }

    /// Batched forward pass over a column-interleaved `n × in_dim × b` panel
    /// of `b` independent inputs.  Column `c` of the output panel is
    /// bit-identical to [`Linear::forward_into`] run on column `c` alone.
    pub fn forward_into_b(&self, x: &[f64], n: usize, b: usize, y: &mut [f64]) {
        debug_assert_eq!(x.len(), n * self.in_dim * b);
        debug_assert_eq!(y.len(), n * self.out_dim * b);
        crate::gemm::gemm_bias_into_b(
            x,
            n,
            self.in_dim,
            self.out_dim,
            b,
            &self.weight,
            &self.bias,
            y,
        );
    }

    /// Backward pass: given the forward input `x` and `dL/dy`, accumulate
    /// parameter gradients into `grad` and return `dL/dx`.
    pub fn backward(&self, x: &[f64], dy: &[f64], n: usize, grad: &mut Linear) -> Vec<f64> {
        debug_assert_eq!(x.len(), n * self.in_dim);
        debug_assert_eq!(dy.len(), n * self.out_dim);
        debug_assert_eq!(grad.in_dim, self.in_dim);
        debug_assert_eq!(grad.out_dim, self.out_dim);
        let mut dx = vec![0.0; n * self.in_dim];
        for r in 0..n {
            let xin = &x[r * self.in_dim..(r + 1) * self.in_dim];
            let dyr = &dy[r * self.out_dim..(r + 1) * self.out_dim];
            let dxr = &mut dx[r * self.in_dim..(r + 1) * self.in_dim];
            for o in 0..self.out_dim {
                let g = dyr[o];
                if g == 0.0 {
                    continue;
                }
                grad.bias[o] += g;
                let wrow = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
                let gwrow = &mut grad.weight[o * self.in_dim..(o + 1) * self.in_dim];
                for i in 0..self.in_dim {
                    gwrow[i] += g * xin[i];
                    dxr[i] += g * wrow[i];
                }
            }
        }
        dx
    }

    /// The weight transposed into the `in_dim × out_dim` layout consumed by
    /// the single-precision inference kernels (one contiguous row of output
    /// weights per input feature), cast to f32.
    pub fn weight_t_f32(&self) -> Vec<f32> {
        let mut wt = vec![0.0f32; self.in_dim * self.out_dim];
        for o in 0..self.out_dim {
            for i in 0..self.in_dim {
                wt[i * self.out_dim + o] = self.weight[o * self.in_dim + i] as f32;
            }
        }
        wt
    }

    /// The bias cast to f32.
    pub fn bias_f32(&self) -> Vec<f32> {
        self.bias.iter().map(|&b| b as f32).collect()
    }

    /// Append all parameters to a flat vector (weights then bias).
    pub fn append_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.weight);
        out.extend_from_slice(&self.bias);
    }

    /// Read parameters back from a flat vector starting at `*offset`.
    pub fn read_params(&mut self, data: &[f64], offset: &mut usize) {
        let w = self.weight.len();
        self.weight.copy_from_slice(&data[*offset..*offset + w]);
        *offset += w;
        let b = self.bias.len();
        self.bias.copy_from_slice(&data[*offset..*offset + b]);
        *offset += b;
    }
}

/// Element-wise ReLU forward.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// ReLU backward: `dL/dx = dL/dy ⊙ 1[x > 0]`.
pub fn relu_backward(x_pre: &[f64], dy: &[f64]) -> Vec<f64> {
    x_pre.iter().zip(dy.iter()).map(|(&x, &g)| if x > 0.0 { g } else { 0.0 }).collect()
}

/// A two-layer perceptron `y = W₂ relu(W₁ x + b₁) + b₂`.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// First (hidden) layer.
    pub l1: Linear,
    /// Output layer.
    pub l2: Linear,
}

/// Forward cache of an MLP: the hidden pre-activation batch.
pub struct MlpCache {
    hidden_pre: Vec<f64>,
}

impl Mlp {
    /// Xavier-initialised MLP with one hidden layer of width `hidden`.
    pub fn xavier(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Mlp { l1: Linear::xavier(in_dim, hidden, rng), l2: Linear::xavier(hidden, out_dim, rng) }
    }

    /// Zero MLP with the same shape as `other` (gradient container).
    pub fn zeros_like(other: &Mlp) -> Self {
        Mlp {
            l1: Linear::zeros(other.l1.in_dim, other.l1.out_dim),
            l2: Linear::zeros(other.l2.in_dim, other.l2.out_dim),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.l1.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.l2.out_dim
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }

    /// Forward pass on `n` rows.
    pub fn forward(&self, x: &[f64], n: usize) -> Vec<f64> {
        let hidden_pre = self.l1.forward(x, n);
        let hidden = relu(&hidden_pre);
        self.l2.forward(&hidden, n)
    }

    /// Allocation-free forward pass: `hidden` is a caller-owned scratch that
    /// is resized to `n * hidden_dim` on first use and reused across calls,
    /// `y` receives the `n * out_dim` output.
    ///
    /// The hidden activation is computed in place (affine, then ReLU applied
    /// destructively), which yields bit-identical results to [`Mlp::forward`].
    pub fn forward_into(&self, x: &[f64], n: usize, hidden: &mut Vec<f64>, y: &mut [f64]) {
        hidden.resize(n * self.l1.out_dim, 0.0);
        self.l1.forward_into(x, n, hidden);
        for h in hidden.iter_mut() {
            *h = h.max(0.0);
        }
        self.l2.forward_into(hidden, n, y);
    }

    /// Batched forward pass over a column-interleaved panel of `b` inputs;
    /// per-column bit-identical to [`Mlp::forward_into`].
    pub fn forward_into_b(
        &self,
        x: &[f64],
        n: usize,
        b: usize,
        hidden: &mut Vec<f64>,
        y: &mut [f64],
    ) {
        hidden.resize(n * self.l1.out_dim * b, 0.0);
        self.l1.forward_into_b(x, n, b, hidden);
        for h in hidden.iter_mut() {
            *h = h.max(0.0);
        }
        self.l2.forward_into_b(hidden, n, b, y);
    }

    /// Forward pass that also returns the cache needed for backprop.
    pub fn forward_cached(&self, x: &[f64], n: usize) -> (Vec<f64>, MlpCache) {
        let hidden_pre = self.l1.forward(x, n);
        let hidden = relu(&hidden_pre);
        let y = self.l2.forward(&hidden, n);
        (y, MlpCache { hidden_pre })
    }

    /// Backward pass: accumulate parameter gradients into `grad` and return
    /// `dL/dx`.
    pub fn backward(
        &self,
        x: &[f64],
        cache: &MlpCache,
        dy: &[f64],
        n: usize,
        grad: &mut Mlp,
    ) -> Vec<f64> {
        let hidden = relu(&cache.hidden_pre);
        let dhidden = self.l2.backward(&hidden, dy, n, &mut grad.l2);
        let dhidden_pre = relu_backward(&cache.hidden_pre, &dhidden);
        self.l1.backward(x, &dhidden_pre, n, &mut grad.l1)
    }

    /// Append parameters (l1 then l2) to a flat vector.
    pub fn append_params(&self, out: &mut Vec<f64>) {
        self.l1.append_params(out);
        self.l2.append_params(out);
    }

    /// Read parameters back from a flat vector.
    pub fn read_params(&mut self, data: &[f64], offset: &mut usize) {
        self.l1.read_params(data, offset);
        self.l2.read_params(data, offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_difference_check(
        forward: &dyn Fn(&[f64]) -> f64,
        params: &[f64],
        analytic: &[f64],
        eps: f64,
        tol: f64,
    ) {
        for i in 0..params.len() {
            let mut plus = params.to_vec();
            plus[i] += eps;
            let mut minus = params.to_vec();
            minus[i] -= eps;
            let numeric = (forward(&plus) - forward(&minus)) / (2.0 * eps);
            let diff = (numeric - analytic[i]).abs();
            let scale = numeric.abs().max(analytic[i].abs()).max(1.0);
            assert!(
                diff / scale < tol,
                "gradient mismatch at {i}: numeric {numeric}, analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn linear_forward_known_values() {
        let mut layer = Linear::zeros(2, 2);
        layer.weight = vec![1.0, 2.0, 3.0, 4.0];
        layer.bias = vec![0.5, -0.5];
        let y = layer.forward(&[1.0, 1.0, 2.0, 0.0], 2);
        assert_eq!(y, vec![3.5, 6.5, 2.5, 5.5]);
        assert_eq!(layer.num_params(), 6);
    }

    #[test]
    fn relu_and_backward() {
        let x = vec![-1.0, 0.0, 2.0];
        assert_eq!(relu(&x), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_backward(&x, &[1.0, 1.0, 1.0]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn linear_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::xavier(3, 2, &mut rng);
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3 - 0.5).collect(); // 2 rows
                                                                            // Scalar loss: sum of squares of outputs.
        let loss_for = |params: &[f64]| {
            let mut l = layer.clone();
            let mut off = 0;
            l.read_params(params, &mut off);
            let y = l.forward(&x, 2);
            y.iter().map(|v| v * v).sum::<f64>()
        };
        let mut params = Vec::new();
        layer.append_params(&mut params);
        // Analytic gradient.
        let y = layer.forward(&x, 2);
        let dy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
        let mut grad = Linear::zeros(3, 2);
        let _dx = layer.backward(&x, &dy, 2, &mut grad);
        let mut analytic = Vec::new();
        grad.append_params(&mut analytic);
        finite_difference_check(&loss_for, &params, &analytic, 1e-6, 1e-5);
    }

    #[test]
    fn linear_input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::xavier(3, 2, &mut rng);
        let x: Vec<f64> = vec![0.1, -0.2, 0.4];
        let loss_for_x = |xv: &[f64]| {
            let y = layer.forward(xv, 1);
            y.iter().map(|v| v * v).sum::<f64>()
        };
        let y = layer.forward(&x, 1);
        let dy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
        let mut grad = Linear::zeros(3, 2);
        let dx = layer.backward(&x, &dy, 1, &mut grad);
        finite_difference_check(&loss_for_x, &x, &dx, 1e-6, 1e-6);
    }

    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::xavier(4, 5, 3, &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.num_params(), 4 * 5 + 5 + 5 * 3 + 3);
        let x: Vec<f64> = (0..8).map(|i| ((i * 7 % 5) as f64) * 0.2 - 0.4).collect(); // 2 rows
        let loss_for = |params: &[f64]| {
            let mut m = mlp.clone();
            let mut off = 0;
            m.read_params(params, &mut off);
            let y = m.forward(&x, 2);
            y.iter().enumerate().map(|(i, v)| (i as f64 + 1.0) * v * v).sum::<f64>()
        };
        let mut params = Vec::new();
        mlp.append_params(&mut params);
        let (y, cache) = mlp.forward_cached(&x, 2);
        let dy: Vec<f64> = y.iter().enumerate().map(|(i, v)| 2.0 * (i as f64 + 1.0) * v).collect();
        let mut grad = Mlp::zeros_like(&mlp);
        let dx = mlp.backward(&x, &cache, &dy, 2, &mut grad);
        let mut analytic = Vec::new();
        grad.append_params(&mut analytic);
        finite_difference_check(&loss_for, &params, &analytic, 1e-6, 1e-4);

        // Also check the input gradient.
        let loss_for_x = |xv: &[f64]| {
            let y = mlp.forward(xv, 2);
            y.iter().enumerate().map(|(i, v)| (i as f64 + 1.0) * v * v).sum::<f64>()
        };
        finite_difference_check(&loss_for_x, &x, &dx, 1e-6, 1e-4);
    }

    #[test]
    fn forward_into_matches_forward_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::xavier(5, 4, 3, &mut rng);
        let mut hidden = Vec::new();
        let mut out = [0.0; 3 * 3];
        // Reuse the same scratch across calls with different batch sizes.
        for n in [3usize, 1, 2] {
            let x: Vec<f64> = (0..n * 5).map(|i| ((i * 3 % 11) as f64) * 0.2 - 1.0).collect();
            let expected = mlp.forward(&x, n);
            mlp.forward_into(&x, n, &mut hidden, &mut out[..n * 3]);
            assert_eq!(&out[..n * 3], expected.as_slice());
        }
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::xavier(3, 4, 2, &mut rng);
        let mut flat = Vec::new();
        mlp.append_params(&mut flat);
        let mut copy = Mlp::zeros_like(&mlp);
        let mut off = 0;
        copy.read_params(&flat, &mut off);
        assert_eq!(off, flat.len());
        let x = vec![0.3, -0.1, 0.7];
        assert_eq!(mlp.forward(&x, 1), copy.forward(&x, 1));
    }

    #[test]
    fn xavier_initialization_is_bounded_and_nonzero() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::xavier(10, 10, &mut rng);
        let limit = (6.0 / 20.0_f64).sqrt();
        assert!(layer.weight.iter().all(|w| w.abs() <= limit));
        assert!(layer.weight.iter().any(|&w| w != 0.0));
        assert!(layer.bias.iter().all(|&b| b == 0.0));
    }
}
