//! Training-set extraction (Section IV-A of the paper).
//!
//! The paper's dataset is built by solving many global Poisson problems with
//! PCG preconditioned by the classic two-level ASM, and recording, at every
//! PCG iteration and for every sub-domain, the local problem the
//! preconditioner had to solve: the sub-domain operator together with the
//! restricted (and normalised) residual as right-hand side.  This module
//! reproduces that pipeline: the produced [`LocalGraph`]s are exactly the
//! inputs the DSS model later sees inside the DDM-GNN preconditioner.

use ddm::{AdditiveSchwarz, AsmLevel, Decomposition};
use fem::PoissonProblem;
use krylov::Preconditioner;
use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain};
use partition::partition_mesh_with_overlap;
use sparse::CsrMatrix;

use crate::graph::LocalGraph;

/// A training sample: one local Poisson problem presented as a graph.
pub type TrainingSample = LocalGraph;

/// Configuration for dataset extraction.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of global Poisson problems to solve.
    pub num_global_problems: usize,
    /// Approximate node count of each global problem (the paper uses
    /// 6000–8000; the CPU-sized default is smaller).
    pub target_nodes: usize,
    /// Approximate sub-domain size (the paper trains on ~1000-node
    /// sub-domains).
    pub subdomain_size: usize,
    /// Overlap layers.
    pub overlap: usize,
    /// Relative residual tolerance of the data-generating PCG solve.
    pub tolerance: f64,
    /// Hard cap on the number of PCG iterations recorded per global problem.
    pub max_iterations_per_problem: usize,
    /// Optional cap on the total number of samples.
    pub max_samples: Option<usize>,
    /// Base RNG seed (domains, data and partitions derive from it).
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_global_problems: 4,
            target_nodes: 1200,
            subdomain_size: 300,
            overlap: 2,
            tolerance: 1e-6,
            max_iterations_per_problem: 60,
            max_samples: None,
            seed: 0,
        }
    }
}

/// Compute the local Dirichlet-boundary mask of a sub-domain: global Dirichlet
/// nodes plus nodes coupled to the exterior of the sub-domain (the artificial
/// interface on which the Schwarz local problems impose homogeneous Dirichlet
/// conditions).
pub fn local_boundary_mask(
    matrix: &CsrMatrix,
    subdomain: &[usize],
    global_dirichlet: &[bool],
) -> Vec<bool> {
    let mut in_subdomain = vec![false; matrix.nrows()];
    for &g in subdomain {
        in_subdomain[g] = true;
    }
    subdomain
        .iter()
        .map(|&g| {
            if global_dirichlet[g] {
                return true;
            }
            let (cols, _) = matrix.row(g);
            cols.iter().any(|&c| !in_subdomain[c])
        })
        .collect()
}

/// Build the per-sub-domain graph templates (geometry, operator, boundary) of
/// a decomposed problem.  The right-hand sides start at zero and are filled by
/// [`LocalGraph::set_rhs`] during extraction or preconditioning.
pub fn build_local_graphs(
    problem: &PoissonProblem,
    decomposition: &Decomposition,
) -> Vec<LocalGraph> {
    decomposition
        .subdomains
        .iter()
        .zip(decomposition.local_matrices.iter())
        .map(|(subdomain, local_matrix)| {
            let positions = subdomain.iter().map(|&g| problem.mesh.points[g]).collect();
            let boundary = local_boundary_mask(&problem.matrix, subdomain, &problem.dirichlet);
            let zero_rhs = vec![0.0; subdomain.len()];
            LocalGraph::new(local_matrix.clone(), positions, &zero_rhs, boundary)
        })
        .collect()
}

/// Extract local training problems by running two-level ASM-preconditioned
/// PCG on random global problems and recording every sub-domain right-hand
/// side at every iteration.
pub fn extract_local_problems(config: &DatasetConfig) -> Vec<TrainingSample> {
    let mut samples = Vec::new();
    'problems: for p in 0..config.num_global_problems {
        let problem_seed = config.seed.wrapping_add(p as u64 * 1013);
        let domain = RandomBlobDomain::generate(problem_seed, 20, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, config.target_nodes);
        let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(problem_seed));
        let subdomains =
            partition_mesh_with_overlap(&mesh, config.subdomain_size, config.overlap, problem_seed);
        let problem = PoissonProblem::with_random_data(mesh, problem_seed.wrapping_add(7));
        let decomposition = Decomposition::new(&problem.matrix, subdomains);
        let templates = build_local_graphs(&problem, &decomposition);
        let asm = match AdditiveSchwarz::from_decomposition(
            &problem.matrix,
            decomposition.clone(),
            AsmLevel::TwoLevel,
        ) {
            Ok(asm) => asm,
            Err(_) => continue,
        };

        // PCG loop (Algorithm 1), recording the residual before each
        // preconditioner application.
        let a = &problem.matrix;
        let b = &problem.rhs;
        let n = b.len();
        let bnorm = sparse::vector::norm2(b);
        let threshold = config.tolerance * bnorm.max(f64::MIN_POSITIVE);
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let mut z = vec![0.0; n];
        let mut q = vec![0.0; n];
        asm.apply(&r, &mut z);
        record_samples(&decomposition, &templates, &r, &mut samples, config.max_samples);
        let mut pvec = z.clone();
        let mut rho = sparse::vector::dot(&r, &z);
        for _iter in 0..config.max_iterations_per_problem {
            a.spmv_into(&pvec, &mut q);
            let alpha = rho / sparse::vector::dot(&pvec, &q);
            sparse::vector::axpy(alpha, &pvec, &mut x);
            sparse::vector::axpy(-alpha, &q, &mut r);
            if sparse::vector::norm2(&r) <= threshold {
                break;
            }
            record_samples(&decomposition, &templates, &r, &mut samples, config.max_samples);
            if let Some(cap) = config.max_samples {
                if samples.len() >= cap {
                    break 'problems;
                }
            }
            asm.apply(&r, &mut z);
            let rho_new = sparse::vector::dot(&r, &z);
            let beta = rho_new / rho;
            rho = rho_new;
            sparse::vector::axpby(1.0, &z, beta, &mut pvec);
        }
    }
    samples
}

/// Record one sample per sub-domain for the current global residual.
fn record_samples(
    decomposition: &Decomposition,
    templates: &[LocalGraph],
    residual: &[f64],
    out: &mut Vec<TrainingSample>,
    cap: Option<usize>,
) {
    for (restriction, template) in decomposition.restrictions.iter().zip(templates.iter()) {
        if let Some(c) = cap {
            if out.len() >= c {
                return;
            }
        }
        let local_rhs = restriction.restrict(residual);
        // Skip (numerically) zero local residuals — they carry no signal.
        if sparse::vector::norm2(&local_rhs) <= 1e-14 {
            continue;
        }
        let mut graph = template.clone();
        graph.set_rhs(&local_rhs);
        out.push(graph);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DatasetConfig {
        DatasetConfig {
            num_global_problems: 1,
            target_nodes: 400,
            subdomain_size: 120,
            overlap: 2,
            tolerance: 1e-6,
            max_iterations_per_problem: 8,
            max_samples: Some(40),
            seed: 3,
        }
    }

    #[test]
    fn extraction_produces_normalised_samples() {
        let samples = extract_local_problems(&tiny_config());
        assert!(!samples.is_empty(), "dataset must not be empty");
        assert!(samples.len() <= 40);
        for s in &samples {
            // Inputs are normalised (‖c‖ = 1) and sizes are consistent.
            let norm = sparse::vector::norm2(&s.input);
            assert!((norm - 1.0).abs() < 1e-10, "input norm {norm}");
            assert!(s.rhs_norm > 0.0);
            assert_eq!(s.matrix.nrows(), s.num_nodes());
            assert_eq!(s.positions.len(), s.num_nodes());
            assert!(s.num_edges() > 0);
            // Sub-domain sizes track the requested size.
            assert!(s.num_nodes() > 40 && s.num_nodes() < 400, "size {}", s.num_nodes());
        }
    }

    #[test]
    fn samples_come_from_multiple_iterations() {
        // More samples than sub-domains means at least two PCG iterations were
        // recorded, matching the paper's construction.
        let config = tiny_config();
        let samples = extract_local_problems(&config);
        let k_estimate = config.target_nodes.div_ceil(config.subdomain_size);
        assert!(
            samples.len() > k_estimate,
            "expected more than {k_estimate} samples, got {}",
            samples.len()
        );
    }

    #[test]
    fn local_boundary_mask_flags_interface_nodes() {
        use sparse::CooMatrix;
        // 1D chain of 6 nodes; sub-domain = nodes 1..=3; node 1 and 3 touch the
        // exterior, node 2 is interior; node 0 is a global Dirichlet node.
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let mut dirichlet = vec![false; n];
        dirichlet[0] = true;
        let mask = local_boundary_mask(&a, &[1, 2, 3], &dirichlet);
        assert_eq!(mask, vec![true, false, true]);
        // If the whole domain is one sub-domain, only the Dirichlet node is
        // boundary.
        let mask_all = local_boundary_mask(&a, &[0, 1, 2, 3, 4, 5], &dirichlet);
        assert_eq!(mask_all, vec![true, false, false, false, false, false]);
    }

    #[test]
    fn extraction_is_deterministic() {
        let s1 = extract_local_problems(&tiny_config());
        let s2 = extract_local_problems(&tiny_config());
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.num_nodes(), b.num_nodes());
            assert_eq!(a.input, b.input);
        }
    }
}
