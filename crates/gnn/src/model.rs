//! The Deep Statistical Solver model (Section III-B of the paper).
//!
//! The model maintains a latent state `H ∈ R^{n×d}` initialised to zero and
//! applies `k̄` *distinct* message-passing blocks.  Block `k` computes, for
//! every node `j`,
//!
//! ```text
//! φ→_j = Σ_{l ∈ N(j)} Φ→_k(h_j, h_l,  d_jl, ‖d_jl‖)
//! φ←_j = Σ_{l ∈ N(j)} Φ←_k(h_j, h_l, -d_jl, ‖d_jl‖)
//! h'_j = h_j + α Ψ_k(h_j, c_j, φ→_j, φ←_j)
//! r̂_j  = D_k(h'_j)
//! ```
//!
//! with all of `Φ→`, `Φ←`, `Ψ`, `D` two-layer MLPs of hidden width `d` (this
//! choice reproduces the paper's reported weight counts exactly).  Training
//! minimises the sum over blocks of the physics-informed residual loss of the
//! decoded state (Eq. 23).  Gradients are exact reverse-mode derivatives with
//! per-block activation recomputation so the memory footprint stays at one
//! latent state per block.

use std::sync::Arc;
use std::time::Instant;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::gemm;
use crate::graph::LocalGraph;
use crate::layers::Mlp;
use crate::loss::residual_loss_and_grad;
use crate::plan::{
    InferScratchF32, InferScratchQ, InferencePlan, InferencePlanF32, InferencePlanQ,
    InferenceTimings, ScratchPool,
};

/// Hyper-parameters of the DSS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DssConfig {
    /// Number of message-passing blocks `k̄`.
    pub num_blocks: usize,
    /// Latent dimension `d` (also the hidden width of every MLP).
    pub latent_dim: usize,
    /// Residual update step `α` (the paper uses 1e-3).
    pub alpha: f64,
}

impl Default for DssConfig {
    fn default() -> Self {
        // The paper's training configuration: k̄ = 30, d = 10, α = 1e-3.
        DssConfig { num_blocks: 30, latent_dim: 10, alpha: 1e-3 }
    }
}

impl DssConfig {
    /// Convenience constructor.
    pub fn new(num_blocks: usize, latent_dim: usize) -> Self {
        DssConfig { num_blocks, latent_dim, alpha: 1e-3 }
    }
}

/// One message-passing block with its four MLPs.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    pub phi_fwd: Mlp,
    pub phi_bwd: Mlp,
    pub psi: Mlp,
    pub decoder: Mlp,
}

impl Block {
    fn xavier(d: usize, rng: &mut impl Rng) -> Self {
        let edge_in = 2 * d + 3;
        let psi_in = 3 * d + 1;
        Block {
            phi_fwd: Mlp::xavier(edge_in, d, d, rng),
            phi_bwd: Mlp::xavier(edge_in, d, d, rng),
            psi: Mlp::xavier(psi_in, d, d, rng),
            decoder: Mlp::xavier(d, d, 1, rng),
        }
    }

    fn zeros_like(other: &Block) -> Self {
        Block {
            phi_fwd: Mlp::zeros_like(&other.phi_fwd),
            phi_bwd: Mlp::zeros_like(&other.phi_bwd),
            psi: Mlp::zeros_like(&other.psi),
            decoder: Mlp::zeros_like(&other.decoder),
        }
    }

    fn num_params(&self) -> usize {
        self.phi_fwd.num_params()
            + self.phi_bwd.num_params()
            + self.psi.num_params()
            + self.decoder.num_params()
    }
}

/// Reusable buffers for the planned inference path
/// ([`DssModel::infer_with_plan_into`] and friends).
///
/// Create once (cheap, everything starts empty), pass to every inference
/// call; buffers are sized lazily to the largest graph seen and reused
/// afterwards.  Holding one scratch per sub-domain keeps the preconditioner's
/// hot path allocation-free without any sharing between threads; batched
/// inference recycles them through a [`ScratchPool`].
#[derive(Debug, Default)]
pub struct InferScratch {
    /// Latent state `H` (`n × d`).
    h: Vec<f64>,
    /// Node-level destination term `H W_dstᵀ` (`n × d`).
    a_dst: Vec<f64>,
    /// Node-level source term `H W_srcᵀ` (`n × d`).
    a_src: Vec<f64>,
    /// Per-node sum of ReLU'd forward-message hidden activations (`n × d`).
    hsum_fwd: Vec<f64>,
    /// Per-node sum of ReLU'd backward-message hidden activations.
    hsum_bwd: Vec<f64>,
    /// Ψ pre-activation / hidden activation (`n × d`).
    psi_hidden: Vec<f64>,
    /// Ψ output (`n × d`).
    update: Vec<f64>,
    /// Decoder hidden-activation buffer (`n × d`).
    hidden: Vec<f64>,
}

impl InferScratch {
    /// Empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        InferScratch::default()
    }
}

/// Long-lived scratch pools retained by a [`DssModel`] for its batched
/// inference entry points ([`DssModel::infer_batch`] and
/// [`DssModel::infer_batch_f32`]).
///
/// The pools live behind an `Arc`, so clones of a model share them — which is
/// always safe: pooled scratch never influences results (every buffer is
/// fully overwritten per inference) and the pool caps its idle buffers at the
/// peak concurrent-borrow count.  Retaining the pools on the model lets
/// *repeated* `infer_batch` calls reuse their scratch buffers instead of
/// reallocating them per call (each call still builds throwaway per-graph
/// plans and output vectors — batch callers that also want the setup cost
/// amortised should hold prebuilt plans and use
/// [`DssModel::infer_with_plan_into`] directly, like the preconditioner
/// does).  Callers that want explicit control pass their own pool to the
/// `_with_pool` variants; [`BatchPools::clear`] releases retained buffers.
#[derive(Debug, Default)]
pub struct BatchPools {
    /// Scratch pool of the f64 engine.
    pub f64_pool: ScratchPool<InferScratch>,
    /// Scratch pool of the f32 engine.
    pub f32_pool: ScratchPool<InferScratchF32>,
}

impl BatchPools {
    /// Release every retained idle buffer in both pools.  Useful after a
    /// one-off large batch: retained buffers are sized to the largest graph
    /// they ever served and would otherwise live as long as the model (and
    /// all its clones).
    pub fn clear(&self) {
        self.f64_pool.clear();
        self.f32_pool.clear();
    }
}

/// The Deep Statistical Solver.
#[derive(Debug, Clone)]
pub struct DssModel {
    config: DssConfig,
    blocks: Vec<Block>,
    /// Retained scratch pools for batched inference (shared across clones).
    batch_pools: Arc<BatchPools>,
}

impl DssModel {
    /// Create a Xavier-initialised model.
    pub fn new(config: DssConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let blocks =
            (0..config.num_blocks).map(|_| Block::xavier(config.latent_dim, &mut rng)).collect();
        DssModel { config, blocks, batch_pools: Arc::default() }
    }

    /// The model hyper-parameters.
    pub fn config(&self) -> DssConfig {
        self.config
    }

    /// Total number of trainable weights (matches Table II of the paper).
    pub fn num_params(&self) -> usize {
        self.blocks.iter().map(|b| b.num_params()).sum()
    }

    /// A zeroed clone used as a gradient accumulator.
    pub fn zeros_like(&self) -> DssModel {
        DssModel {
            config: self.config,
            blocks: self.blocks.iter().map(Block::zeros_like).collect(),
            batch_pools: Arc::default(),
        }
    }

    /// Flatten all parameters into a single vector.
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for b in &self.blocks {
            b.phi_fwd.append_params(&mut out);
            b.phi_bwd.append_params(&mut out);
            b.psi.append_params(&mut out);
            b.decoder.append_params(&mut out);
        }
        out
    }

    /// Load parameters from a flat vector produced by [`DssModel::flatten`].
    pub fn load_flat(&mut self, data: &[f64]) {
        assert_eq!(data.len(), self.num_params(), "flat parameter length mismatch");
        let mut offset = 0;
        for b in &mut self.blocks {
            b.phi_fwd.read_params(data, &mut offset);
            b.phi_bwd.read_params(data, &mut offset);
            b.psi.read_params(data, &mut offset);
            b.decoder.read_params(data, &mut offset);
        }
    }

    /// One block forward step: returns the next latent state.
    fn block_forward(&self, block: &Block, graph: &LocalGraph, h: &[f64]) -> Vec<f64> {
        self.block_forward_with_input(block, graph, h, &graph.input)
    }

    /// One block forward step using an explicit node input `c`.
    fn block_forward_with_input(
        &self,
        block: &Block,
        graph: &LocalGraph,
        h: &[f64],
        input: &[f64],
    ) -> Vec<f64> {
        let d = self.config.latent_dim;
        let n = graph.num_nodes();
        let (msg_fwd, msg_bwd) = self.messages(block, graph, h);
        // Ψ update.
        let psi_in = build_psi_input(input, h, &msg_fwd, &msg_bwd, d);
        let update = block.psi.forward(&psi_in, n);
        let mut h_next = h.to_vec();
        for i in 0..n * d {
            h_next[i] += self.config.alpha * update[i];
        }
        h_next
    }

    /// Compute the two aggregated message fields for a block.
    ///
    /// Aggregation walks the graph's destination-sorted incidence
    /// ([`LocalGraph::edge_ptr`]), a contiguous per-node gather.  The stable
    /// sort keeps each node's edges in their original relative order, so the
    /// sums are bit-identical to the per-edge scatter this replaced.
    fn messages(&self, block: &Block, graph: &LocalGraph, h: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let d = self.config.latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        let (x_fwd, x_bwd) = build_edge_inputs(graph, h, d);
        let m_fwd = block.phi_fwd.forward(&x_fwd, e);
        let m_bwd = block.phi_bwd.forward(&x_bwd, e);
        let mut msg_fwd = vec![0.0; n * d];
        let mut msg_bwd = vec![0.0; n * d];
        gather_messages(graph, &m_fwd, d, &mut msg_fwd);
        gather_messages(graph, &m_bwd, d, &mut msg_bwd);
        (msg_fwd, msg_bwd)
    }

    /// The model's message-passing blocks (for [`InferencePlan`] builders).
    pub(crate) fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Run the full model and return the final decoded state `r̂`.
    pub fn infer(&self, graph: &LocalGraph) -> Vec<f64> {
        self.infer_with_input(graph, &graph.input)
    }

    /// Run the model using `input` as the node feature `c` instead of the
    /// graph's stored input.
    pub fn infer_with_input(&self, graph: &LocalGraph, input: &[f64]) -> Vec<f64> {
        let mut scratch = InferScratch::new();
        let mut out = vec![0.0; graph.num_nodes()];
        self.infer_with_input_into(graph, input, &mut scratch, &mut out);
        out
    }

    /// Reference forward pass: the straightforward edge-batch formulation
    /// (build `e × (2d + 3)` inputs, run the full first-layer GEMM per edge).
    ///
    /// This is the semantics the optimised plan path is tested against — the
    /// proptest suite keeps [`DssModel::infer_with_input`] within 1e-12
    /// relative error of this implementation — and it shares
    /// [`DssModel::block_forward_with_input`] with the training loss and
    /// backward pass, so gradient checks pin the same numerics.
    pub fn infer_reference(&self, graph: &LocalGraph, input: &[f64]) -> Vec<f64> {
        let n = graph.num_nodes();
        let mut h = vec![0.0; n * self.config.latent_dim];
        for block in &self.blocks {
            h = self.block_forward_with_input(block, graph, &h, input);
        }
        match self.blocks.last() {
            Some(block) => block.decoder.forward(&h, n),
            None => vec![0.0; n],
        }
    }

    /// Build the inference plan of this model for one graph (the setup half
    /// of the setup/apply split — see [`InferencePlan`]).
    pub fn build_plan(&self, graph: &LocalGraph) -> InferencePlan {
        InferencePlan::new(self, graph)
    }

    /// Build the *single-precision* inference plan of this model for one
    /// graph (see [`InferencePlanF32`]).  The splits and compositions are
    /// computed in f64 and rounded once; the forward pass then runs entirely
    /// in f32 with the residual converted on entry and the output widened
    /// back to f64.
    pub fn build_plan_f32(&self, graph: &LocalGraph) -> InferencePlanF32 {
        InferencePlanF32::new(self, graph)
    }

    /// Run the single-precision engine on a prebuilt f32 plan — the f32
    /// sibling of [`DssModel::infer_with_plan_into`].
    pub fn infer_with_plan_f32_into(
        &self,
        plan: &InferencePlanF32,
        input: &[f64],
        scratch: &mut InferScratchF32,
        out: &mut [f64],
    ) {
        self.check_plan_f32(plan);
        plan.infer_into(input, scratch, out);
    }

    /// [`DssModel::infer_with_plan_f32_into`] with a per-stage wall-clock
    /// breakdown accumulated into `timings`.
    pub fn infer_with_plan_f32_timed(
        &self,
        plan: &InferencePlanF32,
        input: &[f64],
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.check_plan_f32(plan);
        plan.infer_timed(input, scratch, out, timings);
    }

    fn check_plan_f32(&self, plan: &InferencePlanF32) {
        assert_eq!(
            plan.latent_dim, self.config.latent_dim,
            "plan built for a different latent dimension"
        );
        assert_eq!(plan.num_blocks, self.blocks.len(), "plan built for a different model depth");
    }

    /// Build the **quantised** inference plan of this model for one graph
    /// (see [`InferencePlanQ`]): int8 weights with per-output f32 scales,
    /// bf16 static edge terms and hidden sums, f32 accumulators.  The splits
    /// and compositions are computed in f64 and quantised once; the forward
    /// pass converts the residual on entry and widens the output back to f64.
    pub fn build_plan_q(&self, graph: &LocalGraph) -> InferencePlanQ {
        InferencePlanQ::new(self, graph)
    }

    /// Run the quantised engine on a prebuilt plan — the int8/bf16 sibling of
    /// [`DssModel::infer_with_plan_into`].
    pub fn infer_with_plan_q_into(
        &self,
        plan: &InferencePlanQ,
        input: &[f64],
        scratch: &mut InferScratchQ,
        out: &mut [f64],
    ) {
        self.check_plan_q(plan);
        plan.infer_into(input, scratch, out);
    }

    /// [`DssModel::infer_with_plan_q_into`] with a per-stage wall-clock
    /// breakdown accumulated into `timings`.
    pub fn infer_with_plan_q_timed(
        &self,
        plan: &InferencePlanQ,
        input: &[f64],
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.check_plan_q(plan);
        plan.infer_timed(input, scratch, out, timings);
    }

    fn check_plan_q(&self, plan: &InferencePlanQ) {
        assert_eq!(
            plan.latent_dim, self.config.latent_dim,
            "plan built for a different latent dimension"
        );
        assert_eq!(plan.num_blocks, self.blocks.len(), "plan built for a different model depth");
    }

    /// Convenience inference without a prebuilt plan: builds a throwaway
    /// [`InferencePlan`] and runs the optimised engine.  Hot callers (the
    /// DDM-GNN preconditioner, batched inference) should build the plan once
    /// via [`DssModel::build_plan`] and call
    /// [`DssModel::infer_with_plan_into`] instead, which is allocation-free
    /// in the steady state.
    pub fn infer_with_input_into(
        &self,
        graph: &LocalGraph,
        input: &[f64],
        scratch: &mut InferScratch,
        out: &mut [f64],
    ) {
        let plan = InferencePlan::new(self, graph);
        self.infer_plan_core(&plan, input, scratch, out, None);
    }

    /// The optimised inference engine: split-weight node-level GEMMs,
    /// precomputed static edge terms, contiguous message aggregation.
    ///
    /// All intermediates live in `scratch` (sized on first use, reused across
    /// calls), so the steady state performs zero heap allocation.  Only the
    /// final block's decoder runs — earlier decodes are training-time
    /// artefacts that do not influence the latent state.
    pub fn infer_with_plan_into(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        scratch: &mut InferScratch,
        out: &mut [f64],
    ) {
        self.infer_plan_core(plan, input, scratch, out, None);
    }

    /// [`DssModel::infer_with_plan_into`] with a per-stage wall-clock
    /// breakdown accumulated into `timings` (used by the perf suite).  The
    /// output is bit-identical to the untimed path.
    pub fn infer_with_plan_timed(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        scratch: &mut InferScratch,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_plan_core(plan, input, scratch, out, Some(timings));
    }

    fn infer_plan_core(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        scratch: &mut InferScratch,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.config.latent_dim;
        let n = plan.num_nodes;
        assert_eq!(plan.latent_dim, d, "plan built for a different latent dimension");
        assert_eq!(plan.num_blocks, self.blocks.len(), "plan built for a different model depth");
        assert_eq!(input.len(), n, "input length mismatch");
        assert_eq!(out.len(), n, "output length mismatch");

        let InferScratch { h, a_dst, a_src, hsum_fwd, hsum_bwd, psi_hidden, update, hidden } =
            scratch;
        h.clear();
        h.resize(n * d, 0.0);
        a_dst.resize(n * d, 0.0);
        a_src.resize(n * d, 0.0);
        hsum_fwd.resize(n * d, 0.0);
        hsum_bwd.resize(n * d, 0.0);
        psi_hidden.resize(n * d, 0.0);
        update.resize(n * d, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        for (block, pb) in self.blocks.iter().zip(plan.blocks.iter()) {
            for dir in 0..2 {
                let (w_dst, w_src, geo, hsum) = if dir == 0 {
                    (&pb.w_dst_fwd, &pb.w_src_fwd, &pb.geo_fwd, &mut *hsum_fwd)
                } else {
                    (&pb.w_dst_bwd, &pb.w_src_bwd, &pb.geo_bwd, &mut *hsum_bwd)
                };
                // Node-level GEMMs: the h-dependent halves of the split first
                // layer, `n × d` instead of `e × (2d + 3)`.
                gemm::gemm_into(h, n, d, d, w_dst, a_dst);
                gemm::gemm_into(h, n, d, d, w_src, a_src);
                tick!(node_gemm_ns);
                // Fused edge sweep: per-edge hidden pre-activation = static
                // geometric term + gathered node terms, ReLU'd and summed
                // straight into the per-node accumulator.  The second message
                // layer is linear, so it is applied once per *node* inside
                // the Ψ stage (composed into `psi_m_*`) rather than per edge
                // — no e × d intermediate exists at all.
                for j in 0..n {
                    let adj = &a_dst[j * d..(j + 1) * d];
                    let acc = &mut hsum[j * d..(j + 1) * d];
                    acc.fill(0.0);
                    for slot in plan.edge_ptr[j]..plan.edge_ptr[j + 1] {
                        let src = plan.edge_src[slot];
                        let asj = &a_src[src * d..(src + 1) * d];
                        let g = &geo[slot * d..(slot + 1) * d];
                        for k in 0..d {
                            acc[k] += (g[k] + adj[k] + asj[k]).max(0.0);
                        }
                    }
                }
                tick!(edge_gather_ns);
            }
            // Ψ update.  The pre-activation starts from the per-graph static
            // term (bias + degree-scaled message biases) plus the per-apply
            // `W_c c` term, then accumulates the three latent-dependent GEMMs
            // (the message ones pre-composed with the second message layer).
            for j in 0..n {
                let c = input[j];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * d..(j + 1) * d];
                for k in 0..d {
                    row[k] = stat[k] + pb.psi_w_c[k] * c;
                }
            }
            gemm::gemm_acc_into(h, n, d, d, &pb.psi_w_h, psi_hidden);
            gemm::gemm_acc_into(hsum_fwd, n, d, d, &pb.psi_m_fwd, psi_hidden);
            gemm::gemm_acc_into(hsum_bwd, n, d, d, &pb.psi_m_bwd, psi_hidden);
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            block.psi.l2.forward_into(psi_hidden, n, update);
            for i in 0..n * d {
                h[i] += self.config.alpha * update[i];
            }
            tick!(psi_update_ns);
        }
        match self.blocks.last() {
            Some(block) => block.decoder.forward_into(h, n, hidden, out),
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }

    /// Batched planned inference: run the f64 engine on `b` right-hand sides
    /// at once.  `input` and `out` are **column-interleaved `n × b` panels**
    /// (`input[j*b + c]` is column `c`'s value at node `j`).  Every plan
    /// stream — weights, static geo terms, Ψ statics — is read once per batch
    /// instead of once per right-hand side, which is where the bandwidth
    /// amortisation comes from; column `c` of the output is **bit-identical**
    /// to [`DssModel::infer_with_plan_into`] run on that column alone, for
    /// every batch width.
    pub fn infer_with_plan_batched_into(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratch,
        out: &mut [f64],
    ) {
        self.infer_plan_core_b(plan, input, b, scratch, out, None);
    }

    /// [`DssModel::infer_with_plan_batched_into`] with a per-stage wall-clock
    /// breakdown accumulated into `timings`.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_with_plan_batched_timed(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratch,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_plan_core_b(plan, input, b, scratch, out, Some(timings));
    }

    /// Batched single-precision planned inference over a column-interleaved
    /// `n × b` panel — the f32 sibling of
    /// [`DssModel::infer_with_plan_batched_into`].
    pub fn infer_with_plan_f32_batched_into(
        &self,
        plan: &InferencePlanF32,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchF32,
        out: &mut [f64],
    ) {
        self.check_plan_f32(plan);
        plan.infer_into_b(input, b, scratch, out);
    }

    /// [`DssModel::infer_with_plan_f32_batched_into`] with a per-stage
    /// wall-clock breakdown accumulated into `timings`.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_with_plan_f32_batched_timed(
        &self,
        plan: &InferencePlanF32,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.check_plan_f32(plan);
        plan.infer_timed_b(input, b, scratch, out, timings);
    }

    /// Batched quantised planned inference over a column-interleaved `n × b`
    /// panel — the int8/bf16 sibling of
    /// [`DssModel::infer_with_plan_batched_into`].
    pub fn infer_with_plan_q_batched_into(
        &self,
        plan: &InferencePlanQ,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchQ,
        out: &mut [f64],
    ) {
        self.check_plan_q(plan);
        plan.infer_into_b(input, b, scratch, out);
    }

    /// [`DssModel::infer_with_plan_q_batched_into`] with a per-stage
    /// wall-clock breakdown accumulated into `timings`.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_with_plan_q_batched_timed(
        &self,
        plan: &InferencePlanQ,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.check_plan_q(plan);
        plan.infer_timed_b(input, b, scratch, out, timings);
    }

    fn infer_plan_core_b(
        &self,
        plan: &InferencePlan,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratch,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.config.latent_dim;
        let n = plan.num_nodes;
        assert_eq!(plan.latent_dim, d, "plan built for a different latent dimension");
        assert_eq!(plan.num_blocks, self.blocks.len(), "plan built for a different model depth");
        assert_eq!(input.len(), n * b, "input panel length mismatch");
        assert_eq!(out.len(), n * b, "output panel length mismatch");

        let InferScratch { h, a_dst, a_src, hsum_fwd, hsum_bwd, psi_hidden, update, hidden } =
            scratch;
        h.clear();
        h.resize(n * d * b, 0.0);
        a_dst.resize(n * d * b, 0.0);
        a_src.resize(n * d * b, 0.0);
        hsum_fwd.resize(n * d * b, 0.0);
        hsum_bwd.resize(n * d * b, 0.0);
        psi_hidden.resize(n * d * b, 0.0);
        update.resize(n * d * b, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        let db = d * b;
        for (block, pb) in self.blocks.iter().zip(plan.blocks.iter()) {
            for dir in 0..2 {
                let (w_dst, w_src, geo, hsum) = if dir == 0 {
                    (&pb.w_dst_fwd, &pb.w_src_fwd, &pb.geo_fwd, &mut *hsum_fwd)
                } else {
                    (&pb.w_dst_bwd, &pb.w_src_bwd, &pb.geo_bwd, &mut *hsum_bwd)
                };
                gemm::gemm_into_b(h, n, d, d, b, w_dst, a_dst);
                gemm::gemm_into_b(h, n, d, d, b, w_src, a_src);
                tick!(node_gemm_ns);
                // Fused edge sweep: the static geometric term is loaded once
                // per edge and broadcast over the b columns; each column's
                // accumulation order matches the unbatched sweep exactly.
                for j in 0..n {
                    let adj = &a_dst[j * db..(j + 1) * db];
                    let acc = &mut hsum[j * db..(j + 1) * db];
                    acc.fill(0.0);
                    for slot in plan.edge_ptr[j]..plan.edge_ptr[j + 1] {
                        let src = plan.edge_src[slot];
                        let asj = &a_src[src * db..(src + 1) * db];
                        let g = &geo[slot * d..(slot + 1) * d];
                        for (k, &gk) in g.iter().enumerate() {
                            let ak = &mut acc[k * b..(k + 1) * b];
                            let adjk = &adj[k * b..(k + 1) * b];
                            let asjk = &asj[k * b..(k + 1) * b];
                            for c in 0..b {
                                ak[c] += (gk + adjk[c] + asjk[c]).max(0.0);
                            }
                        }
                    }
                }
                tick!(edge_gather_ns);
            }
            for j in 0..n {
                let cin = &input[j * b..(j + 1) * b];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * db..(j + 1) * db];
                for k in 0..d {
                    let s = stat[k];
                    let wc = pb.psi_w_c[k];
                    let rk = &mut row[k * b..(k + 1) * b];
                    for c in 0..b {
                        rk[c] = s + wc * cin[c];
                    }
                }
            }
            gemm::gemm_acc_into_b(h, n, d, d, b, &pb.psi_w_h, psi_hidden);
            gemm::gemm_acc_into_b(hsum_fwd, n, d, d, b, &pb.psi_m_fwd, psi_hidden);
            gemm::gemm_acc_into_b(hsum_bwd, n, d, d, b, &pb.psi_m_bwd, psi_hidden);
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            block.psi.l2.forward_into_b(psi_hidden, n, b, update);
            for i in 0..n * d * b {
                h[i] += self.config.alpha * update[i];
            }
            tick!(psi_update_ns);
        }
        match self.blocks.last() {
            Some(block) => block.decoder.forward_into_b(h, n, b, hidden, out),
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }

    /// Run the model on a batch of graphs in parallel (the CPU analogue of the
    /// paper's batched GPU inference of Eq. 14), recycling inference scratch
    /// through the model's retained [`BatchPools`] — repeated calls reuse the
    /// same buffers instead of re-allocating a pool per call.
    pub fn infer_batch(&self, graphs: &[LocalGraph]) -> Vec<Vec<f64>> {
        self.infer_batch_with_pool(graphs, &self.batch_pools.f64_pool)
    }

    /// The scratch pools retained for batched inference (shared by clones of
    /// this model; exposed so callers and tests can observe buffer reuse).
    pub fn batch_pools(&self) -> &BatchPools {
        &self.batch_pools
    }

    /// Batched inference with a caller-owned scratch pool: buffers are reused
    /// across batch items and across calls, so a long-lived pool keeps the
    /// intermediate allocations of repeated batches at zero.  Results are
    /// identical to per-graph [`DssModel::infer`] regardless of pool state or
    /// thread count.
    pub fn infer_batch_with_pool(
        &self,
        graphs: &[LocalGraph],
        pool: &ScratchPool<InferScratch>,
    ) -> Vec<Vec<f64>> {
        graphs
            .par_iter()
            .map(|g| {
                let plan = InferencePlan::new(self, g);
                let mut scratch = pool.acquire();
                let mut out = vec![0.0; g.num_nodes()];
                self.infer_plan_core(&plan, &g.input, &mut scratch, &mut out, None);
                pool.release(scratch);
                out
            })
            .collect()
    }

    /// Batched inference through the **f32 engine**, recycling
    /// [`InferScratchF32`] buffers through the model's retained pool the same
    /// way [`DssModel::infer_batch`] recycles the f64 scratch.
    pub fn infer_batch_f32(&self, graphs: &[LocalGraph]) -> Vec<Vec<f64>> {
        self.infer_batch_f32_with_pool(graphs, &self.batch_pools.f32_pool)
    }

    /// [`DssModel::infer_batch_f32`] with a caller-owned scratch pool.
    pub fn infer_batch_f32_with_pool(
        &self,
        graphs: &[LocalGraph],
        pool: &ScratchPool<InferScratchF32>,
    ) -> Vec<Vec<f64>> {
        graphs
            .par_iter()
            .map(|g| {
                let plan = InferencePlanF32::new(self, g);
                let mut scratch = pool.acquire();
                let mut out = vec![0.0; g.num_nodes()];
                plan.infer_into(&g.input, &mut scratch, &mut out);
                pool.release(scratch);
                out
            })
            .collect()
    }

    /// Total training loss (sum of per-block residual losses, Eq. 23).
    pub fn loss(&self, graph: &LocalGraph) -> f64 {
        let n = graph.num_nodes();
        let d = self.config.latent_dim;
        let mut h = vec![0.0; n * d];
        let mut total = 0.0;
        for block in &self.blocks {
            h = self.block_forward(block, graph, &h);
            let decoded = block.decoder.forward(&h, n);
            total += crate::loss::residual_loss(&graph.matrix, &graph.input, &decoded);
        }
        total
    }

    /// The residual loss of the *final* decoded state only (the metric the
    /// paper reports in Table II).
    pub fn final_residual_loss(&self, graph: &LocalGraph) -> f64 {
        let out = self.infer(graph);
        crate::loss::residual_loss(&graph.matrix, &graph.input, &out)
    }

    /// Forward + backward pass on one graph.  Accumulates parameter gradients
    /// into `grad` (which must have the same shape) and returns the total
    /// training loss of this graph.
    pub fn backward(&self, graph: &LocalGraph, grad: &mut DssModel) -> f64 {
        assert_eq!(grad.config, self.config, "gradient container shape mismatch");
        let d = self.config.latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        let kbar = self.config.num_blocks;

        // Forward pass, storing every latent state (h^0 .. h^kbar).
        let mut states: Vec<Vec<f64>> = Vec::with_capacity(kbar + 1);
        states.push(vec![0.0; n * d]);
        for block in &self.blocks {
            let next = self.block_forward(block, graph, states.last().unwrap());
            states.push(next);
        }

        // Total loss (recomputed per block during the backward sweep).
        let mut total_loss = 0.0;

        // Backward sweep.
        let mut grad_h_next = vec![0.0; n * d]; // dL/dh^{k+1}
        for k in (0..kbar).rev() {
            let block = &self.blocks[k];
            let gblock = &mut grad.blocks[k];
            let h = &states[k];
            let h_next = &states[k + 1];

            // Decoder path of this block: loss on the decoded state of h^{k+1}.
            let (decoded, dec_cache) = block.decoder.forward_cached(h_next, n);
            let (lk, dldr) = residual_loss_and_grad(&graph.matrix, &graph.input, &decoded);
            total_loss += lk;
            let d_dec_in =
                block.decoder.backward(h_next, &dec_cache, &dldr, n, &mut gblock.decoder);
            for i in 0..n * d {
                grad_h_next[i] += d_dec_in[i];
            }

            // Recompute the block's internals for backprop.
            let (x_fwd, x_bwd) = build_edge_inputs(graph, h, d);
            let (m_fwd, fwd_cache) = block.phi_fwd.forward_cached(&x_fwd, e);
            let (m_bwd, bwd_cache) = block.phi_bwd.forward_cached(&x_bwd, e);
            let mut msg_fwd = vec![0.0; n * d];
            let mut msg_bwd = vec![0.0; n * d];
            gather_messages(graph, &m_fwd, d, &mut msg_fwd);
            gather_messages(graph, &m_bwd, d, &mut msg_bwd);
            let psi_in = build_psi_input(&graph.input, h, &msg_fwd, &msg_bwd, d);
            let (_update, psi_cache) = block.psi.forward_cached(&psi_in, n);

            // h^{k+1} = h^k + α Ψ(psi_in): gradient through Ψ.
            let d_psi_out: Vec<f64> = grad_h_next.iter().map(|&g| g * self.config.alpha).collect();
            let d_psi_in = block.psi.backward(&psi_in, &psi_cache, &d_psi_out, n, &mut gblock.psi);

            // Gradient with respect to h^k: identity path + Ψ's h input.
            let psi_cols = 3 * d + 1;
            let mut grad_h = grad_h_next.clone();
            for j in 0..n {
                for kk in 0..d {
                    grad_h[j * d + kk] += d_psi_in[j * psi_cols + kk];
                }
            }
            // Gradients with respect to the message sums.
            let mut d_msg_fwd = vec![0.0; n * d];
            let mut d_msg_bwd = vec![0.0; n * d];
            for j in 0..n {
                for kk in 0..d {
                    d_msg_fwd[j * d + kk] = d_psi_in[j * psi_cols + d + 1 + kk];
                    d_msg_bwd[j * d + kk] = d_psi_in[j * psi_cols + 2 * d + 1 + kk];
                }
            }

            // Scatter message gradients back to the edges and through the
            // message MLPs.
            let mut d_m_fwd = vec![0.0; e * d];
            let mut d_m_bwd = vec![0.0; e * d];
            for (ei, edge) in graph.edges.iter().enumerate() {
                for kk in 0..d {
                    d_m_fwd[ei * d + kk] = d_msg_fwd[edge.dst * d + kk];
                    d_m_bwd[ei * d + kk] = d_msg_bwd[edge.dst * d + kk];
                }
            }
            let d_x_fwd =
                block.phi_fwd.backward(&x_fwd, &fwd_cache, &d_m_fwd, e, &mut gblock.phi_fwd);
            let d_x_bwd =
                block.phi_bwd.backward(&x_bwd, &bwd_cache, &d_m_bwd, e, &mut gblock.phi_bwd);
            let edge_cols = 2 * d + 3;
            for (ei, edge) in graph.edges.iter().enumerate() {
                for kk in 0..d {
                    // x = [h_dst, h_src, delta, dist]
                    grad_h[edge.dst * d + kk] += d_x_fwd[ei * edge_cols + kk];
                    grad_h[edge.src * d + kk] += d_x_fwd[ei * edge_cols + d + kk];
                    grad_h[edge.dst * d + kk] += d_x_bwd[ei * edge_cols + kk];
                    grad_h[edge.src * d + kk] += d_x_bwd[ei * edge_cols + d + kk];
                }
            }

            grad_h_next = grad_h;
        }

        total_loss
    }

    /// Add `other`'s parameters (scaled by `alpha`) into `self`.  Used to
    /// accumulate gradients across a mini-batch.
    pub fn add_scaled(&mut self, alpha: f64, other: &DssModel) {
        let mut mine = self.flatten();
        let theirs = other.flatten();
        for (m, t) in mine.iter_mut().zip(theirs.iter()) {
            *m += alpha * t;
        }
        self.load_flat(&mine);
    }
}

/// Aggregate per-edge messages (indexed in original edge order) into per-node
/// sums along the destination-sorted incidence.  Stable sorting preserves
/// each node's relative edge order, so the result is bit-identical to the
/// per-edge scatter while the output is written node-contiguously.
fn gather_messages(graph: &LocalGraph, m: &[f64], d: usize, msg: &mut [f64]) {
    debug_assert_eq!(m.len(), graph.num_edges() * d);
    debug_assert_eq!(msg.len(), graph.num_nodes() * d);
    for j in 0..graph.num_nodes() {
        let dst_row = &mut msg[j * d..(j + 1) * d];
        for &ei in &graph.edge_order[graph.edge_ptr[j]..graph.edge_ptr[j + 1]] {
            let row = &m[ei * d..(ei + 1) * d];
            for k in 0..d {
                dst_row[k] += row[k];
            }
        }
    }
}

/// Build the per-edge input batches for the two message MLPs.
fn build_edge_inputs(graph: &LocalGraph, h: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let e = graph.num_edges();
    let cols = 2 * d + 3;
    let mut x_fwd = vec![0.0; e * cols];
    let mut x_bwd = vec![0.0; e * cols];
    build_edge_inputs_into(graph, h, d, &mut x_fwd, &mut x_bwd);
    (x_fwd, x_bwd)
}

/// Write the per-edge input batches into preallocated buffers (every slot is
/// overwritten, so the buffers need no clearing).
fn build_edge_inputs_into(
    graph: &LocalGraph,
    h: &[f64],
    d: usize,
    x_fwd: &mut [f64],
    x_bwd: &mut [f64],
) {
    let cols = 2 * d + 3;
    debug_assert_eq!(x_fwd.len(), graph.num_edges() * cols);
    debug_assert_eq!(x_bwd.len(), graph.num_edges() * cols);
    for (ei, edge) in graph.edges.iter().enumerate() {
        let row_f = &mut x_fwd[ei * cols..(ei + 1) * cols];
        for k in 0..d {
            row_f[k] = h[edge.dst * d + k];
            row_f[d + k] = h[edge.src * d + k];
        }
        row_f[2 * d] = edge.delta[0];
        row_f[2 * d + 1] = edge.delta[1];
        row_f[2 * d + 2] = edge.dist;
        let row_b = &mut x_bwd[ei * cols..(ei + 1) * cols];
        for k in 0..d {
            row_b[k] = h[edge.dst * d + k];
            row_b[d + k] = h[edge.src * d + k];
        }
        row_b[2 * d] = -edge.delta[0];
        row_b[2 * d + 1] = -edge.delta[1];
        row_b[2 * d + 2] = edge.dist;
    }
}

/// Build the per-node input batch for the Ψ update MLP.
fn build_psi_input(
    input: &[f64],
    h: &[f64],
    msg_fwd: &[f64],
    msg_bwd: &[f64],
    d: usize,
) -> Vec<f64> {
    let n = input.len();
    let cols = 3 * d + 1;
    let mut x = vec![0.0; n * cols];
    build_psi_input_into(input, h, msg_fwd, msg_bwd, d, &mut x);
    x
}

/// Write the Ψ input batch into a preallocated buffer (fully overwritten).
fn build_psi_input_into(
    input: &[f64],
    h: &[f64],
    msg_fwd: &[f64],
    msg_bwd: &[f64],
    d: usize,
    x: &mut [f64],
) {
    let n = input.len();
    let cols = 3 * d + 1;
    debug_assert_eq!(x.len(), n * cols);
    for j in 0..n {
        let row = &mut x[j * cols..(j + 1) * cols];
        for k in 0..d {
            row[k] = h[j * d + k];
            row[d + 1 + k] = msg_fwd[j * d + k];
            row[2 * d + 1 + k] = msg_bwd[j * d + k];
        }
        row[d] = input[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshgen::Point2;
    use sparse::CooMatrix;

    /// A tiny local graph (5-node chain) for gradient checking.
    fn tiny_graph() -> LocalGraph {
        let n = 5;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let positions: Vec<Point2> =
            (0..n).map(|i| Point2::new(i as f64 * 0.5, (i as f64 * 0.3).sin())).collect();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.7 - 1.5).collect();
        let mut boundary = vec![false; n];
        boundary[0] = true;
        boundary[n - 1] = true;
        LocalGraph::new(coo.to_csr(), positions, &rhs, boundary)
    }

    #[test]
    fn weight_counts_match_paper_table_ii() {
        // (k̄, d) → number of weights reported by the paper.
        let expected = [
            (5, 5, 1755),
            (5, 10, 6255),
            (5, 20, 23505),
            (10, 5, 3510),
            (10, 10, 12510),
            (10, 20, 47010),
            (20, 5, 7020),
            (20, 10, 25020),
            (20, 20, 94020),
            (30, 10, 37530),
        ];
        for (kbar, d, weights) in expected {
            let model = DssModel::new(DssConfig::new(kbar, d), 0);
            assert_eq!(model.num_params(), weights, "weight count mismatch for k̄={kbar}, d={d}");
        }
    }

    #[test]
    fn inference_shape_and_determinism() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig::new(3, 4), 7);
        let out1 = model.infer(&graph);
        let out2 = model.infer(&graph);
        assert_eq!(out1.len(), graph.num_nodes());
        assert_eq!(out1, out2);
        // Different seeds give different outputs.
        let other = DssModel::new(DssConfig::new(3, 4), 8);
        assert_ne!(out1, other.infer(&graph));
    }

    #[test]
    fn flatten_roundtrip_preserves_behaviour() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig::new(2, 3), 3);
        let flat = model.flatten();
        assert_eq!(flat.len(), model.num_params());
        let mut copy = DssModel::new(DssConfig::new(2, 3), 99);
        copy.load_flat(&flat);
        assert_eq!(model.infer(&graph), copy.infer(&graph));
    }

    #[test]
    fn backward_gradient_matches_finite_differences() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 0.05 }, 11);
        let mut grad = model.zeros_like();
        let loss = model.backward(&graph, &mut grad);
        assert!(loss > 0.0);
        // Loss from backward matches loss() exactly.
        assert!((loss - model.loss(&graph)).abs() < 1e-12);

        let params = model.flatten();
        let analytic = grad.flatten();
        let eps = 1e-6;
        // Spot-check a spread of parameters (checking all ~600 would be slow).
        let num = params.len();
        let indices: Vec<usize> = (0..24).map(|i| i * num / 24).collect();
        for &i in &indices {
            let mut plus = params.clone();
            plus[i] += eps;
            let mut minus = params.clone();
            minus[i] -= eps;
            let mut mp = model.clone();
            mp.load_flat(&plus);
            let mut mm = model.clone();
            mm.load_flat(&minus);
            let numeric = (mp.loss(&graph) - mm.loss(&graph)) / (2.0 * eps);
            let diff = (numeric - analytic[i]).abs();
            let scale = numeric.abs().max(analytic[i].abs()).max(1e-3);
            assert!(
                diff / scale < 1e-3,
                "param {i}: numeric {numeric:e} vs analytic {:e}",
                analytic[i]
            );
        }
    }

    #[test]
    fn batched_inference_matches_sequential() {
        let graphs: Vec<LocalGraph> = (0..4).map(|_| tiny_graph()).collect();
        let model = DssModel::new(DssConfig::new(3, 4), 5);
        let batched = model.infer_batch(&graphs);
        for (g, out) in graphs.iter().zip(batched.iter()) {
            assert_eq!(out, &model.infer(g));
        }
    }

    #[test]
    fn gradient_step_decreases_loss() {
        // A small explicit gradient-descent step on one graph must reduce the
        // training loss — an end-to-end sanity check of the backward pass.
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 4, alpha: 0.05 }, 21);
        let mut grad = model.zeros_like();
        let loss0 = model.backward(&graph, &mut grad);
        let params = model.flatten();
        let g = grad.flatten();
        let gnorm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        let step = 1e-2 / gnorm.max(1e-12);
        let updated: Vec<f64> = params.iter().zip(g.iter()).map(|(p, gi)| p - step * gi).collect();
        let mut better = model.clone();
        better.load_flat(&updated);
        let loss1 = better.loss(&graph);
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
    }

    #[test]
    fn final_residual_loss_uses_last_decode() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig::new(2, 3), 1);
        let out = model.infer(&graph);
        let manual = crate::loss::residual_loss(&graph.matrix, &graph.input, &out);
        assert!((model.final_residual_loss(&graph) - manual).abs() < 1e-15);
    }

    #[test]
    fn infer_with_input_matches_stored_input_and_reacts_to_changes() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 8, alpha: 1e-2 }, 7);
        let stored = model.infer(&graph);
        assert!(
            stored.iter().any(|&v| v != 0.0),
            "untrained output should not be identically zero"
        );
        let same = model.infer_with_input(&graph, &graph.input.clone());
        assert_eq!(stored, same);
        let different_input: Vec<f64> = graph.input.iter().map(|c| c * -0.5 + 0.1).collect();
        let different = model.infer_with_input(&graph, &different_input);
        assert_ne!(stored, different);
    }

    #[test]
    fn infer_into_matches_infer_bit_for_bit_with_scratch_reuse() {
        let model = DssModel::new(DssConfig { num_blocks: 4, latent_dim: 6, alpha: 1e-2 }, 13);
        let mut scratch = InferScratch::new();
        // Same scratch across repeated calls and different inputs.
        let graph = tiny_graph();
        let mut out = vec![0.0; graph.num_nodes()];
        for scale in [1.0, -0.5, 0.25] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.1).collect();
            let expected = model.infer_with_input(&graph, &input);
            model.infer_with_input_into(&graph, &input, &mut scratch, &mut out);
            assert_eq!(out, expected, "scale {scale}");
        }
    }

    #[test]
    fn planned_inference_matches_reference_closely() {
        // The plan path reassociates the first-layer sums, so it is not
        // bit-identical to the reference — but it must stay within a few ulps
        // (the proptest suite enforces 1e-12 relative on random graphs too).
        let graph = tiny_graph();
        for seed in [7u64, 8, 9] {
            let model =
                DssModel::new(DssConfig { num_blocks: 4, latent_dim: 6, alpha: 1e-2 }, seed);
            let reference = model.infer_reference(&graph, &graph.input);
            let optimised = model.infer(&graph);
            let ref_norm = reference.iter().map(|v| v * v).sum::<f64>().sqrt();
            for (a, b) in optimised.iter().zip(reference.iter()) {
                assert!(
                    (a - b).abs() <= 1e-12 * ref_norm.max(1.0),
                    "seed {seed}: optimised {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn prebuilt_plan_matches_throwaway_plan_bit_for_bit() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 5, alpha: 1e-2 }, 17);
        let plan = model.build_plan(&graph);
        assert_eq!(plan.num_nodes(), graph.num_nodes());
        assert_eq!(plan.num_edges(), graph.num_edges());
        assert!(plan.memory_bytes() > 0);
        let mut scratch = InferScratch::new();
        let mut out = vec![0.0; graph.num_nodes()];
        for scale in [1.0, -0.3, 0.8] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.05).collect();
            model.infer_with_plan_into(&plan, &input, &mut scratch, &mut out);
            let expected = model.infer_with_input(&graph, &input);
            assert_eq!(out, expected, "scale {scale}");
        }
    }

    #[test]
    fn f32_plan_tracks_f64_plan_closely_and_is_deterministic() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 4, latent_dim: 6, alpha: 1e-2 }, 17);
        let plan64 = model.build_plan(&graph);
        let plan32 = model.build_plan_f32(&graph);
        assert_eq!(plan32.num_nodes(), graph.num_nodes());
        assert_eq!(plan32.num_edges(), graph.num_edges());
        assert!(plan32.memory_bytes() > 0);
        assert!(
            plan32.memory_bytes() < plan64.memory_bytes(),
            "f32 plan must be smaller than the f64 plan"
        );
        let mut s64 = InferScratch::new();
        let mut s32 = crate::plan::InferScratchF32::new();
        let mut out64 = vec![0.0; graph.num_nodes()];
        let mut out32 = vec![0.0; graph.num_nodes()];
        let mut out32_again = vec![0.0; graph.num_nodes()];
        for scale in [1.0, -0.4, 0.7] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.05).collect();
            model.infer_with_plan_into(&plan64, &input, &mut s64, &mut out64);
            model.infer_with_plan_f32_into(&plan32, &input, &mut s32, &mut out32);
            model.infer_with_plan_f32_into(&plan32, &input, &mut s32, &mut out32_again);
            assert_eq!(out32, out32_again, "f32 inference must be deterministic");
            let norm = out64.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
            for (a, b) in out32.iter().zip(out64.iter()) {
                assert!((a - b).abs() <= 1e-4 * norm, "scale {scale}: f32 {a} vs f64 {b}");
            }
        }
    }

    #[test]
    fn f32_timed_inference_is_identical_and_counts_calls() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 5, alpha: 1e-2 }, 29);
        let plan = model.build_plan_f32(&graph);
        let mut scratch = crate::plan::InferScratchF32::new();
        let mut out = vec![0.0; graph.num_nodes()];
        let mut timed_out = vec![0.0; graph.num_nodes()];
        let mut timings = crate::plan::InferenceTimings::default();
        model.infer_with_plan_f32_into(&plan, &graph.input, &mut scratch, &mut out);
        model.infer_with_plan_f32_timed(
            &plan,
            &graph.input,
            &mut scratch,
            &mut timed_out,
            &mut timings,
        );
        assert_eq!(out, timed_out);
        assert_eq!(timings.calls, 1);
    }

    #[test]
    fn timed_inference_is_bit_identical_and_counts_calls() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 4, alpha: 1e-2 }, 23);
        let plan = model.build_plan(&graph);
        let mut scratch = InferScratch::new();
        let mut out = vec![0.0; graph.num_nodes()];
        let mut timed_out = vec![0.0; graph.num_nodes()];
        let mut timings = crate::plan::InferenceTimings::default();
        model.infer_with_plan_into(&plan, &graph.input, &mut scratch, &mut out);
        model.infer_with_plan_timed(
            &plan,
            &graph.input,
            &mut scratch,
            &mut timed_out,
            &mut timings,
        );
        assert_eq!(out, timed_out);
        assert_eq!(timings.calls, 1);
        let mut merged = timings;
        merged.merge(&timings);
        assert_eq!(merged.calls, 2);
        assert_eq!(merged.total_ns(), 2 * timings.total_ns());
        assert_eq!(timings.stages().len(), 4);
    }

    #[test]
    fn batched_plan_inference_is_bit_identical_per_column() {
        // Column c of an n×b batched apply must match the unbatched apply of
        // that column alone bit-for-bit, for every engine and batch width.
        let graph = tiny_graph();
        let n = graph.num_nodes();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 5, alpha: 1e-2 }, 41);
        let plan64 = model.build_plan(&graph);
        let plan32 = model.build_plan_f32(&graph);
        let planq = model.build_plan_q(&graph);
        let mut s64 = InferScratch::new();
        let mut s32 = crate::plan::InferScratchF32::new();
        let mut sq = crate::plan::InferScratchQ::new();
        for b in [1usize, 2, 3, 5, 8] {
            // Column-interleaved panel with b distinct inputs.
            let mut panel = vec![0.0; n * b];
            let mut columns = Vec::new();
            for c in 0..b {
                let scale = 1.0 - 0.37 * c as f64;
                let col: Vec<f64> =
                    graph.input.iter().map(|v| v * scale + 0.03 * c as f64).collect();
                for j in 0..n {
                    panel[j * b + c] = col[j];
                }
                columns.push(col);
            }
            let mut out_panel = vec![0.0; n * b];
            let mut timed_panel = vec![0.0; n * b];
            let mut expected = vec![0.0; n];
            let mut timings = crate::plan::InferenceTimings::default();

            model.infer_with_plan_batched_into(&plan64, &panel, b, &mut s64, &mut out_panel);
            model.infer_with_plan_batched_timed(
                &plan64,
                &panel,
                b,
                &mut s64,
                &mut timed_panel,
                &mut timings,
            );
            assert_eq!(out_panel, timed_panel, "b={b}: timed f64 batched path diverged");
            assert_eq!(timings.calls, 1);
            for (c, col) in columns.iter().enumerate() {
                model.infer_with_plan_into(&plan64, col, &mut s64, &mut expected);
                for j in 0..n {
                    assert_eq!(
                        out_panel[j * b + c].to_bits(),
                        expected[j].to_bits(),
                        "b={b} c={c} j={j}: f64 batched column diverged"
                    );
                }
            }

            model.infer_with_plan_f32_batched_into(&plan32, &panel, b, &mut s32, &mut out_panel);
            for (c, col) in columns.iter().enumerate() {
                model.infer_with_plan_f32_into(&plan32, col, &mut s32, &mut expected);
                for j in 0..n {
                    assert_eq!(
                        out_panel[j * b + c].to_bits(),
                        expected[j].to_bits(),
                        "b={b} c={c} j={j}: f32 batched column diverged"
                    );
                }
            }

            model.infer_with_plan_q_batched_into(&planq, &panel, b, &mut sq, &mut out_panel);
            for (c, col) in columns.iter().enumerate() {
                model.infer_with_plan_q_into(&planq, col, &mut sq, &mut expected);
                for j in 0..n {
                    assert_eq!(
                        out_panel[j * b + c].to_bits(),
                        expected[j].to_bits(),
                        "b={b} c={c} j={j}: int8 batched column diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn quantised_plan_tracks_f64_plan_closely_and_is_deterministic() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 4, latent_dim: 6, alpha: 1e-2 }, 17);
        let plan64 = model.build_plan(&graph);
        let plan32 = model.build_plan_f32(&graph);
        let planq = model.build_plan_q(&graph);
        assert_eq!(planq.num_nodes(), graph.num_nodes());
        assert_eq!(planq.num_edges(), graph.num_edges());
        assert!(planq.memory_bytes() > 0);
        assert!(
            planq.memory_bytes() < plan32.memory_bytes(),
            "quantised plan must be smaller than the f32 plan: {} vs {}",
            planq.memory_bytes(),
            plan32.memory_bytes()
        );
        let mut s64 = InferScratch::new();
        let mut sq = crate::plan::InferScratchQ::new();
        let mut out64 = vec![0.0; graph.num_nodes()];
        let mut outq = vec![0.0; graph.num_nodes()];
        let mut outq_again = vec![0.0; graph.num_nodes()];
        for scale in [1.0, -0.4, 0.7] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.05).collect();
            model.infer_with_plan_into(&plan64, &input, &mut s64, &mut out64);
            model.infer_with_plan_q_into(&planq, &input, &mut sq, &mut outq);
            model.infer_with_plan_q_into(&planq, &input, &mut sq, &mut outq_again);
            assert_eq!(outq, outq_again, "quantised inference must be deterministic");
            let norm = out64.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
            for (a, b) in outq.iter().zip(out64.iter()) {
                assert!((a - b).abs() <= 1e-2 * norm, "scale {scale}: int8 {a} vs f64 {b}");
            }
        }
    }

    #[test]
    fn quantised_timed_inference_is_identical_and_counts_calls() {
        let graph = tiny_graph();
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 5, alpha: 1e-2 }, 29);
        let plan = model.build_plan_q(&graph);
        let mut scratch = crate::plan::InferScratchQ::new();
        let mut out = vec![0.0; graph.num_nodes()];
        let mut timed_out = vec![0.0; graph.num_nodes()];
        let mut timings = crate::plan::InferenceTimings::default();
        model.infer_with_plan_q_into(&plan, &graph.input, &mut scratch, &mut out);
        model.infer_with_plan_q_timed(
            &plan,
            &graph.input,
            &mut scratch,
            &mut timed_out,
            &mut timings,
        );
        assert_eq!(out, timed_out);
        assert_eq!(timings.calls, 1);
    }

    #[test]
    fn infer_batch_recycles_the_retained_pool_across_calls() {
        // The bug this pins down: `infer_batch` used to construct a fresh
        // `ScratchPool` per call, so no buffer ever survived between calls.
        let graphs: Vec<LocalGraph> = (0..5).map(|_| tiny_graph()).collect();
        let model = DssModel::new(DssConfig::new(3, 4), 5);
        assert_eq!(model.batch_pools().f64_pool.idle(), 0);
        let first = model.infer_batch(&graphs);
        let idle = model.batch_pools().f64_pool.idle();
        assert!(idle >= 1, "the retained pool must keep released buffers");
        let second = model.infer_batch(&graphs);
        // Idle buffers persist across calls; later calls may add a few when
        // the scheduler reaches a higher concurrent-borrow peak, but never
        // more than one per batch item (the concurrency ceiling here).
        let idle_after = model.batch_pools().f64_pool.idle();
        assert!(
            (idle..=graphs.len()).contains(&idle_after),
            "buffers must be recycled, not rebuilt from scratch: {idle} -> {idle_after}"
        );
        assert_eq!(first, second);
        // Clones share the pools, so a clone's batches reuse the same buffers.
        let clone = model.clone();
        clone.infer_batch(&graphs);
        assert!(clone.batch_pools().f64_pool.idle() >= idle);
        // Releasing the retained buffers is the caller's explicit choice.
        model.batch_pools().clear();
        assert_eq!(model.batch_pools().f64_pool.idle(), 0);
        assert_eq!(clone.batch_pools().f64_pool.idle(), 0, "clones share the cleared pools");
    }

    #[test]
    fn infer_batch_f32_matches_per_graph_f32_plan_and_recycles() {
        let graphs: Vec<LocalGraph> = (0..4).map(|_| tiny_graph()).collect();
        let model = DssModel::new(DssConfig::new(3, 4), 5);
        let batched = model.infer_batch_f32(&graphs);
        let idle = model.batch_pools().f32_pool.idle();
        assert!(idle >= 1);
        for (g, out) in graphs.iter().zip(batched.iter()) {
            let plan = model.build_plan_f32(g);
            let mut scratch = crate::plan::InferScratchF32::new();
            let mut expected = vec![0.0; g.num_nodes()];
            model.infer_with_plan_f32_into(&plan, &g.input, &mut scratch, &mut expected);
            assert_eq!(out, &expected);
        }
        let again = model.infer_batch_f32(&graphs);
        let idle_after = model.batch_pools().f32_pool.idle();
        assert!(
            (idle..=graphs.len()).contains(&idle_after),
            "f32 buffers must be recycled: {idle} -> {idle_after}"
        );
        assert_eq!(batched, again);
    }

    #[test]
    fn batch_pool_is_reused_and_does_not_change_results() {
        let graphs: Vec<LocalGraph> = (0..6).map(|_| tiny_graph()).collect();
        let model = DssModel::new(DssConfig::new(3, 4), 5);
        let pool = crate::plan::ScratchPool::new();
        let first = model.infer_batch_with_pool(&graphs, &pool);
        let idle_after_first = pool.idle();
        assert!(idle_after_first >= 1, "pool must retain released scratch buffers");
        let second = model.infer_batch_with_pool(&graphs, &pool);
        assert_eq!(pool.idle(), idle_after_first, "steady state: no new buffers");
        assert_eq!(first, second);
        for (g, out) in graphs.iter().zip(first.iter()) {
            assert_eq!(out, &model.infer(g));
        }
    }

    #[test]
    fn add_scaled_accumulates() {
        let model = DssModel::new(DssConfig::new(2, 3), 1);
        let mut acc = model.zeros_like();
        acc.add_scaled(2.0, &model);
        let a = acc.flatten();
        let m = model.flatten();
        for (ai, mi) in a.iter().zip(m.iter()) {
            assert!((ai - 2.0 * mi).abs() < 1e-15);
        }
    }
}
