//! Graph representation of one local (sub-domain) Poisson problem.
//!
//! Following the paper's modified DSS architecture (Eq. 17), a local problem
//! is presented to the network as the sub-mesh geometry plus the normalised
//! source vector: edge attributes are the relative node positions and their
//! Euclidean length, and each node carries the input `c_j = (Rᵢ r)_j / ‖Rᵢ r‖`.
//! The local operator `Rᵢ A Rᵢᵀ` is kept alongside because the
//! physics-informed training loss (Eq. 11) needs it; it is not used during
//! inference.
//!
//! The message-passing graph is kept fully undirected (every stored coupling
//! of the local operator yields messages in both directions).  The paper
//! additionally orients the edges of boundary nodes towards the interior; in
//! this reproduction the sub-domain operators are the plain principal
//! sub-matrices `Rᵢ A Rᵢᵀ`, whose interface nodes carry genuine unknowns, so
//! the symmetric graph is the faithful choice (see DESIGN.md).  The boundary
//! mask is still recorded and exposed for ablations.

use meshgen::Point2;
use sparse::CsrMatrix;

/// A directed edge of the message-passing graph.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Destination node (the node whose message sum this edge feeds).
    pub dst: usize,
    /// Source node (the neighbour the message comes from).
    pub src: usize,
    /// Relative position `pos[src] - pos[dst]`.
    pub delta: [f64; 2],
    /// Euclidean length of `delta`.
    pub dist: f64,
}

/// One local Poisson problem expressed as a graph.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// Node coordinates.
    pub positions: Vec<Point2>,
    /// Directed edges (dst receives from src).
    pub edges: Vec<Edge>,
    /// CSR-style destination-sorted edge incidence: node `j` aggregates the
    /// messages of edges `edge_order[edge_ptr[j]..edge_ptr[j+1]]`.  Built by
    /// a *stable* counting sort, so each node's edges keep their relative
    /// order from `edges` — summing along `edge_order` is bit-identical to
    /// the per-edge scatter it replaces, while turning the aggregation into
    /// a contiguous per-node gather.  Crate-private because it is cached
    /// state derived from `edges`: it is kept in sync by [`LocalGraph::new`],
    /// and external code that mutates `edges` must call
    /// [`LocalGraph::rebuild_incidence`].
    pub(crate) edge_ptr: Vec<usize>,
    /// Permutation from destination-sorted edge slots to indices in `edges`.
    pub(crate) edge_order: Vec<usize>,
    /// Normalised node input `c` (the DSS input).
    pub input: Vec<f64>,
    /// Norm of the un-normalised right-hand side (`‖Rᵢ r‖`), needed to rescale
    /// the network output when gluing sub-domain corrections.
    pub rhs_norm: f64,
    /// Whether a node lies on the local Dirichlet boundary.
    pub boundary: Vec<bool>,
    /// The local operator (used by the training loss).
    pub matrix: CsrMatrix,
}

impl LocalGraph {
    /// Build a local graph from the sub-domain operator, node positions,
    /// right-hand side and boundary mask.
    ///
    /// The right-hand side is normalised internally; `rhs_norm` records the
    /// original norm (graphs built from a zero rhs keep `rhs_norm = 0` and an
    /// all-zero input).
    pub fn new(
        matrix: CsrMatrix,
        positions: Vec<Point2>,
        rhs: &[f64],
        boundary: Vec<bool>,
    ) -> Self {
        let n = matrix.nrows();
        assert_eq!(matrix.ncols(), n, "local operator must be square");
        assert_eq!(positions.len(), n, "positions length mismatch");
        assert_eq!(rhs.len(), n, "rhs length mismatch");
        assert_eq!(boundary.len(), n, "boundary mask length mismatch");

        let rhs_norm = sparse::vector::norm2(rhs);
        let input: Vec<f64> =
            if rhs_norm > 0.0 { rhs.iter().map(|v| v / rhs_norm).collect() } else { vec![0.0; n] };

        // Directed edges from the sparsity pattern of the operator (both
        // directions of every coupling).
        let mut edges = Vec::with_capacity(matrix.nnz());
        for dst in 0..n {
            let (cols, _) = matrix.row(dst);
            for &src in cols {
                if src == dst {
                    continue;
                }
                let delta =
                    [positions[src].x - positions[dst].x, positions[src].y - positions[dst].y];
                let dist = (delta[0] * delta[0] + delta[1] * delta[1]).sqrt();
                edges.push(Edge { dst, src, delta, dist });
            }
        }

        let (edge_ptr, edge_order) = build_incidence(n, &edges);
        LocalGraph { positions, edges, edge_ptr, edge_order, input, rhs_norm, boundary, matrix }
    }

    /// Recompute the destination-sorted incidence after `edges` changed.
    pub fn rebuild_incidence(&mut self) {
        let (ptr, order) = build_incidence(self.num_nodes(), &self.edges);
        self.edge_ptr = ptr;
        self.edge_order = order;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Replace the right-hand side (renormalising), keeping the structure.
    ///
    /// This is the hot path during preconditioning: the sub-domain graphs are
    /// built once per solve and only the residual changes between PCG
    /// iterations.
    pub fn set_rhs(&mut self, rhs: &[f64]) {
        assert_eq!(rhs.len(), self.num_nodes());
        self.rhs_norm = sparse::vector::norm2(rhs);
        if self.rhs_norm > 0.0 {
            for (c, &r) in self.input.iter_mut().zip(rhs.iter()) {
                *c = r / self.rhs_norm;
            }
        } else {
            for c in self.input.iter_mut() {
                *c = 0.0;
            }
        }
    }

    /// The physics-informed residual loss (Eq. 11) of a candidate state `u`
    /// against this graph's normalised right-hand side.
    pub fn residual_loss(&self, u: &[f64]) -> f64 {
        crate::loss::residual_loss(&self.matrix, &self.input, u)
    }
}

/// Stable counting sort of the edges by destination node.
fn build_incidence(num_nodes: usize, edges: &[Edge]) -> (Vec<usize>, Vec<usize>) {
    let mut edge_ptr = vec![0usize; num_nodes + 1];
    for edge in edges {
        edge_ptr[edge.dst + 1] += 1;
    }
    for j in 0..num_nodes {
        edge_ptr[j + 1] += edge_ptr[j];
    }
    let mut next = edge_ptr.clone();
    let mut edge_order = vec![0usize; edges.len()];
    for (ei, edge) in edges.iter().enumerate() {
        edge_order[next[edge.dst]] = ei;
        next[edge.dst] += 1;
    }
    (edge_ptr, edge_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CooMatrix;

    fn chain_graph(n: usize) -> LocalGraph {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let positions: Vec<Point2> = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut boundary = vec![false; n];
        boundary[0] = true;
        boundary[n - 1] = true;
        LocalGraph::new(coo.to_csr(), positions, &rhs, boundary)
    }

    #[test]
    fn input_is_normalised() {
        let g = chain_graph(5);
        let norm = sparse::vector::norm2(&g.input);
        assert!((norm - 1.0).abs() < 1e-12);
        let expected_norm = (1.0 + 4.0 + 9.0 + 16.0 + 25.0_f64).sqrt();
        assert!((g.rhs_norm - expected_norm).abs() < 1e-12);
    }

    #[test]
    fn every_coupling_produces_messages_in_both_directions() {
        let g = chain_graph(6);
        // Interior node 2 receives from 1 and 3.
        let dsts: Vec<usize> = g.edges.iter().filter(|e| e.dst == 2).map(|e| e.src).collect();
        assert_eq!(dsts.len(), 2);
        assert!(dsts.contains(&1) && dsts.contains(&3));
        // The chain ends (boundary nodes) each receive exactly one message.
        assert_eq!(g.edges.iter().filter(|e| e.dst == 0).count(), 1);
        assert_eq!(g.edges.iter().filter(|e| e.dst == 5).count(), 1);
        // Symmetry: for every edge (dst, src) the reverse edge exists.
        for e in &g.edges {
            assert!(g.edges.iter().any(|f| f.dst == e.src && f.src == e.dst));
        }
    }

    #[test]
    fn edge_features_are_geometric() {
        let g = chain_graph(4);
        for e in &g.edges {
            assert!((e.dist - 1.0).abs() < 1e-12, "chain nodes are 1 apart");
            assert!((e.delta[0].abs() - 1.0).abs() < 1e-12);
            assert_eq!(e.delta[1], 0.0);
        }
    }

    #[test]
    fn zero_rhs_keeps_zero_input() {
        let mut g = chain_graph(4);
        g.set_rhs(&[0.0; 4]);
        assert_eq!(g.rhs_norm, 0.0);
        assert!(g.input.iter().all(|&c| c == 0.0));
        // And set back to something non-trivial.
        g.set_rhs(&[3.0, 0.0, 4.0, 0.0]);
        assert!((g.rhs_norm - 5.0).abs() < 1e-12);
        assert!((g.input[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn residual_loss_zero_for_exact_normalised_solution() {
        let g = chain_graph(8);
        let lu = sparse::LuFactor::factor_csr(&g.matrix).unwrap();
        let u = lu.solve(&g.input).unwrap();
        assert!(g.residual_loss(&u) < 1e-20);
        assert!(g.residual_loss(&[0.0; 8]) > 0.0);
    }

    #[test]
    fn counts() {
        let g = chain_graph(5);
        assert_eq!(g.num_nodes(), 5);
        // A 5-node chain has 4 undirected couplings = 8 directed edges.
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn incidence_covers_every_edge_grouped_by_destination() {
        let g = chain_graph(6);
        assert_eq!(g.edge_ptr.len(), g.num_nodes() + 1);
        assert_eq!(g.edge_ptr[0], 0);
        assert_eq!(*g.edge_ptr.last().unwrap(), g.num_edges());
        let mut seen = vec![false; g.num_edges()];
        for j in 0..g.num_nodes() {
            for &ei in &g.edge_order[g.edge_ptr[j]..g.edge_ptr[j + 1]] {
                assert_eq!(g.edges[ei].dst, j, "edge {ei} listed under the wrong node");
                assert!(!seen[ei], "edge {ei} listed twice");
                seen[ei] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every edge appears exactly once");
    }

    #[test]
    fn incidence_is_stable_and_rebuildable() {
        let mut g = chain_graph(6);
        // LocalGraph::new emits edges already grouped by destination, so the
        // stable sort must be the identity permutation.
        assert_eq!(g.edge_order, (0..g.num_edges()).collect::<Vec<_>>());
        // Reversing the edge list still groups per destination while keeping
        // each node's edges in (new) relative order.
        g.edges.reverse();
        g.rebuild_incidence();
        for j in 0..g.num_nodes() {
            let slots = &g.edge_order[g.edge_ptr[j]..g.edge_ptr[j + 1]];
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "stable order violated for node {j}");
            assert!(slots.iter().all(|&ei| g.edges[ei].dst == j));
        }
    }
}
