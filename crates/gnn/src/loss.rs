//! The physics-informed residual loss of the Deep Statistical Solver (Eq. 11).
//!
//! For a local system `A u = b` (with `b` the normalised sub-domain residual)
//! the loss of a candidate state `u` is the mean squared equation residual
//!
//! ```text
//! L(u) = 1/N Σ_i ( b_i - Σ_j a_ij u_j )²
//! ```
//!
//! and its gradient with respect to `u` is `∇L = 2/N Aᵀ (A u - b)`.
//! No ground-truth solutions enter the training loop — exactly as in the
//! paper, which is what allows the dataset to be generated without solving
//! every local problem exactly.

use sparse::CsrMatrix;

/// Loss value.
pub fn residual_loss(a: &CsrMatrix, b: &[f64], u: &[f64]) -> f64 {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(u.len(), n);
    let au = a.spmv(u);
    let mut acc = 0.0;
    for i in 0..n {
        let r = b[i] - au[i];
        acc += r * r;
    }
    acc / n as f64
}

/// Loss value and gradient with respect to `u`.
pub fn residual_loss_and_grad(a: &CsrMatrix, b: &[f64], u: &[f64]) -> (f64, Vec<f64>) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(u.len(), n);
    let au = a.spmv(u);
    let mut residual = vec![0.0; n];
    let mut value = 0.0;
    for i in 0..n {
        residual[i] = au[i] - b[i];
        value += residual[i] * residual[i];
    }
    value /= n as f64;
    // grad = 2/N Aᵀ (A u - b)
    let mut grad = a.spmv_transpose(&residual);
    let scale = 2.0 / n as f64;
    for g in &mut grad {
        *g *= scale;
    }
    (value, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CooMatrix;

    fn small_system() -> (CsrMatrix, Vec<f64>) {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        (coo.to_csr(), vec![1.0, -2.0, 0.5])
    }

    #[test]
    fn loss_is_zero_at_exact_solution() {
        let (a, b) = small_system();
        let lu = sparse::LuFactor::factor_csr(&a).unwrap();
        let u = lu.solve(&b).unwrap();
        assert!(residual_loss(&a, &b, &u) < 1e-24);
        let (value, grad) = residual_loss_and_grad(&a, &b, &u);
        assert!(value < 1e-24);
        assert!(sparse::vector::norm2(&grad) < 1e-11);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (a, b) = small_system();
        let u = vec![0.3, -0.7, 1.1];
        let (_, grad) = residual_loss_and_grad(&a, &b, &u);
        let eps = 1e-6;
        for i in 0..3 {
            let mut up = u.clone();
            up[i] += eps;
            let mut um = u.clone();
            um[i] -= eps;
            let numeric = (residual_loss(&a, &b, &up) - residual_loss(&a, &b, &um)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-7, "component {i}");
        }
    }

    #[test]
    fn loss_scales_with_mean_not_sum() {
        // Duplicating the system (block diagonal) keeps the mean loss equal.
        let (a, b) = small_system();
        let u = vec![0.1, 0.2, 0.3];
        let loss_small = residual_loss(&a, &b, &u);
        let mut coo = CooMatrix::new(6, 6);
        for r in 0..3 {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                coo.push(r, c, v).unwrap();
                coo.push(r + 3, c + 3, v).unwrap();
            }
        }
        let a2 = coo.to_csr();
        let b2: Vec<f64> = b.iter().chain(b.iter()).copied().collect();
        let u2: Vec<f64> = u.iter().chain(u.iter()).copied().collect();
        let loss_big = residual_loss(&a2, &b2, &u2);
        assert!((loss_small - loss_big).abs() < 1e-14);
    }
}
