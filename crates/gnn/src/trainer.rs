//! Mini-batch training loop and the evaluation metrics of Table II.
//!
//! Training follows the paper's recipe (Section IV-B): Adam at learning rate
//! 1e-2, gradient clipping, a reduce-on-plateau schedule, mini-batches of
//! local problems, and the summed per-iteration physics-informed loss.
//! Per-sample gradients inside a batch are computed in parallel with rayon —
//! the CPU counterpart of the paper's data-parallel GPU training.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::adam::{Adam, AdamConfig, PlateauScheduler};
use crate::graph::LocalGraph;
use crate::model::DssModel;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 100; CPU-sized runs use less).
    pub batch_size: usize,
    /// Adam configuration (learning rate, clipping, ...).
    pub adam: AdamConfig,
    /// Fraction of the samples held out for validation / the LR scheduler.
    pub validation_fraction: f64,
    /// Plateau patience (epochs without improvement before reducing the LR).
    pub lr_patience: usize,
    /// Plateau reduction factor.
    pub lr_factor: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a progress line every `log_every` epochs (0 disables logging).
    pub log_every: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 40,
            batch_size: 16,
            adam: AdamConfig::default(),
            validation_fraction: 0.2,
            lr_patience: 5,
            lr_factor: 0.1,
            seed: 0,
            log_every: 0,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f64>,
    /// Mean validation loss per epoch (empty when no validation split).
    pub validation_losses: Vec<f64>,
    /// Learning rate at the end of training.
    pub final_learning_rate: f64,
}

impl TrainingReport {
    /// Final training loss.
    pub fn final_train_loss(&self) -> f64 {
        *self.train_losses.last().unwrap_or(&f64::NAN)
    }
}

/// Evaluation metrics in the format of the paper's Table II.
#[derive(Debug, Clone)]
pub struct EvalMetrics {
    /// Mean ± std of the final residual norm `‖A û - c‖` over the samples
    /// (the input `c` is normalised, so this is a relative residual).
    pub residual_mean: f64,
    /// Standard deviation of the residual norm.
    pub residual_std: f64,
    /// Mean relative error against the exact (direct) solution of each local
    /// problem.
    pub relative_error_mean: f64,
    /// Standard deviation of the relative error.
    pub relative_error_std: f64,
}

/// Train the model in place.  Returns the per-epoch loss history.
pub fn train(
    model: &mut DssModel,
    samples: &[LocalGraph],
    config: &TrainingConfig,
) -> TrainingReport {
    assert!(!samples.is_empty(), "cannot train on an empty dataset");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Train/validation split.
    let mut indices: Vec<usize> = (0..samples.len()).collect();
    indices.shuffle(&mut rng);
    let num_val = ((samples.len() as f64) * config.validation_fraction).round() as usize;
    let num_val = num_val.min(samples.len().saturating_sub(1));
    let (val_idx, train_idx) = indices.split_at(num_val);
    let train_idx: Vec<usize> = train_idx.to_vec();
    let val_idx: Vec<usize> = val_idx.to_vec();

    let num_params = model.num_params();
    let mut adam = Adam::new(config.adam, num_params);
    let mut scheduler = PlateauScheduler::new(config.lr_patience, config.lr_factor, 1e-7);

    let mut train_losses = Vec::with_capacity(config.epochs);
    let mut validation_losses = Vec::with_capacity(config.epochs);

    let mut order = train_idx.clone();
    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            // Data-parallel gradient computation; the per-sample results are
            // collected in order and summed sequentially so training stays
            // bit-for-bit deterministic regardless of thread scheduling.
            let per_sample: Vec<(f64, Vec<f64>)> = chunk
                .par_iter()
                .map(|&idx| {
                    let mut grad = model.zeros_like();
                    let loss = model.backward(&samples[idx], &mut grad);
                    (loss, grad.flatten())
                })
                .collect();
            let mut batch_loss = 0.0;
            let mut grad_flat = vec![0.0; num_params];
            for (loss, grad) in &per_sample {
                batch_loss += loss;
                for (a, b) in grad_flat.iter_mut().zip(grad.iter()) {
                    *a += b;
                }
            }
            let scale = 1.0 / chunk.len() as f64;
            let grad_mean: Vec<f64> = grad_flat.iter().map(|g| g * scale).collect();
            let mut params = model.flatten();
            adam.step(&mut params, &grad_mean);
            model.load_flat(&params);
            epoch_loss += batch_loss * scale;
            batches += 1;
        }
        let mean_train = epoch_loss / batches.max(1) as f64;
        train_losses.push(mean_train);

        // Validation loss drives the plateau scheduler (falls back to the
        // training loss when there is no held-out split).
        let monitored = if val_idx.is_empty() {
            mean_train
        } else {
            let losses: Vec<f64> =
                val_idx.par_iter().map(|&idx| model.loss(&samples[idx])).collect();
            let val_loss: f64 = losses.iter().sum::<f64>() / val_idx.len() as f64;
            validation_losses.push(val_loss);
            val_loss
        };
        scheduler.observe(monitored, &mut adam);

        if config.log_every > 0 && (epoch + 1) % config.log_every == 0 {
            println!(
                "epoch {:>4}: train loss {:.3e}, monitored {:.3e}, lr {:.2e}",
                epoch + 1,
                mean_train,
                monitored,
                adam.learning_rate()
            );
        }
    }

    TrainingReport { train_losses, validation_losses, final_learning_rate: adam.learning_rate() }
}

/// Evaluate the model: residual norms and relative errors against exact local
/// solutions (the metrics of Table II).
///
/// Inference goes through the planned fast path with a shared
/// [`crate::plan::ScratchPool`], so the per-sample intermediate buffers are
/// recycled across the whole evaluation sweep.
pub fn evaluate(model: &DssModel, samples: &[LocalGraph]) -> EvalMetrics {
    assert!(!samples.is_empty(), "cannot evaluate on an empty dataset");
    let pool = crate::plan::ScratchPool::new();
    let per_sample: Vec<(f64, f64)> = samples
        .par_iter()
        .map(|graph| {
            let plan = model.build_plan(graph);
            let mut scratch = pool.acquire();
            let mut prediction = vec![0.0; graph.num_nodes()];
            model.infer_with_plan_into(&plan, &graph.input, &mut scratch, &mut prediction);
            pool.release(scratch);
            // Residual norm of the normalised system.
            let au = graph.matrix.spmv(&prediction);
            let res: Vec<f64> = au.iter().zip(graph.input.iter()).map(|(a, c)| c - a).collect();
            let residual_norm = sparse::vector::norm2(&res);
            // Relative error against the exact local solution.
            let relative_error = match sparse::SkylineCholesky::factor(&graph.matrix) {
                Ok(chol) => {
                    let exact = chol.solve(&graph.input).unwrap_or_else(|_| prediction.clone());
                    sparse::vector::relative_error(&prediction, &exact)
                }
                Err(_) => f64::NAN,
            };
            (residual_norm, relative_error)
        })
        .collect();

    let residuals: Vec<f64> = per_sample.iter().map(|&(r, _)| r).collect();
    let errors: Vec<f64> = per_sample.iter().map(|&(_, e)| e).filter(|e| e.is_finite()).collect();
    let (residual_mean, residual_std) = mean_std(&residuals);
    let (relative_error_mean, relative_error_std) = mean_std(&errors);
    EvalMetrics { residual_mean, residual_std, relative_error_mean, relative_error_std }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{extract_local_problems, DatasetConfig};
    use crate::model::DssConfig;

    fn tiny_samples() -> Vec<LocalGraph> {
        extract_local_problems(&DatasetConfig {
            num_global_problems: 1,
            target_nodes: 300,
            subdomain_size: 90,
            overlap: 2,
            max_iterations_per_problem: 6,
            max_samples: Some(24),
            seed: 9,
            ..Default::default()
        })
    }

    #[test]
    fn training_reduces_the_loss() {
        let samples = tiny_samples();
        assert!(samples.len() >= 8);
        let mut model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 4, alpha: 1e-2 }, 1);
        let before = evaluate(&model, &samples);
        let config = TrainingConfig {
            epochs: 12,
            batch_size: 8,
            adam: AdamConfig { learning_rate: 3e-3, clip_norm: Some(1.0), ..Default::default() },
            validation_fraction: 0.2,
            seed: 1,
            ..Default::default()
        };
        let report = train(&mut model, &samples, &config);
        assert_eq!(report.train_losses.len(), 12);
        let after = evaluate(&model, &samples);
        assert!(
            report.final_train_loss() < report.train_losses[0],
            "training loss must decrease: {:?}",
            report.train_losses
        );
        assert!(
            after.residual_mean < before.residual_mean,
            "residual must improve: {} -> {}",
            before.residual_mean,
            after.residual_mean
        );
    }

    #[test]
    fn evaluation_metrics_are_finite_and_positive() {
        let samples = tiny_samples();
        let model = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 1e-2 }, 5);
        let metrics = evaluate(&model, &samples);
        assert!(metrics.residual_mean.is_finite() && metrics.residual_mean > 0.0);
        assert!(metrics.residual_std.is_finite());
        assert!(metrics.relative_error_mean.is_finite() && metrics.relative_error_mean > 0.0);
        assert!(metrics.relative_error_std.is_finite());
    }

    #[test]
    fn training_is_deterministic_for_fixed_seeds() {
        let samples = tiny_samples();
        let config = TrainingConfig { epochs: 3, batch_size: 6, seed: 4, ..Default::default() };
        let mut m1 = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 1e-2 }, 2);
        let mut m2 = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 1e-2 }, 2);
        let r1 = train(&mut m1, &samples, &config);
        let r2 = train(&mut m2, &samples, &config);
        for (a, b) in r1.train_losses.iter().zip(r2.train_losses.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert_eq!(m1.flatten(), m2.flatten());
    }

    #[test]
    fn mean_std_helper() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m, s) = mean_std(&[]);
        assert!(m.is_nan() && s.is_nan());
    }
}
