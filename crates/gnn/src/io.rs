//! Plain-text model serialisation.
//!
//! Trained DSS models are small (tens of thousands of `f64`s), so a simple
//! self-describing text format is enough: a header line with the
//! hyper-parameters followed by one parameter value per line.  The format is
//! stable across runs and platforms, letting the examples and the benchmark
//! harness reuse models trained by `examples/train_dss.rs`.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::model::{DssConfig, DssModel};

/// Magic tag identifying the format.
const MAGIC: &str = "dss-model-v1";

/// Save a model to a text file.
pub fn save_model(path: &Path, model: &DssModel) -> io::Result<()> {
    let config = model.config();
    let params = model.flatten();
    let mut out = String::with_capacity(params.len() * 24 + 64);
    out.push_str(&format!(
        "{MAGIC} {} {} {:e}\n",
        config.num_blocks, config.latent_dim, config.alpha
    ));
    for p in &params {
        out.push_str(&format!("{:e}\n", p));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut file = fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Load a model previously written by [`save_model`].
pub fn load_model(path: &Path) -> io::Result<DssModel> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty model file"))?;
    let mut fields = header.split_whitespace();
    let magic = fields.next().unwrap_or("");
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected model file magic: {magic}"),
        ));
    }
    let parse_err = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let num_blocks: usize =
        fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad num_blocks"))?;
    let latent_dim: usize =
        fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad latent_dim"))?;
    let alpha: f64 =
        fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad alpha"))?;
    let mut model = DssModel::new(DssConfig { num_blocks, latent_dim, alpha }, 0);
    let mut params = Vec::with_capacity(model.num_params());
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value: f64 = line.parse().map_err(|_| parse_err("bad parameter value"))?;
        params.push(value);
    }
    if params.len() != model.num_params() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {} parameters, found {}", model.num_params(), params.len()),
        ));
    }
    model.load_flat(&params);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LocalGraph;
    use meshgen::Point2;
    use sparse::CooMatrix;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ddm_gnn_test_{name}_{}", std::process::id()))
    }

    fn tiny_graph() -> LocalGraph {
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let positions = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        LocalGraph::new(
            coo.to_csr(),
            positions,
            &[1.0, 2.0, 3.0, 4.0],
            vec![true, false, false, true],
        )
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let model = DssModel::new(DssConfig::new(3, 5), 12);
        let path = tmp_path("roundtrip.txt");
        save_model(&path, &model).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.config(), model.config());
        assert_eq!(loaded.num_params(), model.num_params());
        let graph = tiny_graph();
        assert_eq!(model.infer(&graph), loaded.infer(&graph));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let path = tmp_path("corrupt.txt");
        std::fs::write(&path, "not-a-model 1 2 3\n").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::write(&path, "dss-model-v1 2 3 1e-3\n1.0\n2.0\n").unwrap();
        assert!(load_model(&path).is_err(), "wrong parameter count must be rejected");
        std::fs::remove_file(&path).ok();
        assert!(load_model(&tmp_path("missing.txt")).is_err());
    }
}
