//! Plain-text model serialisation.
//!
//! Trained DSS models are small (tens of thousands of `f64`s), so a simple
//! self-describing text format is enough: a header line with the
//! hyper-parameters followed by one parameter value per line.  The format is
//! stable across runs and platforms, letting the examples and the benchmark
//! harness reuse models trained by `examples/train_dss.rs`.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::model::{DssConfig, DssModel};

/// Magic tag identifying the format.
const MAGIC: &str = "dss-model-v1";

/// Upper bound on `num_blocks` and `latent_dim` accepted by [`load_model`].
/// The paper's largest configuration is `k̄ = 30, d = 20`; anything orders of
/// magnitude beyond that is a corrupted or hostile header, and rejecting it
/// *before* any allocation keeps a bad file from requesting absurd amounts
/// of memory.
const MAX_DIM: usize = 4096;

/// Upper bound on the total parameter count implied by the header.  64 Mi
/// parameters is ~512 MB of `f64` — far above any real model, far below an
/// allocation that could take the process down.
const MAX_PARAMS: u128 = 1 << 26;

/// Number of parameters of a DSS model with `num_blocks` blocks of latent
/// dimension `d`, computed in `u128` so hostile headers cannot overflow.
/// Mirrors the four two-layer MLPs of [`crate::model::DssModel`]:
/// `Φ→`/`Φ←` (`(2d+3) → d → d`), `Ψ` (`(3d+1) → d → d`), `D` (`d → d → 1`).
fn expected_params(num_blocks: usize, d: usize) -> u128 {
    let d = d as u128;
    let mlp = |in_dim: u128, hidden: u128, out_dim: u128| {
        in_dim * hidden + hidden + hidden * out_dim + out_dim
    };
    let per_block = 2 * mlp(2 * d + 3, d, d) + mlp(3 * d + 1, d, d) + mlp(d, d, 1);
    num_blocks as u128 * per_block
}

/// Shared header validation of save and load, keeping the roundtrip
/// symmetric: anything `save_model` writes, `load_model` accepts, and a
/// config the loader would reject is refused at save time instead of
/// producing an unreadable file.
fn validate_config(num_blocks: usize, latent_dim: usize, alpha: f64) -> Result<usize, String> {
    if num_blocks == 0 || num_blocks > MAX_DIM || latent_dim == 0 || latent_dim > MAX_DIM {
        return Err(format!(
            "implausible model dimensions: num_blocks={num_blocks}, latent_dim={latent_dim} \
             (1..={MAX_DIM} each)"
        ));
    }
    let expected = expected_params(num_blocks, latent_dim);
    if expected > MAX_PARAMS {
        return Err(format!("header implies {expected} parameters (limit {MAX_PARAMS})"));
    }
    if !alpha.is_finite() || alpha <= 0.0 || alpha > 1e6 {
        return Err(format!("implausible alpha: {alpha}"));
    }
    Ok(expected as usize)
}

/// Save a model to a text file.
///
/// Refuses configurations [`load_model`] would reject (non-positive or
/// absurd `alpha`, zero or oversized dimensions), so every file this
/// function writes is guaranteed to load back.
pub fn save_model(path: &Path, model: &DssModel) -> io::Result<()> {
    let config = model.config();
    validate_config(config.num_blocks, config.latent_dim, config.alpha)
        .map_err(|what| io::Error::new(io::ErrorKind::InvalidInput, what))?;
    let params = model.flatten();
    let mut out = String::with_capacity(params.len() * 24 + 64);
    out.push_str(&format!(
        "{MAGIC} {} {} {:e}\n",
        config.num_blocks, config.latent_dim, config.alpha
    ));
    for p in &params {
        out.push_str(&format!("{:e}\n", p));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut file = fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// Load a model previously written by [`save_model`].
///
/// The loader is hardened against corrupted or hostile files: header
/// dimensions are bounded ([`MAX_DIM`] each, [`MAX_PARAMS`] implied weights)
/// and `alpha` must be finite and positive **before** anything is allocated,
/// every parameter value must parse *and* be finite (Rust's float parser
/// happily accepts `NaN` and `inf`, which would silently poison every
/// inference downstream), and a file with more lines than the header
/// promises is rejected as soon as the excess is seen rather than buffered
/// to the end.
pub fn load_model(path: &Path) -> io::Result<DssModel> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty model file"))?;
    let mut fields = header.split_whitespace();
    let magic = fields.next().unwrap_or("");
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected model file magic: {magic}"),
        ));
    }
    let parse_err = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let num_blocks: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad num_blocks".into()))?;
    let latent_dim: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad latent_dim".into()))?;
    let alpha: f64 =
        fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad alpha".into()))?;
    if let Some(extra) = fields.next() {
        return Err(parse_err(format!("unexpected extra header field: {extra:?}")));
    }
    // Validate the header before allocating anything model-sized.  Zero
    // blocks is rejected too: a block-less model decodes identically to
    // zero, which as a preconditioner silently breaks down PCG (z = 0 ⇒
    // ρ = rᵀz = 0) — exactly the poisoned-model class this guard exists for.
    let expected = validate_config(num_blocks, latent_dim, alpha).map_err(parse_err)?;
    let mut params = Vec::with_capacity(expected);
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if params.len() == expected {
            return Err(parse_err(format!(
                "trailing garbage after {expected} parameters: {line:?}"
            )));
        }
        let value: f64 = line.parse().map_err(|_| parse_err("bad parameter value".into()))?;
        if !value.is_finite() {
            return Err(parse_err(format!("non-finite parameter value: {value}")));
        }
        params.push(value);
    }
    if params.len() != expected {
        return Err(parse_err(format!("expected {expected} parameters, found {}", params.len())));
    }
    let mut model = DssModel::new(DssConfig { num_blocks, latent_dim, alpha }, 0);
    debug_assert_eq!(model.num_params(), expected, "expected_params must mirror the model");
    model.load_flat(&params);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LocalGraph;
    use meshgen::Point2;
    use sparse::CooMatrix;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ddm_gnn_test_{name}_{}", std::process::id()))
    }

    fn tiny_graph() -> LocalGraph {
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        let positions = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        LocalGraph::new(
            coo.to_csr(),
            positions,
            &[1.0, 2.0, 3.0, 4.0],
            vec![true, false, false, true],
        )
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let model = DssModel::new(DssConfig::new(3, 5), 12);
        let path = tmp_path("roundtrip.txt");
        save_model(&path, &model).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.config(), model.config());
        assert_eq!(loaded.num_params(), model.num_params());
        let graph = tiny_graph();
        assert_eq!(model.infer(&graph), loaded.infer(&graph));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let path = tmp_path("corrupt.txt");
        std::fs::write(&path, "not-a-model 1 2 3\n").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::write(&path, "dss-model-v1 2 3 1e-3\n1.0\n2.0\n").unwrap();
        assert!(load_model(&path).is_err(), "wrong parameter count must be rejected");
        std::fs::remove_file(&path).ok();
        assert!(load_model(&tmp_path("missing.txt")).is_err());
    }

    /// Write a syntactically valid model file for config (2, 3) and then
    /// corrupt one aspect of it per case.
    fn valid_file_text() -> String {
        let model = DssModel::new(DssConfig::new(2, 3), 7);
        let mut s = String::from("dss-model-v1 2 3 1e-3\n");
        for p in model.flatten() {
            s.push_str(&format!("{p:e}\n"));
        }
        s
    }

    #[test]
    fn non_finite_parameter_values_are_rejected() {
        // `"NaN".parse::<f64>()` succeeds, so a naive loader would accept
        // these and silently poison every downstream inference.
        let path = tmp_path("nonfinite.txt");
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let mut text = valid_file_text();
            // Replace the first parameter line with the non-finite value.
            let header_end = text.find('\n').unwrap() + 1;
            let first_param_end = header_end + text[header_end..].find('\n').unwrap() + 1;
            text.replace_range(header_end..first_param_end, &format!("{bad}\n"));
            std::fs::write(&path, &text).unwrap();
            let err = load_model(&path).expect_err(&format!("{bad} must be rejected"));
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn implausible_headers_are_rejected_before_allocation() {
        let path = tmp_path("hostile_header.txt");
        // Each of these would imply an absurd (or overflowing) allocation if
        // dimensions were trusted; the loader must reject the header alone.
        for header in [
            "dss-model-v1 99999999999 10 1e-3", // huge num_blocks
            "dss-model-v1 30 99999999999 1e-3", // huge latent_dim
            "dss-model-v1 4096 4096 1e-3",      // within MAX_DIM, too many params
            "dss-model-v1 30 0 1e-3",           // zero latent dimension
            "dss-model-v1 0 10 1e-3",           // zero blocks (all-zero inference)
            "dss-model-v1 30 10 NaN",           // non-finite alpha
            "dss-model-v1 30 10 inf",           // non-finite alpha
            "dss-model-v1 30 10 0",             // alpha must be positive
            "dss-model-v1 30 10 -1e-3",         // alpha must be positive
            "dss-model-v1 30 10 1e300",         // absurd alpha magnitude
        ] {
            std::fs::write(&path, format!("{header}\n1.0\n")).unwrap();
            let err = load_model(&path).expect_err(&format!("header {header:?} must be rejected"));
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_lines_are_rejected() {
        let path = tmp_path("trailing.txt");
        // Non-numeric trailing line.
        let mut text = valid_file_text();
        text.push_str("this-is-not-a-number\n");
        std::fs::write(&path, &text).unwrap();
        assert!(load_model(&path).is_err(), "non-numeric trailing line must be rejected");
        // Extra tokens on the header line are rejected, not silently dropped.
        let text = valid_file_text().replacen("1e-3", "1e-3 surprise", 1);
        std::fs::write(&path, &text).unwrap();
        assert!(load_model(&path).is_err(), "extra header fields must be rejected");
        // Numeric trailing lines (one extra parameter) must be rejected too,
        // not silently truncated.
        let mut text = valid_file_text();
        text.push_str("1.0\n");
        std::fs::write(&path, &text).unwrap();
        assert!(load_model(&path).is_err(), "extra parameter lines must be rejected");
        // The untouched file still loads.
        std::fs::write(&path, valid_file_text()).unwrap();
        assert!(load_model(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_refuses_configs_the_loader_would_reject() {
        // The roundtrip stays symmetric: save_model never writes a file
        // load_model cannot read.
        let path = tmp_path("unsavable.txt");
        let bad = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 2e6 }, 1);
        let err = save_model(&path, &bad).expect_err("absurd alpha must be rejected at save time");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(!path.exists(), "no file must be written for a rejected config");
    }

    #[test]
    fn expected_params_mirrors_the_model() {
        for (kbar, d) in [(1usize, 1usize), (2, 3), (5, 10), (30, 10), (20, 20)] {
            let model = DssModel::new(DssConfig::new(kbar, d), 0);
            assert_eq!(
                expected_params(kbar, d),
                model.num_params() as u128,
                "formula mismatch for k̄={kbar}, d={d}"
            );
        }
    }
}
