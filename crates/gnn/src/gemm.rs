//! Cache- and register-blocked batch GEMM micro-kernels.
//!
//! All dense layers in this crate compute `Y = X Wᵀ (+ bias)` on row-major
//! batches: `X` is `n × in_dim`, `W` is `out_dim × in_dim` (one weight row per
//! output), `Y` is `n × out_dim`.  The batch dimension `n` is large (one row
//! per edge or per node of a sub-domain graph) while `in_dim`/`out_dim` are
//! small (the latent dimension `d ≈ 10`), so the kernels panel over the batch:
//! a register tile of [`MR`]` × `[`NR`] accumulators walks the shared `in_dim`
//! axis once, giving `MR·NR` multiply-adds per `MR + NR` loads and `MR·NR`
//! independent dependency chains for the CPU to overlap (the naive row-by-row
//! GEMV has a single serial add chain per output).  The weight panel stays
//! resident in cache across the whole batch sweep.
//!
//! **Determinism contract:** every output element accumulates its dot product
//! strictly in ascending `i` order starting from its initial value (bias,
//! zero, or the prior `Y` entry).  Blocking only regroups *independent*
//! output elements, so the results are bit-identical to the scalar triple
//! loop these kernels replaced — at every tile shape and every batch size.

/// Batch rows per register tile.
const MR: usize = 4;
/// Output columns per register tile.
const NR: usize = 4;

/// First `N` elements of a kernel subslice as an array reference.
///
/// The panel loops only take subslices they have already sized to at least
/// one tile, so the length check cannot fail; `unreachable!` states that
/// invariant instead of routing through `try_into().unwrap()`, which the
/// workspace lint forbids on the apply hot path.
#[inline(always)]
fn head<T, const N: usize>(s: &[T]) -> &[T; N] {
    match s.split_first_chunk::<N>() {
        Some((a, _)) => a,
        None => unreachable!("kernel subslice shorter than its tile width"),
    }
}

/// Mutable variant of [`head`].
#[inline(always)]
fn head_mut<T, const N: usize>(s: &mut [T]) -> &mut [T; N] {
    match s.split_first_chunk_mut::<N>() {
        Some((a, _)) => a,
        None => unreachable!("kernel subslice shorter than its tile width"),
    }
}

/// `Y = X Wᵀ + bias` (each output element starts from its bias).
pub fn gemm_bias_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_core::<false>(x, n, in_dim, out_dim, weight, bias, y);
}

/// `Y = X Wᵀ` (outputs start from zero).
pub fn gemm_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<false>(x, n, in_dim, out_dim, weight, &[], y);
}

/// `Y += X Wᵀ` (outputs accumulate onto the existing `Y`).
pub fn gemm_acc_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<true>(x, n, in_dim, out_dim, weight, &[], y);
}

/// Shared blocked kernel.  `ACC = true` reads the initial accumulator from
/// `y`; otherwise it comes from `bias` (or zero when `bias` is empty).
fn gemm_core<const ACC: bool>(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(weight.len(), out_dim * in_dim);
    debug_assert_eq!(y.len(), n * out_dim);
    let init = |y: &[f64], r: usize, o: usize| -> f64 {
        if ACC {
            y[r * out_dim + o]
        } else if bias.is_empty() {
            0.0
        } else {
            bias[o]
        }
    };

    let mr_end = n - n % MR;
    let nr_end = out_dim - out_dim % NR;
    let mut r = 0;
    while r < mr_end {
        // Row slices of exactly `in_dim` elements let the bounds checks hoist
        // out of the inner loop.
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let w0 = &weight[o * in_dim..][..in_dim];
            let w1 = &weight[(o + 1) * in_dim..][..in_dim];
            let w2 = &weight[(o + 2) * in_dim..][..in_dim];
            let w3 = &weight[(o + 3) * in_dim..][..in_dim];
            let mut a00 = init(y, r, o);
            let mut a01 = init(y, r, o + 1);
            let mut a02 = init(y, r, o + 2);
            let mut a03 = init(y, r, o + 3);
            let mut a10 = init(y, r + 1, o);
            let mut a11 = init(y, r + 1, o + 1);
            let mut a12 = init(y, r + 1, o + 2);
            let mut a13 = init(y, r + 1, o + 3);
            let mut a20 = init(y, r + 2, o);
            let mut a21 = init(y, r + 2, o + 1);
            let mut a22 = init(y, r + 2, o + 2);
            let mut a23 = init(y, r + 2, o + 3);
            let mut a30 = init(y, r + 3, o);
            let mut a31 = init(y, r + 3, o + 1);
            let mut a32 = init(y, r + 3, o + 2);
            let mut a33 = init(y, r + 3, o + 3);
            for i in 0..in_dim {
                let (p0, p1, p2, p3) = (x0[i], x1[i], x2[i], x3[i]);
                let (q0, q1, q2, q3) = (w0[i], w1[i], w2[i], w3[i]);
                a00 += q0 * p0;
                a01 += q1 * p0;
                a02 += q2 * p0;
                a03 += q3 * p0;
                a10 += q0 * p1;
                a11 += q1 * p1;
                a12 += q2 * p1;
                a13 += q3 * p1;
                a20 += q0 * p2;
                a21 += q1 * p2;
                a22 += q2 * p2;
                a23 += q3 * p2;
                a30 += q0 * p3;
                a31 += q1 * p3;
                a32 += q2 * p3;
                a33 += q3 * p3;
            }
            y[r * out_dim + o] = a00;
            y[r * out_dim + o + 1] = a01;
            y[r * out_dim + o + 2] = a02;
            y[r * out_dim + o + 3] = a03;
            y[(r + 1) * out_dim + o] = a10;
            y[(r + 1) * out_dim + o + 1] = a11;
            y[(r + 1) * out_dim + o + 2] = a12;
            y[(r + 1) * out_dim + o + 3] = a13;
            y[(r + 2) * out_dim + o] = a20;
            y[(r + 2) * out_dim + o + 1] = a21;
            y[(r + 2) * out_dim + o + 2] = a22;
            y[(r + 2) * out_dim + o + 3] = a23;
            y[(r + 3) * out_dim + o] = a30;
            y[(r + 3) * out_dim + o + 1] = a31;
            y[(r + 3) * out_dim + o + 2] = a32;
            y[(r + 3) * out_dim + o + 3] = a33;
            o += NR;
        }
        // Remainder outputs: one column across the MR-row panel.
        while o < out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut a0 = init(y, r, o);
            let mut a1 = init(y, r + 1, o);
            let mut a2 = init(y, r + 2, o);
            let mut a3 = init(y, r + 3, o);
            for i in 0..in_dim {
                let q = w[i];
                a0 += q * x0[i];
                a1 += q * x1[i];
                a2 += q * x2[i];
                a3 += q * x3[i];
            }
            y[r * out_dim + o] = a0;
            y[(r + 1) * out_dim + o] = a1;
            y[(r + 2) * out_dim + o] = a2;
            y[(r + 3) * out_dim + o] = a3;
            o += 1;
        }
        r += MR;
    }
    // Remainder rows: plain per-row sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        for o in 0..out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut acc = init(y, r, o);
            for i in 0..in_dim {
                acc += w[i] * xr[i];
            }
            y[r * out_dim + o] = acc;
        }
        r += 1;
    }
}

// ---------------------------------------------------------------------------
// Single-precision kernels (the f32 inference engine)
// ---------------------------------------------------------------------------
//
// The f32 path serves *inference only* (the preconditioner's hot loop); it
// never touches training numerics, so it is free to pick the layout that
// vectorises best.  Weights come in **transposed** (`in_dim × out_dim`
// row-major, i.e. one row per *input* feature): for every shared-axis step
// `i` the `out_dim` weights are contiguous, and the inner loop is a pure
// 8-lane axpy `acc[k] += x_i · wt[i][k]` the compiler maps straight onto
// SIMD registers.  A 4-row panel keeps four independent accumulator tiles in
// flight so the loop is throughput- rather than latency-bound — the `wide`
// crate's 4×8 f32 tile written out by hand.
//
// Accumulation order per output element is ascending `i` from the initial
// value, exactly like the f64 kernels, so the f32 results are reproducible
// across batch sizes and tile shapes (they differ from f64 only by rounding).

/// SIMD lane count of the f32 inner loops (two SSE / one AVX register).
pub const F32_LANES: usize = 8;

/// `acc[k] += s * w[k]` over one row, 8 lanes at a time.
#[inline(always)]
fn axpy_f32(acc: &mut [f32], w: &[f32], s: f32) {
    let mut ac = acc.chunks_exact_mut(F32_LANES);
    let mut wc = w.chunks_exact(F32_LANES);
    for (a, b) in ac.by_ref().zip(wc.by_ref()) {
        let a: &mut [f32; F32_LANES] = head_mut(a);
        let b: &[f32; F32_LANES] = head(b);
        #[cfg(feature = "portable-simd")]
        {
            use std::simd::f32x8;
            let r = f32x8::from_array(*a) + f32x8::splat(s) * f32x8::from_array(*b);
            *a = r.to_array();
        }
        #[cfg(not(feature = "portable-simd"))]
        for k in 0..F32_LANES {
            a[k] += s * b[k];
        }
    }
    for (a, b) in ac.into_remainder().iter_mut().zip(wc.remainder()) {
        *a += s * *b;
    }
}

/// `Y = X Wᵀ + bias` with a transposed (`in_dim × out_dim`) f32 weight.
pub fn gemm_t_bias_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_t_core_f32::<false>(x, n, in_dim, out_dim, wt, bias, y);
}

/// `Y = X Wᵀ` with a transposed f32 weight (outputs start from zero).
pub fn gemm_t_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_t_core_f32::<false>(x, n, in_dim, out_dim, wt, &[], y);
}

/// `Y += X Wᵀ` with a transposed f32 weight (accumulates onto `Y`).
pub fn gemm_t_acc_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_t_core_f32::<true>(x, n, in_dim, out_dim, wt, &[], y);
}

/// Rows per f32 register panel.
const MR32: usize = 4;

/// Shared f32 kernel: a 4-row panel of 8-lane column tiles over the
/// transposed weight.  `ACC = true` reads the initial accumulator from `y`,
/// otherwise it comes from `bias` (or zero when `bias` is empty).
fn gemm_t_core_f32<const ACC: bool>(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(wt.len(), in_dim * out_dim);
    debug_assert_eq!(y.len(), n * out_dim);
    let init_tile = |y: &[f32], r: usize, o: usize| -> [f32; F32_LANES] {
        let mut t = [0.0f32; F32_LANES];
        if ACC {
            t.copy_from_slice(&y[r * out_dim + o..][..F32_LANES]);
        } else if !bias.is_empty() {
            t.copy_from_slice(&bias[o..o + F32_LANES]);
        }
        t
    };
    let init_scalar = |y: &[f32], r: usize, o: usize| -> f32 {
        if ACC {
            y[r * out_dim + o]
        } else if bias.is_empty() {
            0.0
        } else {
            bias[o]
        }
    };

    let mr_end = n - n % MR32;
    let nr_end = out_dim - out_dim % F32_LANES;
    let mut r = 0;
    while r < mr_end {
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let mut a0 = init_tile(y, r, o);
            let mut a1 = init_tile(y, r + 1, o);
            let mut a2 = init_tile(y, r + 2, o);
            let mut a3 = init_tile(y, r + 3, o);
            for i in 0..in_dim {
                let w: &[f32; F32_LANES] = head(&wt[i * out_dim + o..]);
                let (s0, s1, s2, s3) = (x0[i], x1[i], x2[i], x3[i]);
                for k in 0..F32_LANES {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            y[r * out_dim + o..][..F32_LANES].copy_from_slice(&a0);
            y[(r + 1) * out_dim + o..][..F32_LANES].copy_from_slice(&a1);
            y[(r + 2) * out_dim + o..][..F32_LANES].copy_from_slice(&a2);
            y[(r + 3) * out_dim + o..][..F32_LANES].copy_from_slice(&a3);
            o += F32_LANES;
        }
        // Half-width (4-lane) column tile for mid-size remainders (e.g. the
        // direction-fused `2d = 20` rows: 2×8 full tiles + one 4-lane tile).
        while o + F32_LANES / 2 <= out_dim {
            const H: usize = F32_LANES / 2;
            let init_half = |y: &[f32], r: usize, o: usize| -> [f32; H] {
                let mut t = [0.0f32; H];
                if ACC {
                    t.copy_from_slice(&y[r * out_dim + o..][..H]);
                } else if !bias.is_empty() {
                    t.copy_from_slice(&bias[o..o + H]);
                }
                t
            };
            let mut a0 = init_half(y, r, o);
            let mut a1 = init_half(y, r + 1, o);
            let mut a2 = init_half(y, r + 2, o);
            let mut a3 = init_half(y, r + 3, o);
            for i in 0..in_dim {
                let w: &[f32; H] = head(&wt[i * out_dim + o..]);
                let (s0, s1, s2, s3) = (x0[i], x1[i], x2[i], x3[i]);
                for k in 0..H {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            y[r * out_dim + o..][..H].copy_from_slice(&a0);
            y[(r + 1) * out_dim + o..][..H].copy_from_slice(&a1);
            y[(r + 2) * out_dim + o..][..H].copy_from_slice(&a2);
            y[(r + 3) * out_dim + o..][..H].copy_from_slice(&a3);
            o += H;
        }
        // Remainder outputs: one column across the 4-row panel.
        while o < out_dim {
            let mut a0 = init_scalar(y, r, o);
            let mut a1 = init_scalar(y, r + 1, o);
            let mut a2 = init_scalar(y, r + 2, o);
            let mut a3 = init_scalar(y, r + 3, o);
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                a0 += q * x0[i];
                a1 += q * x1[i];
                a2 += q * x2[i];
                a3 += q * x3[i];
            }
            y[r * out_dim + o] = a0;
            y[(r + 1) * out_dim + o] = a1;
            y[(r + 2) * out_dim + o] = a2;
            y[(r + 3) * out_dim + o] = a3;
            o += 1;
        }
        r += MR32;
    }
    // Remainder rows: per-row 8-lane axpy sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        let yr = &mut y[r * out_dim..][..out_dim];
        if !ACC {
            if bias.is_empty() {
                yr.fill(0.0);
            } else {
                yr.copy_from_slice(bias);
            }
        }
        for (i, &s) in xr.iter().enumerate() {
            axpy_f32(yr, &wt[i * out_dim..][..out_dim], s);
        }
        r += 1;
    }
}

// ---------------------------------------------------------------------------
// Quantised kernels (the int8-weight / bf16-stream inference engine)
// ---------------------------------------------------------------------------
//
// The quantised path stores weight matrices as **int8 with one f32 scale per
// output** (per-output-row of the original `out × in` weight, i.e. per column
// of the transposed layout the kernels consume) and the large precomputed
// streams as **bf16** (the top 16 bits of an f32, rounded to nearest-even).
// Activations stay f32 and every dot product accumulates in an f32 register:
// the kernels widen each int8 weight lane to f32, accumulate `x_i · q[i][k]`
// in ascending `i` order exactly like the f32 kernels, and apply the output's
// scale once at the end — so per-output results are `scale[o] · Σᵢ xᵢ q[i][o]`
// plus the initial value, deterministic across batch sizes and tile shapes.
//
// bf16 is encoded by hand (no external crates): a `u16` holding the sign,
// the 8 exponent bits and the top 7 mantissa bits of the f32 it was rounded
// from.  Decoding is a 16-bit shift — essentially free next to the memory
// traffic it halves.

/// Convert an `f32` to bf16 (`u16`) by truncation with round-to-nearest-even.
#[inline(always)]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep NaNs NaN: truncation alone could zero the payload bits and
        // produce an infinity pattern.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = ((bits >> 16) & 1) + 0x7fff;
    (bits.wrapping_add(round) >> 16) as u16
}

/// Decode a bf16 value (see [`f32_to_bf16`]) back to `f32`.
#[inline(always)]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Gather a bf16 row into an f32 buffer (`dst[k] = decode(src[k])`).
#[inline(always)]
pub fn gather_bf16(src: &[u16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = bf16_to_f32(s);
    }
}

/// Store an f32 row as bf16 (`dst[k] = encode(src[k])`).
#[inline(always)]
pub fn store_bf16(src: &[f32], dst: &mut [u16]) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = f32_to_bf16(s);
    }
}

/// Activation element of the quantised kernels: `f32`, or `u16` holding a
/// packed bf16 value (the stored per-node hidden sums).  Widening a packed
/// value is a 16-bit shift, amortised across all output lanes of a tile.
pub trait QuantActivation: Copy {
    /// Widen the stored element to f32.
    fn widen(self) -> f32;
}

impl QuantActivation for f32 {
    #[inline(always)]
    fn widen(self) -> f32 {
        self
    }
}

impl QuantActivation for u16 {
    #[inline(always)]
    fn widen(self) -> f32 {
        bf16_to_f32(self)
    }
}

/// `Y = (X Qᵀ) ∘ scale` with a transposed (`in_dim × out_dim`) int8 weight
/// and one f32 scale per output (outputs start from zero).  `wbuf` is a
/// caller-owned scratch the widened weight panel lives in for the duration
/// of the call (sized lazily, reused across calls — the quantised inference
/// path keeps one in its scratch so the hot loop never allocates).
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_into_i8(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_t_core_i8::<f32, false>(x, n, in_dim, out_dim, wq, scale, wbuf, y);
}

/// `Y += (X Qᵀ) ∘ scale` with a transposed int8 weight (accumulates onto `Y`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_acc_into_i8(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_t_core_i8::<f32, true>(x, n, in_dim, out_dim, wq, scale, wbuf, y);
}

/// [`gemm_t_acc_into_i8`] with **bf16 activations**: `x` is a row-major bf16
/// batch (e.g. the stored per-node hidden sums), decoded scalar-by-scalar on
/// load — each decoded value is reused across all output lanes of the tile,
/// so the convert cost is amortised 8-fold while the read traffic is halved.
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_acc_into_i8_bf16(
    x: &[u16],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_t_core_i8::<u16, true>(x, n, in_dim, out_dim, wq, scale, wbuf, y);
}

/// Rows per int8 register panel.
const MRQ: usize = 4;

/// Shared int8 kernel.  The quantised weight is **widened once per call**
/// into `wbuf` (`in_dim × out_dim` f32 values — a few hundred elements that
/// stay L1-resident, amortised over the whole `n`-row batch), then the f32
/// core's 4-row panel of 8-lane column tiles sweeps the batch at full f32
/// speed; the per-output scale is applied once after each sweep, so every
/// output is `base + scale[o] · Σᵢ xᵢ q[i][o]` with the usual ascending-`i`
/// accumulation order.  `ACC = true` reads `base` from `y`, else zero.
#[allow(clippy::too_many_arguments)]
fn gemm_t_core_i8<E: QuantActivation, const ACC: bool>(
    x: &[E],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(wq.len(), in_dim * out_dim);
    debug_assert_eq!(scale.len(), out_dim);
    debug_assert_eq!(y.len(), n * out_dim);

    // Widen the int8 weight to f32 once; the panels below read only `wt`.
    wbuf.clear();
    wbuf.extend(wq.iter().map(|&q| q as f32));
    let wt: &[f32] = wbuf;

    let mr_end = n - n % MRQ;
    let nr_end = out_dim - out_dim % F32_LANES;
    let mut r = 0;
    while r < mr_end {
        // Row slices of exactly `in_dim` elements let the bounds checks hoist
        // out of the inner loop (same trick as the f32 core).
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let mut a0 = [0.0f32; F32_LANES];
            let mut a1 = [0.0f32; F32_LANES];
            let mut a2 = [0.0f32; F32_LANES];
            let mut a3 = [0.0f32; F32_LANES];
            for i in 0..in_dim {
                let w: &[f32; F32_LANES] = head(&wt[i * out_dim + o..]);
                let (s0, s1, s2, s3) = (x0[i].widen(), x1[i].widen(), x2[i].widen(), x3[i].widen());
                for k in 0..F32_LANES {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            let sc: &[f32; F32_LANES] = head(&scale[o..]);
            let y0: &mut [f32; F32_LANES] = head_mut(&mut y[r * out_dim + o..]);
            for k in 0..F32_LANES {
                let b = if ACC { y0[k] } else { 0.0 };
                y0[k] = b + a0[k] * sc[k];
            }
            let y1: &mut [f32; F32_LANES] = head_mut(&mut y[(r + 1) * out_dim + o..]);
            for k in 0..F32_LANES {
                let b = if ACC { y1[k] } else { 0.0 };
                y1[k] = b + a1[k] * sc[k];
            }
            let y2: &mut [f32; F32_LANES] = head_mut(&mut y[(r + 2) * out_dim + o..]);
            for k in 0..F32_LANES {
                let b = if ACC { y2[k] } else { 0.0 };
                y2[k] = b + a2[k] * sc[k];
            }
            let y3: &mut [f32; F32_LANES] = head_mut(&mut y[(r + 3) * out_dim + o..]);
            for k in 0..F32_LANES {
                let b = if ACC { y3[k] } else { 0.0 };
                y3[k] = b + a3[k] * sc[k];
            }
            o += F32_LANES;
        }
        // Half-width (4-lane) column tile for mid-size remainders (e.g. the
        // direction-fused `2d = 20` rows: 2×8 full tiles + one 4-lane tile),
        // mirroring the f32 core.
        while o + F32_LANES / 2 <= out_dim {
            const H: usize = F32_LANES / 2;
            let mut a0 = [0.0f32; H];
            let mut a1 = [0.0f32; H];
            let mut a2 = [0.0f32; H];
            let mut a3 = [0.0f32; H];
            for i in 0..in_dim {
                let w: &[f32; H] = head(&wt[i * out_dim + o..]);
                let (s0, s1, s2, s3) = (x0[i].widen(), x1[i].widen(), x2[i].widen(), x3[i].widen());
                for k in 0..H {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            let sc: &[f32; H] = head(&scale[o..]);
            let y0: &mut [f32; H] = head_mut(&mut y[r * out_dim + o..]);
            for k in 0..H {
                let b = if ACC { y0[k] } else { 0.0 };
                y0[k] = b + a0[k] * sc[k];
            }
            let y1: &mut [f32; H] = head_mut(&mut y[(r + 1) * out_dim + o..]);
            for k in 0..H {
                let b = if ACC { y1[k] } else { 0.0 };
                y1[k] = b + a1[k] * sc[k];
            }
            let y2: &mut [f32; H] = head_mut(&mut y[(r + 2) * out_dim + o..]);
            for k in 0..H {
                let b = if ACC { y2[k] } else { 0.0 };
                y2[k] = b + a2[k] * sc[k];
            }
            let y3: &mut [f32; H] = head_mut(&mut y[(r + 3) * out_dim + o..]);
            for k in 0..H {
                let b = if ACC { y3[k] } else { 0.0 };
                y3[k] = b + a3[k] * sc[k];
            }
            o += H;
        }
        // Remainder outputs: one column across the 4-row panel.
        while o < out_dim {
            let mut a0 = 0.0f32;
            let mut a1 = 0.0f32;
            let mut a2 = 0.0f32;
            let mut a3 = 0.0f32;
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                a0 += q * x0[i].widen();
                a1 += q * x1[i].widen();
                a2 += q * x2[i].widen();
                a3 += q * x3[i].widen();
            }
            let s = scale[o];
            let b0 = if ACC { y[r * out_dim + o] } else { 0.0 };
            let b1 = if ACC { y[(r + 1) * out_dim + o] } else { 0.0 };
            let b2 = if ACC { y[(r + 2) * out_dim + o] } else { 0.0 };
            let b3 = if ACC { y[(r + 3) * out_dim + o] } else { 0.0 };
            y[r * out_dim + o] = b0 + a0 * s;
            y[(r + 1) * out_dim + o] = b1 + a1 * s;
            y[(r + 2) * out_dim + o] = b2 + a2 * s;
            y[(r + 3) * out_dim + o] = b3 + a3 * s;
            o += 1;
        }
        r += MRQ;
    }
    // Remainder rows: per-row sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        for o in 0..out_dim {
            let mut acc = 0.0f32;
            for i in 0..in_dim {
                acc += wt[i * out_dim + o] * xr[i].widen();
            }
            let b = if ACC { y[r * out_dim + o] } else { 0.0 };
            y[r * out_dim + o] = b + acc * scale[o];
        }
        r += 1;
    }
}

// ---------------------------------------------------------------------------
// Multi-column (batched right-hand-side) kernels
// ---------------------------------------------------------------------------
//
// The batched inference path threads `b` independent right-hand sides through
// one panel sweep.  Activations live in **column-interleaved panels**: a
// `n × dim` matrix of length-`b` element groups, so column `c`'s value of
// element `(r, i)` sits at `x[(r*dim + i)*b + c]`.  Every weight element is
// loaded once and broadcast across the `b` columns — that single load serving
// `b` multiply-adds is where the bandwidth amortisation comes from.
//
// **Determinism contract, batched form:** each column's output element still
// accumulates its dot product strictly in ascending `i` order from its
// initial value, with a separate multiply and add per term.  Column `c` of a
// batched panel is therefore bit-identical to the unbatched kernel run on
// column `c` alone — at every batch width `b`, not just `b = 1`.

/// Widest column group handled by one register tile; wider batches sweep in
/// chunks of this size (chunking over `c` never reorders any column's
/// accumulation).
const B_CHUNK: usize = 8;

/// `Y = X Wᵀ + bias` over a column-interleaved `n × in_dim × b` panel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_into_b(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_b_core::<false>(x, n, in_dim, out_dim, b, weight, bias, y);
}

/// `Y = X Wᵀ` over a column-interleaved panel (outputs start from zero).
pub fn gemm_into_b(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_b_core::<false>(x, n, in_dim, out_dim, b, weight, &[], y);
}

/// `Y += X Wᵀ` over a column-interleaved panel (accumulates onto `Y`).
pub fn gemm_acc_into_b(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_b_core::<true>(x, n, in_dim, out_dim, b, weight, &[], y);
}

#[allow(clippy::too_many_arguments)]
fn gemm_b_core<const ACC: bool>(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(x.len(), n * in_dim * b);
    debug_assert_eq!(weight.len(), out_dim * in_dim);
    debug_assert_eq!(y.len(), n * out_dim * b);
    let mut c0 = 0;
    while c0 + B_CHUNK <= b {
        gemm_b_panel::<B_CHUNK, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y);
        c0 += B_CHUNK;
    }
    match b - c0 {
        1 => gemm_b_panel::<1, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        2 => gemm_b_panel::<2, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        3 => gemm_b_panel::<3, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        4 => gemm_b_panel::<4, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        5 => gemm_b_panel::<5, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        6 => gemm_b_panel::<6, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        7 => gemm_b_panel::<7, ACC>(x, n, in_dim, out_dim, b, c0, weight, bias, y),
        _ => {}
    }
}

/// Process columns `[c0, c0 + B)` of the batched f64 GEMM: a 4-row panel
/// whose register tile is `B` columns wide per output; the weight scalar is
/// loaded once per `(o, i)` and broadcast over all `B` columns.
#[allow(clippy::too_many_arguments)]
fn gemm_b_panel<const B: usize, const ACC: bool>(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    c0: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    let init = |y: &[f64], r: usize, o: usize| -> [f64; B] {
        let mut t = [0.0; B];
        if ACC {
            t.copy_from_slice(&y[(r * out_dim + o) * b + c0..][..B]);
        } else if !bias.is_empty() {
            t.fill(bias[o]);
        }
        t
    };
    let row_w = in_dim * b;
    let mr_end = n - n % MR;
    let mut r = 0;
    while r < mr_end {
        let x0 = &x[r * row_w..][..row_w];
        let x1 = &x[(r + 1) * row_w..][..row_w];
        let x2 = &x[(r + 2) * row_w..][..row_w];
        let x3 = &x[(r + 3) * row_w..][..row_w];
        for o in 0..out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut a0 = init(y, r, o);
            let mut a1 = init(y, r + 1, o);
            let mut a2 = init(y, r + 2, o);
            let mut a3 = init(y, r + 3, o);
            for (i, &q) in w.iter().enumerate() {
                let p0: &[f64; B] = head(&x0[i * b + c0..]);
                let p1: &[f64; B] = head(&x1[i * b + c0..]);
                let p2: &[f64; B] = head(&x2[i * b + c0..]);
                let p3: &[f64; B] = head(&x3[i * b + c0..]);
                for c in 0..B {
                    a0[c] += q * p0[c];
                    a1[c] += q * p1[c];
                    a2[c] += q * p2[c];
                    a3[c] += q * p3[c];
                }
            }
            y[(r * out_dim + o) * b + c0..][..B].copy_from_slice(&a0);
            y[((r + 1) * out_dim + o) * b + c0..][..B].copy_from_slice(&a1);
            y[((r + 2) * out_dim + o) * b + c0..][..B].copy_from_slice(&a2);
            y[((r + 3) * out_dim + o) * b + c0..][..B].copy_from_slice(&a3);
        }
        r += MR;
    }
    while r < n {
        let xr = &x[r * row_w..][..row_w];
        for o in 0..out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut a = init(y, r, o);
            for (i, &q) in w.iter().enumerate() {
                let p: &[f64; B] = head(&xr[i * b + c0..]);
                for c in 0..B {
                    a[c] += q * p[c];
                }
            }
            y[(r * out_dim + o) * b + c0..][..B].copy_from_slice(&a);
        }
        r += 1;
    }
}

/// `Y = X Wᵀ + bias` over a column-interleaved f32 panel with a transposed
/// (`in_dim × out_dim`) weight.
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_bias_into_f32_b(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_tb_core_f32::<false>(x, n, in_dim, out_dim, b, wt, bias, y);
}

/// `Y = X Wᵀ` over a column-interleaved f32 panel (outputs start from zero).
pub fn gemm_t_into_f32_b(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_tb_core_f32::<false>(x, n, in_dim, out_dim, b, wt, &[], y);
}

/// `Y += X Wᵀ` over a column-interleaved f32 panel (accumulates onto `Y`).
pub fn gemm_t_acc_into_f32_b(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_tb_core_f32::<true>(x, n, in_dim, out_dim, b, wt, &[], y);
}

#[allow(clippy::too_many_arguments)]
fn gemm_tb_core_f32<const ACC: bool>(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(x.len(), n * in_dim * b);
    debug_assert_eq!(wt.len(), in_dim * out_dim);
    debug_assert_eq!(y.len(), n * out_dim * b);
    let mut c0 = 0;
    while c0 + B_CHUNK <= b {
        gemm_tb_panel_f32::<B_CHUNK, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y);
        c0 += B_CHUNK;
    }
    match b - c0 {
        1 => gemm_tb_panel_f32::<1, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        2 => gemm_tb_panel_f32::<2, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        3 => gemm_tb_panel_f32::<3, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        4 => gemm_tb_panel_f32::<4, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        5 => gemm_tb_panel_f32::<5, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        6 => gemm_tb_panel_f32::<6, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        7 => gemm_tb_panel_f32::<7, ACC>(x, n, in_dim, out_dim, b, c0, wt, bias, y),
        _ => {}
    }
}

/// Columns `[c0, c0 + B)` of the batched f32 GEMM over a transposed weight:
/// the weight scalar `wt[i][o]` is loaded once and broadcast across the `B`
/// columns of a 4-row register panel.
#[allow(clippy::too_many_arguments)]
fn gemm_tb_panel_f32<const B: usize, const ACC: bool>(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    c0: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    let init = |y: &[f32], r: usize, o: usize| -> [f32; B] {
        let mut t = [0.0f32; B];
        if ACC {
            t.copy_from_slice(&y[(r * out_dim + o) * b + c0..][..B]);
        } else if !bias.is_empty() {
            t.fill(bias[o]);
        }
        t
    };
    let row_w = in_dim * b;
    let mr_end = n - n % MR32;
    let mut r = 0;
    while r < mr_end {
        let x0 = &x[r * row_w..][..row_w];
        let x1 = &x[(r + 1) * row_w..][..row_w];
        let x2 = &x[(r + 2) * row_w..][..row_w];
        let x3 = &x[(r + 3) * row_w..][..row_w];
        for o in 0..out_dim {
            let mut a0 = init(y, r, o);
            let mut a1 = init(y, r + 1, o);
            let mut a2 = init(y, r + 2, o);
            let mut a3 = init(y, r + 3, o);
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                let p0: &[f32; B] = head(&x0[i * b + c0..]);
                let p1: &[f32; B] = head(&x1[i * b + c0..]);
                let p2: &[f32; B] = head(&x2[i * b + c0..]);
                let p3: &[f32; B] = head(&x3[i * b + c0..]);
                for c in 0..B {
                    a0[c] += q * p0[c];
                    a1[c] += q * p1[c];
                    a2[c] += q * p2[c];
                    a3[c] += q * p3[c];
                }
            }
            y[(r * out_dim + o) * b + c0..][..B].copy_from_slice(&a0);
            y[((r + 1) * out_dim + o) * b + c0..][..B].copy_from_slice(&a1);
            y[((r + 2) * out_dim + o) * b + c0..][..B].copy_from_slice(&a2);
            y[((r + 3) * out_dim + o) * b + c0..][..B].copy_from_slice(&a3);
        }
        r += MR32;
    }
    while r < n {
        let xr = &x[r * row_w..][..row_w];
        for o in 0..out_dim {
            let mut a = init(y, r, o);
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                let p: &[f32; B] = head(&xr[i * b + c0..]);
                for c in 0..B {
                    a[c] += q * p[c];
                }
            }
            y[(r * out_dim + o) * b + c0..][..B].copy_from_slice(&a);
        }
        r += 1;
    }
}

/// `Y = (X Qᵀ) ∘ scale` over a column-interleaved panel with a transposed
/// int8 weight (outputs start from zero; see [`gemm_t_into_i8`]).
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_into_i8_b(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_tb_core_i8::<f32, false>(x, n, in_dim, out_dim, b, wq, scale, wbuf, y);
}

/// `Y += (X Qᵀ) ∘ scale` over a column-interleaved panel (accumulates).
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_acc_into_i8_b(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_tb_core_i8::<f32, true>(x, n, in_dim, out_dim, b, wq, scale, wbuf, y);
}

/// [`gemm_t_acc_into_i8_b`] with **bf16 activations** (the stored per-node
/// hidden-sum panels), decoded on load.
#[allow(clippy::too_many_arguments)]
pub fn gemm_t_acc_into_i8_bf16_b(
    x: &[u16],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    gemm_tb_core_i8::<u16, true>(x, n, in_dim, out_dim, b, wq, scale, wbuf, y);
}

#[allow(clippy::too_many_arguments)]
fn gemm_tb_core_i8<E: QuantActivation, const ACC: bool>(
    x: &[E],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    wq: &[i8],
    scale: &[f32],
    wbuf: &mut Vec<f32>,
    y: &mut [f32],
) {
    debug_assert_eq!(x.len(), n * in_dim * b);
    debug_assert_eq!(wq.len(), in_dim * out_dim);
    debug_assert_eq!(scale.len(), out_dim);
    debug_assert_eq!(y.len(), n * out_dim * b);
    // Widen the int8 weight to f32 once per call, like the unbatched core.
    wbuf.clear();
    wbuf.extend(wq.iter().map(|&q| q as f32));
    let mut c0 = 0;
    while c0 + B_CHUNK <= b {
        gemm_tb_panel_i8::<E, B_CHUNK, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y);
        c0 += B_CHUNK;
    }
    match b - c0 {
        1 => gemm_tb_panel_i8::<E, 1, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        2 => gemm_tb_panel_i8::<E, 2, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        3 => gemm_tb_panel_i8::<E, 3, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        4 => gemm_tb_panel_i8::<E, 4, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        5 => gemm_tb_panel_i8::<E, 5, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        6 => gemm_tb_panel_i8::<E, 6, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        7 => gemm_tb_panel_i8::<E, 7, ACC>(x, n, in_dim, out_dim, b, c0, wbuf, scale, y),
        _ => {}
    }
}

/// Columns `[c0, c0 + B)` of the batched int8 GEMM: zero-initialised f32
/// accumulation in ascending `i` order, per-output scale applied once after
/// the sweep — `y = base + acc · scale[o]` per column, exactly like the
/// unbatched quantised core.
#[allow(clippy::too_many_arguments)]
fn gemm_tb_panel_i8<E: QuantActivation, const B: usize, const ACC: bool>(
    x: &[E],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    b: usize,
    c0: usize,
    wt: &[f32],
    scale: &[f32],
    y: &mut [f32],
) {
    let row_w = in_dim * b;
    let store = |y: &mut [f32], r: usize, o: usize, a: &[f32; B], s: f32| {
        let yr = &mut y[(r * out_dim + o) * b + c0..][..B];
        for c in 0..B {
            let base = if ACC { yr[c] } else { 0.0 };
            yr[c] = base + a[c] * s;
        }
    };
    let mr_end = n - n % MRQ;
    let mut r = 0;
    while r < mr_end {
        let x0 = &x[r * row_w..][..row_w];
        let x1 = &x[(r + 1) * row_w..][..row_w];
        let x2 = &x[(r + 2) * row_w..][..row_w];
        let x3 = &x[(r + 3) * row_w..][..row_w];
        for o in 0..out_dim {
            let mut a0 = [0.0f32; B];
            let mut a1 = [0.0f32; B];
            let mut a2 = [0.0f32; B];
            let mut a3 = [0.0f32; B];
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                let p0 = &x0[i * b + c0..][..B];
                let p1 = &x1[i * b + c0..][..B];
                let p2 = &x2[i * b + c0..][..B];
                let p3 = &x3[i * b + c0..][..B];
                for c in 0..B {
                    a0[c] += q * p0[c].widen();
                    a1[c] += q * p1[c].widen();
                    a2[c] += q * p2[c].widen();
                    a3[c] += q * p3[c].widen();
                }
            }
            let s = scale[o];
            store(y, r, o, &a0, s);
            store(y, r + 1, o, &a1, s);
            store(y, r + 2, o, &a2, s);
            store(y, r + 3, o, &a3, s);
        }
        r += MRQ;
    }
    while r < n {
        let xr = &x[r * row_w..][..row_w];
        for o in 0..out_dim {
            let mut a = [0.0f32; B];
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                let p = &xr[i * b + c0..][..B];
                for c in 0..B {
                    a[c] += q * p[c].widen();
                }
            }
            store(y, r, o, &a, scale[o]);
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[allow(clippy::too_many_arguments)]
    fn naive(
        x: &[f64],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        weight: &[f64],
        bias: &[f64],
        y0: &[f64],
        acc: bool,
    ) -> Vec<f64> {
        let mut y = vec![0.0; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = if acc {
                    y0[r * out_dim + o]
                } else if bias.is_empty() {
                    0.0
                } else {
                    bias[o]
                };
                for i in 0..in_dim {
                    a += weight[o * in_dim + i] * x[r * in_dim + i];
                }
                y[r * out_dim + o] = a;
            }
        }
        y
    }

    #[test]
    fn blocked_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        // Cover every tile-remainder combination: n and out_dim spanning 0..2
        // full tiles plus partials, in_dim from empty to odd sizes.
        for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 23] {
            for &out_dim in &[1usize, 2, 3, 4, 5, 8, 10, 13] {
                for &in_dim in &[0usize, 1, 3, 10, 23, 31] {
                    let x: Vec<f64> = (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    let w: Vec<f64> =
                        (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let b: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();

                    let mut y = vec![0.0; n * out_dim];
                    gemm_bias_into(&x, n, in_dim, out_dim, &w, &b, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &b, &[], false));

                    let mut y = vec![0.0; n * out_dim];
                    gemm_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &[], false));

                    let y0: Vec<f64> = (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let mut y = y0.clone();
                    gemm_acc_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &y0, true));
                }
            }
        }
    }

    #[test]
    fn accumulate_composes_with_bias_init() {
        // bias-init followed by two accumulations equals the fused sum the
        // plan path relies on: Ψ pre-activation = c-term + Σ GEMM terms.
        let n = 6;
        let (din, dout) = (5, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let xa: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xb: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wa: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wb: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bias: Vec<f64> = (0..dout).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n * dout];
        gemm_bias_into(&xa, n, din, dout, &wa, &bias, &mut y);
        gemm_acc_into(&xb, n, din, dout, &wb, &mut y);
        let first = naive(&xa, n, din, dout, &wa, &bias, &[], false);
        let both = naive(&xb, n, din, dout, &wb, &[], &first, true);
        assert_eq!(y, both);
    }

    #[allow(clippy::too_many_arguments)]
    fn naive_f32(
        x: &[f32],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        wt: &[f32],
        bias: &[f32],
        y0: &[f32],
        acc: bool,
    ) -> Vec<f32> {
        let mut y = vec![0.0f32; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = if acc {
                    y0[r * out_dim + o]
                } else if bias.is_empty() {
                    0.0
                } else {
                    bias[o]
                };
                for i in 0..in_dim {
                    a += wt[i * out_dim + o] * x[r * in_dim + i];
                }
                y[r * out_dim + o] = a;
            }
        }
        y
    }

    #[test]
    fn f32_panel_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        // Span full/partial 4-row panels and full/partial 8-lane column tiles.
        for &n in &[0usize, 1, 3, 4, 5, 8, 9, 17] {
            for &out_dim in &[1usize, 2, 7, 8, 9, 10, 16, 19] {
                for &in_dim in &[0usize, 1, 3, 10, 23] {
                    let x: Vec<f32> =
                        (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
                    let wt: Vec<f32> =
                        (0..in_dim * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
                    let b: Vec<f32> =
                        (0..out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();

                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_bias_into_f32(&x, n, in_dim, out_dim, &wt, &b, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &b, &[], false));

                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_into_f32(&x, n, in_dim, out_dim, &wt, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &[], &[], false));

                    let y0: Vec<f32> =
                        (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
                    let mut y = y0.clone();
                    gemm_t_acc_into_f32(&x, n, in_dim, out_dim, &wt, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &[], &y0, true));
                }
            }
        }
    }

    #[test]
    fn f32_kernel_tracks_f64_kernel_closely() {
        // The f32 kernels must agree with their f64 counterparts to single
        // precision: same math, different rounding.
        let mut rng = StdRng::seed_from_u64(29);
        let (n, in_dim, out_dim) = (13, 10, 10);
        let x: Vec<f64> = (0..n * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w: Vec<f64> = (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y64 = vec![0.0; n * out_dim];
        gemm_bias_into(&x, n, in_dim, out_dim, &w, &b, &mut y64);

        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        // Transpose the row-major out×in weight into in×out.
        let mut wt = vec![0.0f32; in_dim * out_dim];
        for o in 0..out_dim {
            for i in 0..in_dim {
                wt[i * out_dim + o] = w[o * in_dim + i] as f32;
            }
        }
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut y32 = vec![0.0f32; n * out_dim];
        gemm_t_bias_into_f32(&x32, n, in_dim, out_dim, &wt, &b32, &mut y32);
        for (a, b) in y32.iter().zip(y64.iter()) {
            assert!((*a as f64 - b).abs() < 1e-5, "f32 {a} vs f64 {b}");
        }
    }

    #[test]
    fn bf16_roundtrip_properties() {
        // Values representable in 8 mantissa bits survive the roundtrip
        // exactly.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 96.0, -0.015625, 1.5] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v, "exact value {v} must roundtrip");
        }
        // Rounding is to nearest: the roundtrip error is bounded by half a
        // bf16 ulp (2⁻⁸ relative).
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..2000 {
            let v = rng.gen_range(-100.0..100.0) as f32;
            let r = bf16_to_f32(f32_to_bf16(v));
            assert!(
                (r - v).abs() <= v.abs() * (1.0 / 256.0),
                "bf16 roundtrip of {v} gave {r} (error too large)"
            );
        }
        // Ties round to even (truncation alone would keep the odd mantissa).
        let odd = f32::from_bits(0x3f81_8000); // mantissa …1, tie
        assert_eq!(f32_to_bf16(odd), 0x3f82, "ties must round to even");
        // Specials stay what they are.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan(), "NaN must stay NaN");
        // Overflow saturates to infinity like IEEE round-to-nearest.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::MAX)), f32::INFINITY);
    }

    #[test]
    fn bf16_gather_and_store_roundtrip() {
        let src: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.37).collect();
        let mut packed = vec![0u16; src.len()];
        store_bf16(&src, &mut packed);
        let mut back = vec![0.0f32; src.len()];
        gather_bf16(&packed, &mut back);
        for (a, b) in back.iter().zip(src.iter()) {
            assert!((a - b).abs() <= b.abs() * (1.0 / 256.0) + 1e-9);
        }
    }

    /// Reference for the int8 kernels: per-output scaled dot product over the
    /// widened quantised weight, plus the initial value.
    #[allow(clippy::too_many_arguments)]
    fn naive_i8(
        x: &[f32],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        wq: &[i8],
        scale: &[f32],
        y0: &[f32],
        acc: bool,
    ) -> Vec<f32> {
        let mut y = vec![0.0f32; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = 0.0f32;
                for i in 0..in_dim {
                    a += (wq[i * out_dim + o] as f32) * x[r * in_dim + i];
                }
                let base = if acc { y0[r * out_dim + o] } else { 0.0 };
                y[r * out_dim + o] = base + a * scale[o];
            }
        }
        y
    }

    #[test]
    fn i8_panel_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut wbuf = Vec::new();
        for &n in &[0usize, 1, 3, 4, 5, 8, 9, 17] {
            for &out_dim in &[1usize, 2, 7, 8, 9, 10, 16, 20] {
                for &in_dim in &[0usize, 1, 3, 10, 23] {
                    let x: Vec<f32> =
                        (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
                    let wq: Vec<i8> =
                        (0..in_dim * out_dim).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
                    let scale: Vec<f32> =
                        (0..out_dim).map(|_| rng.gen_range(0.001..0.1) as f32).collect();

                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_into_i8(&x, n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y);
                    assert_eq!(y, naive_i8(&x, n, in_dim, out_dim, &wq, &scale, &[], false));

                    let y0: Vec<f32> =
                        (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
                    let mut y = y0.clone();
                    gemm_t_acc_into_i8(&x, n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y);
                    assert_eq!(y, naive_i8(&x, n, in_dim, out_dim, &wq, &scale, &y0, true));

                    // bf16-activation variant: decode the packed input first
                    // and the result must match the f32 kernel on the decoded
                    // values bit-for-bit.
                    let packed: Vec<u16> = x.iter().map(|&v| f32_to_bf16(v)).collect();
                    let decoded: Vec<f32> = packed.iter().map(|&b| bf16_to_f32(b)).collect();
                    let mut y = y0.clone();
                    gemm_t_acc_into_i8_bf16(
                        &packed, n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y,
                    );
                    assert_eq!(y, naive_i8(&decoded, n, in_dim, out_dim, &wq, &scale, &y0, true));
                }
            }
        }
    }

    #[test]
    fn i8_kernel_tracks_f32_kernel_within_quantisation_error() {
        // Quantise an f32 weight per output column and check the int8 kernel
        // stays within the expected quantisation error of the exact product.
        let mut rng = StdRng::seed_from_u64(61);
        let (n, in_dim, out_dim) = (13, 10, 10);
        let x: Vec<f32> = (0..n * in_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
        let wt: Vec<f32> = (0..in_dim * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
        let mut wq = vec![0i8; wt.len()];
        let mut scale = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            let amax = (0..in_dim).map(|i| wt[i * out_dim + o].abs()).fold(0.0f32, f32::max);
            let s = if amax == 0.0 { 1.0 } else { amax / 127.0 };
            scale[o] = s;
            for i in 0..in_dim {
                wq[i * out_dim + o] = (wt[i * out_dim + o] / s).round().clamp(-127.0, 127.0) as i8;
            }
        }
        let mut exact = vec![0.0f32; n * out_dim];
        gemm_t_into_f32(&x, n, in_dim, out_dim, &wt, &mut exact);
        let mut quant = vec![0.0f32; n * out_dim];
        let mut wbuf = Vec::new();
        gemm_t_into_i8(&x, n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut quant);
        // Worst case per output: in_dim · (scale/2) · max|x|.
        for (r, (q, e)) in quant.iter().zip(exact.iter()).enumerate() {
            let bound = in_dim as f32 * scale[r % out_dim] * 0.5 * 1.0 + 1e-6;
            assert!((q - e).abs() <= bound, "int8 {q} vs f32 {e} (bound {bound})");
        }
    }

    /// Interleave `b` column matrices (each `rows × dim`) into one
    /// column-interleaved panel `rows × dim × b`.
    fn interleave<T: Copy + Default>(cols: &[Vec<T>], rows: usize, dim: usize) -> Vec<T> {
        let b = cols.len();
        let mut panel = vec![T::default(); rows * dim * b];
        for (c, col) in cols.iter().enumerate() {
            for e in 0..rows * dim {
                panel[e * b + c] = col[e];
            }
        }
        panel
    }

    fn extract_column<T: Copy + Default>(panel: &[T], b: usize, c: usize) -> Vec<T> {
        panel.iter().skip(c).step_by(b).copied().collect()
    }

    #[test]
    fn batched_f64_columns_bit_identical_to_unbatched() {
        let mut rng = StdRng::seed_from_u64(91);
        for &b in &[1usize, 2, 3, 5, 8, 11] {
            for &(n, in_dim, out_dim) in
                &[(0usize, 3usize, 2usize), (1, 10, 10), (5, 10, 20), (9, 20, 10), (23, 7, 5)]
            {
                let xs: Vec<Vec<f64>> = (0..b)
                    .map(|_| (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
                    .collect();
                let w: Vec<f64> = (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let bias: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let y0s: Vec<Vec<f64>> = (0..b)
                    .map(|_| (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect();
                let xp = interleave(&xs, n, in_dim);

                let mut yp = vec![0.0; n * out_dim * b];
                gemm_bias_into_b(&xp, n, in_dim, out_dim, b, &w, &bias, &mut yp);
                for c in 0..b {
                    let mut y = vec![0.0; n * out_dim];
                    gemm_bias_into(&xs[c], n, in_dim, out_dim, &w, &bias, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "bias b={b} c={c}");
                }

                let mut yp = vec![0.0; n * out_dim * b];
                gemm_into_b(&xp, n, in_dim, out_dim, b, &w, &mut yp);
                for c in 0..b {
                    let mut y = vec![0.0; n * out_dim];
                    gemm_into(&xs[c], n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "zero-init b={b} c={c}");
                }

                let mut yp = interleave(&y0s, n, out_dim);
                gemm_acc_into_b(&xp, n, in_dim, out_dim, b, &w, &mut yp);
                for c in 0..b {
                    let mut y = y0s[c].clone();
                    gemm_acc_into(&xs[c], n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "acc b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn batched_f32_columns_bit_identical_to_unbatched() {
        let mut rng = StdRng::seed_from_u64(92);
        for &b in &[1usize, 2, 4, 7, 8, 9] {
            for &(n, in_dim, out_dim) in
                &[(1usize, 10usize, 10usize), (4, 20, 10), (9, 10, 20), (17, 9, 13)]
            {
                let xs: Vec<Vec<f32>> = (0..b)
                    .map(|_| (0..n * in_dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                    .collect();
                let wt: Vec<f32> =
                    (0..in_dim * out_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let bias: Vec<f32> = (0..out_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let y0s: Vec<Vec<f32>> = (0..b)
                    .map(|_| (0..n * out_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                    .collect();
                let xp = interleave(&xs, n, in_dim);

                let mut yp = vec![0.0f32; n * out_dim * b];
                gemm_t_bias_into_f32_b(&xp, n, in_dim, out_dim, b, &wt, &bias, &mut yp);
                for c in 0..b {
                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_bias_into_f32(&xs[c], n, in_dim, out_dim, &wt, &bias, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "f32 bias b={b} c={c}");
                }

                let mut yp = interleave(&y0s, n, out_dim);
                gemm_t_acc_into_f32_b(&xp, n, in_dim, out_dim, b, &wt, &mut yp);
                for c in 0..b {
                    let mut y = y0s[c].clone();
                    gemm_t_acc_into_f32(&xs[c], n, in_dim, out_dim, &wt, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "f32 acc b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn batched_i8_columns_bit_identical_to_unbatched() {
        let mut rng = StdRng::seed_from_u64(93);
        for &b in &[1usize, 3, 8] {
            for &(n, in_dim, out_dim) in &[(1usize, 10usize, 10usize), (6, 20, 10), (13, 10, 20)] {
                let xs: Vec<Vec<f32>> = (0..b)
                    .map(|_| (0..n * in_dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                    .collect();
                let wq: Vec<i8> =
                    (0..in_dim * out_dim).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
                let scale: Vec<f32> = (0..out_dim).map(|_| rng.gen_range(0.001f32..0.02)).collect();
                let y0s: Vec<Vec<f32>> = (0..b)
                    .map(|_| (0..n * out_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                    .collect();
                let xp = interleave(&xs, n, in_dim);
                let mut wbuf = Vec::new();

                let mut yp = vec![0.0f32; n * out_dim * b];
                gemm_t_into_i8_b(&xp, n, in_dim, out_dim, b, &wq, &scale, &mut wbuf, &mut yp);
                for c in 0..b {
                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_into_i8(&xs[c], n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "i8 b={b} c={c}");
                }

                let mut yp = interleave(&y0s, n, out_dim);
                gemm_t_acc_into_i8_b(&xp, n, in_dim, out_dim, b, &wq, &scale, &mut wbuf, &mut yp);
                for c in 0..b {
                    let mut y = y0s[c].clone();
                    gemm_t_acc_into_i8(&xs[c], n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y);
                    assert_eq!(extract_column(&yp, b, c), y, "i8 acc b={b} c={c}");
                }

                // bf16 activations: the per-element decode must commute with
                // batching as well.
                let xbs: Vec<Vec<u16>> =
                    xs.iter().map(|col| col.iter().map(|&v| f32_to_bf16(v)).collect()).collect();
                let xbp = interleave(&xbs, n, in_dim);
                let mut yp = interleave(&y0s, n, out_dim);
                gemm_t_acc_into_i8_bf16_b(
                    &xbp, n, in_dim, out_dim, b, &wq, &scale, &mut wbuf, &mut yp,
                );
                for c in 0..b {
                    let mut y = y0s[c].clone();
                    gemm_t_acc_into_i8_bf16(
                        &xbs[c], n, in_dim, out_dim, &wq, &scale, &mut wbuf, &mut y,
                    );
                    assert_eq!(extract_column(&yp, b, c), y, "i8/bf16 b={b} c={c}");
                }
            }
        }
    }
}
