//! Cache- and register-blocked batch GEMM micro-kernels.
//!
//! All dense layers in this crate compute `Y = X Wᵀ (+ bias)` on row-major
//! batches: `X` is `n × in_dim`, `W` is `out_dim × in_dim` (one weight row per
//! output), `Y` is `n × out_dim`.  The batch dimension `n` is large (one row
//! per edge or per node of a sub-domain graph) while `in_dim`/`out_dim` are
//! small (the latent dimension `d ≈ 10`), so the kernels panel over the batch:
//! a register tile of [`MR`]` × `[`NR`] accumulators walks the shared `in_dim`
//! axis once, giving `MR·NR` multiply-adds per `MR + NR` loads and `MR·NR`
//! independent dependency chains for the CPU to overlap (the naive row-by-row
//! GEMV has a single serial add chain per output).  The weight panel stays
//! resident in cache across the whole batch sweep.
//!
//! **Determinism contract:** every output element accumulates its dot product
//! strictly in ascending `i` order starting from its initial value (bias,
//! zero, or the prior `Y` entry).  Blocking only regroups *independent*
//! output elements, so the results are bit-identical to the scalar triple
//! loop these kernels replaced — at every tile shape and every batch size.

/// Batch rows per register tile.
const MR: usize = 4;
/// Output columns per register tile.
const NR: usize = 4;

/// `Y = X Wᵀ + bias` (each output element starts from its bias).
pub fn gemm_bias_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_core::<false>(x, n, in_dim, out_dim, weight, bias, y);
}

/// `Y = X Wᵀ` (outputs start from zero).
pub fn gemm_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<false>(x, n, in_dim, out_dim, weight, &[], y);
}

/// `Y += X Wᵀ` (outputs accumulate onto the existing `Y`).
pub fn gemm_acc_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<true>(x, n, in_dim, out_dim, weight, &[], y);
}

/// Shared blocked kernel.  `ACC = true` reads the initial accumulator from
/// `y`; otherwise it comes from `bias` (or zero when `bias` is empty).
fn gemm_core<const ACC: bool>(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(weight.len(), out_dim * in_dim);
    debug_assert_eq!(y.len(), n * out_dim);
    let init = |y: &[f64], r: usize, o: usize| -> f64 {
        if ACC {
            y[r * out_dim + o]
        } else if bias.is_empty() {
            0.0
        } else {
            bias[o]
        }
    };

    let mr_end = n - n % MR;
    let nr_end = out_dim - out_dim % NR;
    let mut r = 0;
    while r < mr_end {
        // Row slices of exactly `in_dim` elements let the bounds checks hoist
        // out of the inner loop.
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let w0 = &weight[o * in_dim..][..in_dim];
            let w1 = &weight[(o + 1) * in_dim..][..in_dim];
            let w2 = &weight[(o + 2) * in_dim..][..in_dim];
            let w3 = &weight[(o + 3) * in_dim..][..in_dim];
            let mut a00 = init(y, r, o);
            let mut a01 = init(y, r, o + 1);
            let mut a02 = init(y, r, o + 2);
            let mut a03 = init(y, r, o + 3);
            let mut a10 = init(y, r + 1, o);
            let mut a11 = init(y, r + 1, o + 1);
            let mut a12 = init(y, r + 1, o + 2);
            let mut a13 = init(y, r + 1, o + 3);
            let mut a20 = init(y, r + 2, o);
            let mut a21 = init(y, r + 2, o + 1);
            let mut a22 = init(y, r + 2, o + 2);
            let mut a23 = init(y, r + 2, o + 3);
            let mut a30 = init(y, r + 3, o);
            let mut a31 = init(y, r + 3, o + 1);
            let mut a32 = init(y, r + 3, o + 2);
            let mut a33 = init(y, r + 3, o + 3);
            for i in 0..in_dim {
                let (p0, p1, p2, p3) = (x0[i], x1[i], x2[i], x3[i]);
                let (q0, q1, q2, q3) = (w0[i], w1[i], w2[i], w3[i]);
                a00 += q0 * p0;
                a01 += q1 * p0;
                a02 += q2 * p0;
                a03 += q3 * p0;
                a10 += q0 * p1;
                a11 += q1 * p1;
                a12 += q2 * p1;
                a13 += q3 * p1;
                a20 += q0 * p2;
                a21 += q1 * p2;
                a22 += q2 * p2;
                a23 += q3 * p2;
                a30 += q0 * p3;
                a31 += q1 * p3;
                a32 += q2 * p3;
                a33 += q3 * p3;
            }
            y[r * out_dim + o] = a00;
            y[r * out_dim + o + 1] = a01;
            y[r * out_dim + o + 2] = a02;
            y[r * out_dim + o + 3] = a03;
            y[(r + 1) * out_dim + o] = a10;
            y[(r + 1) * out_dim + o + 1] = a11;
            y[(r + 1) * out_dim + o + 2] = a12;
            y[(r + 1) * out_dim + o + 3] = a13;
            y[(r + 2) * out_dim + o] = a20;
            y[(r + 2) * out_dim + o + 1] = a21;
            y[(r + 2) * out_dim + o + 2] = a22;
            y[(r + 2) * out_dim + o + 3] = a23;
            y[(r + 3) * out_dim + o] = a30;
            y[(r + 3) * out_dim + o + 1] = a31;
            y[(r + 3) * out_dim + o + 2] = a32;
            y[(r + 3) * out_dim + o + 3] = a33;
            o += NR;
        }
        // Remainder outputs: one column across the MR-row panel.
        while o < out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut a0 = init(y, r, o);
            let mut a1 = init(y, r + 1, o);
            let mut a2 = init(y, r + 2, o);
            let mut a3 = init(y, r + 3, o);
            for i in 0..in_dim {
                let q = w[i];
                a0 += q * x0[i];
                a1 += q * x1[i];
                a2 += q * x2[i];
                a3 += q * x3[i];
            }
            y[r * out_dim + o] = a0;
            y[(r + 1) * out_dim + o] = a1;
            y[(r + 2) * out_dim + o] = a2;
            y[(r + 3) * out_dim + o] = a3;
            o += 1;
        }
        r += MR;
    }
    // Remainder rows: plain per-row sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        for o in 0..out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut acc = init(y, r, o);
            for i in 0..in_dim {
                acc += w[i] * xr[i];
            }
            y[r * out_dim + o] = acc;
        }
        r += 1;
    }
}

// ---------------------------------------------------------------------------
// Single-precision kernels (the f32 inference engine)
// ---------------------------------------------------------------------------
//
// The f32 path serves *inference only* (the preconditioner's hot loop); it
// never touches training numerics, so it is free to pick the layout that
// vectorises best.  Weights come in **transposed** (`in_dim × out_dim`
// row-major, i.e. one row per *input* feature): for every shared-axis step
// `i` the `out_dim` weights are contiguous, and the inner loop is a pure
// 8-lane axpy `acc[k] += x_i · wt[i][k]` the compiler maps straight onto
// SIMD registers.  A 4-row panel keeps four independent accumulator tiles in
// flight so the loop is throughput- rather than latency-bound — the `wide`
// crate's 4×8 f32 tile written out by hand.
//
// Accumulation order per output element is ascending `i` from the initial
// value, exactly like the f64 kernels, so the f32 results are reproducible
// across batch sizes and tile shapes (they differ from f64 only by rounding).

/// SIMD lane count of the f32 inner loops (two SSE / one AVX register).
pub const F32_LANES: usize = 8;

/// `acc[k] += s * w[k]` over one row, 8 lanes at a time.
#[inline(always)]
fn axpy_f32(acc: &mut [f32], w: &[f32], s: f32) {
    let mut ac = acc.chunks_exact_mut(F32_LANES);
    let mut wc = w.chunks_exact(F32_LANES);
    for (a, b) in ac.by_ref().zip(wc.by_ref()) {
        let a: &mut [f32; F32_LANES] = a.try_into().unwrap();
        let b: &[f32; F32_LANES] = b.try_into().unwrap();
        #[cfg(feature = "portable-simd")]
        {
            use std::simd::f32x8;
            let r = f32x8::from_array(*a) + f32x8::splat(s) * f32x8::from_array(*b);
            *a = r.to_array();
        }
        #[cfg(not(feature = "portable-simd"))]
        for k in 0..F32_LANES {
            a[k] += s * b[k];
        }
    }
    for (a, b) in ac.into_remainder().iter_mut().zip(wc.remainder()) {
        *a += s * *b;
    }
}

/// `Y = X Wᵀ + bias` with a transposed (`in_dim × out_dim`) f32 weight.
pub fn gemm_t_bias_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_t_core_f32::<false>(x, n, in_dim, out_dim, wt, bias, y);
}

/// `Y = X Wᵀ` with a transposed f32 weight (outputs start from zero).
pub fn gemm_t_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_t_core_f32::<false>(x, n, in_dim, out_dim, wt, &[], y);
}

/// `Y += X Wᵀ` with a transposed f32 weight (accumulates onto `Y`).
pub fn gemm_t_acc_into_f32(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    y: &mut [f32],
) {
    gemm_t_core_f32::<true>(x, n, in_dim, out_dim, wt, &[], y);
}

/// Rows per f32 register panel.
const MR32: usize = 4;

/// Shared f32 kernel: a 4-row panel of 8-lane column tiles over the
/// transposed weight.  `ACC = true` reads the initial accumulator from `y`,
/// otherwise it comes from `bias` (or zero when `bias` is empty).
fn gemm_t_core_f32<const ACC: bool>(
    x: &[f32],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    wt: &[f32],
    bias: &[f32],
    y: &mut [f32],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(wt.len(), in_dim * out_dim);
    debug_assert_eq!(y.len(), n * out_dim);
    let init_tile = |y: &[f32], r: usize, o: usize| -> [f32; F32_LANES] {
        let mut t = [0.0f32; F32_LANES];
        if ACC {
            t.copy_from_slice(&y[r * out_dim + o..][..F32_LANES]);
        } else if !bias.is_empty() {
            t.copy_from_slice(&bias[o..o + F32_LANES]);
        }
        t
    };
    let init_scalar = |y: &[f32], r: usize, o: usize| -> f32 {
        if ACC {
            y[r * out_dim + o]
        } else if bias.is_empty() {
            0.0
        } else {
            bias[o]
        }
    };

    let mr_end = n - n % MR32;
    let nr_end = out_dim - out_dim % F32_LANES;
    let mut r = 0;
    while r < mr_end {
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let mut a0 = init_tile(y, r, o);
            let mut a1 = init_tile(y, r + 1, o);
            let mut a2 = init_tile(y, r + 2, o);
            let mut a3 = init_tile(y, r + 3, o);
            for i in 0..in_dim {
                let w: &[f32; F32_LANES] = wt[i * out_dim + o..][..F32_LANES].try_into().unwrap();
                let (s0, s1, s2, s3) = (x0[i], x1[i], x2[i], x3[i]);
                for k in 0..F32_LANES {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            y[r * out_dim + o..][..F32_LANES].copy_from_slice(&a0);
            y[(r + 1) * out_dim + o..][..F32_LANES].copy_from_slice(&a1);
            y[(r + 2) * out_dim + o..][..F32_LANES].copy_from_slice(&a2);
            y[(r + 3) * out_dim + o..][..F32_LANES].copy_from_slice(&a3);
            o += F32_LANES;
        }
        // Half-width (4-lane) column tile for mid-size remainders (e.g. the
        // direction-fused `2d = 20` rows: 2×8 full tiles + one 4-lane tile).
        while o + F32_LANES / 2 <= out_dim {
            const H: usize = F32_LANES / 2;
            let init_half = |y: &[f32], r: usize, o: usize| -> [f32; H] {
                let mut t = [0.0f32; H];
                if ACC {
                    t.copy_from_slice(&y[r * out_dim + o..][..H]);
                } else if !bias.is_empty() {
                    t.copy_from_slice(&bias[o..o + H]);
                }
                t
            };
            let mut a0 = init_half(y, r, o);
            let mut a1 = init_half(y, r + 1, o);
            let mut a2 = init_half(y, r + 2, o);
            let mut a3 = init_half(y, r + 3, o);
            for i in 0..in_dim {
                let w: &[f32; H] = wt[i * out_dim + o..][..H].try_into().unwrap();
                let (s0, s1, s2, s3) = (x0[i], x1[i], x2[i], x3[i]);
                for k in 0..H {
                    a0[k] += s0 * w[k];
                    a1[k] += s1 * w[k];
                    a2[k] += s2 * w[k];
                    a3[k] += s3 * w[k];
                }
            }
            y[r * out_dim + o..][..H].copy_from_slice(&a0);
            y[(r + 1) * out_dim + o..][..H].copy_from_slice(&a1);
            y[(r + 2) * out_dim + o..][..H].copy_from_slice(&a2);
            y[(r + 3) * out_dim + o..][..H].copy_from_slice(&a3);
            o += H;
        }
        // Remainder outputs: one column across the 4-row panel.
        while o < out_dim {
            let mut a0 = init_scalar(y, r, o);
            let mut a1 = init_scalar(y, r + 1, o);
            let mut a2 = init_scalar(y, r + 2, o);
            let mut a3 = init_scalar(y, r + 3, o);
            for i in 0..in_dim {
                let q = wt[i * out_dim + o];
                a0 += q * x0[i];
                a1 += q * x1[i];
                a2 += q * x2[i];
                a3 += q * x3[i];
            }
            y[r * out_dim + o] = a0;
            y[(r + 1) * out_dim + o] = a1;
            y[(r + 2) * out_dim + o] = a2;
            y[(r + 3) * out_dim + o] = a3;
            o += 1;
        }
        r += MR32;
    }
    // Remainder rows: per-row 8-lane axpy sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        let yr = &mut y[r * out_dim..][..out_dim];
        if !ACC {
            if bias.is_empty() {
                yr.fill(0.0);
            } else {
                yr.copy_from_slice(bias);
            }
        }
        for (i, &s) in xr.iter().enumerate() {
            axpy_f32(yr, &wt[i * out_dim..][..out_dim], s);
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[allow(clippy::too_many_arguments)]
    fn naive(
        x: &[f64],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        weight: &[f64],
        bias: &[f64],
        y0: &[f64],
        acc: bool,
    ) -> Vec<f64> {
        let mut y = vec![0.0; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = if acc {
                    y0[r * out_dim + o]
                } else if bias.is_empty() {
                    0.0
                } else {
                    bias[o]
                };
                for i in 0..in_dim {
                    a += weight[o * in_dim + i] * x[r * in_dim + i];
                }
                y[r * out_dim + o] = a;
            }
        }
        y
    }

    #[test]
    fn blocked_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        // Cover every tile-remainder combination: n and out_dim spanning 0..2
        // full tiles plus partials, in_dim from empty to odd sizes.
        for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 23] {
            for &out_dim in &[1usize, 2, 3, 4, 5, 8, 10, 13] {
                for &in_dim in &[0usize, 1, 3, 10, 23, 31] {
                    let x: Vec<f64> = (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    let w: Vec<f64> =
                        (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let b: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();

                    let mut y = vec![0.0; n * out_dim];
                    gemm_bias_into(&x, n, in_dim, out_dim, &w, &b, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &b, &[], false));

                    let mut y = vec![0.0; n * out_dim];
                    gemm_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &[], false));

                    let y0: Vec<f64> = (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let mut y = y0.clone();
                    gemm_acc_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &y0, true));
                }
            }
        }
    }

    #[test]
    fn accumulate_composes_with_bias_init() {
        // bias-init followed by two accumulations equals the fused sum the
        // plan path relies on: Ψ pre-activation = c-term + Σ GEMM terms.
        let n = 6;
        let (din, dout) = (5, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let xa: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xb: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wa: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wb: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bias: Vec<f64> = (0..dout).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n * dout];
        gemm_bias_into(&xa, n, din, dout, &wa, &bias, &mut y);
        gemm_acc_into(&xb, n, din, dout, &wb, &mut y);
        let first = naive(&xa, n, din, dout, &wa, &bias, &[], false);
        let both = naive(&xb, n, din, dout, &wb, &[], &first, true);
        assert_eq!(y, both);
    }

    #[allow(clippy::too_many_arguments)]
    fn naive_f32(
        x: &[f32],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        wt: &[f32],
        bias: &[f32],
        y0: &[f32],
        acc: bool,
    ) -> Vec<f32> {
        let mut y = vec![0.0f32; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = if acc {
                    y0[r * out_dim + o]
                } else if bias.is_empty() {
                    0.0
                } else {
                    bias[o]
                };
                for i in 0..in_dim {
                    a += wt[i * out_dim + o] * x[r * in_dim + i];
                }
                y[r * out_dim + o] = a;
            }
        }
        y
    }

    #[test]
    fn f32_panel_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        // Span full/partial 4-row panels and full/partial 8-lane column tiles.
        for &n in &[0usize, 1, 3, 4, 5, 8, 9, 17] {
            for &out_dim in &[1usize, 2, 7, 8, 9, 10, 16, 19] {
                for &in_dim in &[0usize, 1, 3, 10, 23] {
                    let x: Vec<f32> =
                        (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
                    let wt: Vec<f32> =
                        (0..in_dim * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
                    let b: Vec<f32> =
                        (0..out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();

                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_bias_into_f32(&x, n, in_dim, out_dim, &wt, &b, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &b, &[], false));

                    let mut y = vec![0.0f32; n * out_dim];
                    gemm_t_into_f32(&x, n, in_dim, out_dim, &wt, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &[], &[], false));

                    let y0: Vec<f32> =
                        (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0) as f32).collect();
                    let mut y = y0.clone();
                    gemm_t_acc_into_f32(&x, n, in_dim, out_dim, &wt, &mut y);
                    assert_eq!(y, naive_f32(&x, n, in_dim, out_dim, &wt, &[], &y0, true));
                }
            }
        }
    }

    #[test]
    fn f32_kernel_tracks_f64_kernel_closely() {
        // The f32 kernels must agree with their f64 counterparts to single
        // precision: same math, different rounding.
        let mut rng = StdRng::seed_from_u64(29);
        let (n, in_dim, out_dim) = (13, 10, 10);
        let x: Vec<f64> = (0..n * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w: Vec<f64> = (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y64 = vec![0.0; n * out_dim];
        gemm_bias_into(&x, n, in_dim, out_dim, &w, &b, &mut y64);

        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        // Transpose the row-major out×in weight into in×out.
        let mut wt = vec![0.0f32; in_dim * out_dim];
        for o in 0..out_dim {
            for i in 0..in_dim {
                wt[i * out_dim + o] = w[o * in_dim + i] as f32;
            }
        }
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut y32 = vec![0.0f32; n * out_dim];
        gemm_t_bias_into_f32(&x32, n, in_dim, out_dim, &wt, &b32, &mut y32);
        for (a, b) in y32.iter().zip(y64.iter()) {
            assert!((*a as f64 - b).abs() < 1e-5, "f32 {a} vs f64 {b}");
        }
    }
}
