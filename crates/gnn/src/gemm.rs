//! Cache- and register-blocked batch GEMM micro-kernels.
//!
//! All dense layers in this crate compute `Y = X Wᵀ (+ bias)` on row-major
//! batches: `X` is `n × in_dim`, `W` is `out_dim × in_dim` (one weight row per
//! output), `Y` is `n × out_dim`.  The batch dimension `n` is large (one row
//! per edge or per node of a sub-domain graph) while `in_dim`/`out_dim` are
//! small (the latent dimension `d ≈ 10`), so the kernels panel over the batch:
//! a register tile of [`MR`]` × `[`NR`] accumulators walks the shared `in_dim`
//! axis once, giving `MR·NR` multiply-adds per `MR + NR` loads and `MR·NR`
//! independent dependency chains for the CPU to overlap (the naive row-by-row
//! GEMV has a single serial add chain per output).  The weight panel stays
//! resident in cache across the whole batch sweep.
//!
//! **Determinism contract:** every output element accumulates its dot product
//! strictly in ascending `i` order starting from its initial value (bias,
//! zero, or the prior `Y` entry).  Blocking only regroups *independent*
//! output elements, so the results are bit-identical to the scalar triple
//! loop these kernels replaced — at every tile shape and every batch size.

/// Batch rows per register tile.
const MR: usize = 4;
/// Output columns per register tile.
const NR: usize = 4;

/// `Y = X Wᵀ + bias` (each output element starts from its bias).
pub fn gemm_bias_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(bias.len(), out_dim);
    gemm_core::<false>(x, n, in_dim, out_dim, weight, bias, y);
}

/// `Y = X Wᵀ` (outputs start from zero).
pub fn gemm_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<false>(x, n, in_dim, out_dim, weight, &[], y);
}

/// `Y += X Wᵀ` (outputs accumulate onto the existing `Y`).
pub fn gemm_acc_into(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    y: &mut [f64],
) {
    gemm_core::<true>(x, n, in_dim, out_dim, weight, &[], y);
}

/// Shared blocked kernel.  `ACC = true` reads the initial accumulator from
/// `y`; otherwise it comes from `bias` (or zero when `bias` is empty).
fn gemm_core<const ACC: bool>(
    x: &[f64],
    n: usize,
    in_dim: usize,
    out_dim: usize,
    weight: &[f64],
    bias: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(x.len(), n * in_dim);
    debug_assert_eq!(weight.len(), out_dim * in_dim);
    debug_assert_eq!(y.len(), n * out_dim);
    let init = |y: &[f64], r: usize, o: usize| -> f64 {
        if ACC {
            y[r * out_dim + o]
        } else if bias.is_empty() {
            0.0
        } else {
            bias[o]
        }
    };

    let mr_end = n - n % MR;
    let nr_end = out_dim - out_dim % NR;
    let mut r = 0;
    while r < mr_end {
        // Row slices of exactly `in_dim` elements let the bounds checks hoist
        // out of the inner loop.
        let x0 = &x[r * in_dim..][..in_dim];
        let x1 = &x[(r + 1) * in_dim..][..in_dim];
        let x2 = &x[(r + 2) * in_dim..][..in_dim];
        let x3 = &x[(r + 3) * in_dim..][..in_dim];
        let mut o = 0;
        while o < nr_end {
            let w0 = &weight[o * in_dim..][..in_dim];
            let w1 = &weight[(o + 1) * in_dim..][..in_dim];
            let w2 = &weight[(o + 2) * in_dim..][..in_dim];
            let w3 = &weight[(o + 3) * in_dim..][..in_dim];
            let mut a00 = init(y, r, o);
            let mut a01 = init(y, r, o + 1);
            let mut a02 = init(y, r, o + 2);
            let mut a03 = init(y, r, o + 3);
            let mut a10 = init(y, r + 1, o);
            let mut a11 = init(y, r + 1, o + 1);
            let mut a12 = init(y, r + 1, o + 2);
            let mut a13 = init(y, r + 1, o + 3);
            let mut a20 = init(y, r + 2, o);
            let mut a21 = init(y, r + 2, o + 1);
            let mut a22 = init(y, r + 2, o + 2);
            let mut a23 = init(y, r + 2, o + 3);
            let mut a30 = init(y, r + 3, o);
            let mut a31 = init(y, r + 3, o + 1);
            let mut a32 = init(y, r + 3, o + 2);
            let mut a33 = init(y, r + 3, o + 3);
            for i in 0..in_dim {
                let (p0, p1, p2, p3) = (x0[i], x1[i], x2[i], x3[i]);
                let (q0, q1, q2, q3) = (w0[i], w1[i], w2[i], w3[i]);
                a00 += q0 * p0;
                a01 += q1 * p0;
                a02 += q2 * p0;
                a03 += q3 * p0;
                a10 += q0 * p1;
                a11 += q1 * p1;
                a12 += q2 * p1;
                a13 += q3 * p1;
                a20 += q0 * p2;
                a21 += q1 * p2;
                a22 += q2 * p2;
                a23 += q3 * p2;
                a30 += q0 * p3;
                a31 += q1 * p3;
                a32 += q2 * p3;
                a33 += q3 * p3;
            }
            y[r * out_dim + o] = a00;
            y[r * out_dim + o + 1] = a01;
            y[r * out_dim + o + 2] = a02;
            y[r * out_dim + o + 3] = a03;
            y[(r + 1) * out_dim + o] = a10;
            y[(r + 1) * out_dim + o + 1] = a11;
            y[(r + 1) * out_dim + o + 2] = a12;
            y[(r + 1) * out_dim + o + 3] = a13;
            y[(r + 2) * out_dim + o] = a20;
            y[(r + 2) * out_dim + o + 1] = a21;
            y[(r + 2) * out_dim + o + 2] = a22;
            y[(r + 2) * out_dim + o + 3] = a23;
            y[(r + 3) * out_dim + o] = a30;
            y[(r + 3) * out_dim + o + 1] = a31;
            y[(r + 3) * out_dim + o + 2] = a32;
            y[(r + 3) * out_dim + o + 3] = a33;
            o += NR;
        }
        // Remainder outputs: one column across the MR-row panel.
        while o < out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut a0 = init(y, r, o);
            let mut a1 = init(y, r + 1, o);
            let mut a2 = init(y, r + 2, o);
            let mut a3 = init(y, r + 3, o);
            for i in 0..in_dim {
                let q = w[i];
                a0 += q * x0[i];
                a1 += q * x1[i];
                a2 += q * x2[i];
                a3 += q * x3[i];
            }
            y[r * out_dim + o] = a0;
            y[(r + 1) * out_dim + o] = a1;
            y[(r + 2) * out_dim + o] = a2;
            y[(r + 3) * out_dim + o] = a3;
            o += 1;
        }
        r += MR;
    }
    // Remainder rows: plain per-row sweep (same accumulation order).
    while r < n {
        let xr = &x[r * in_dim..][..in_dim];
        for o in 0..out_dim {
            let w = &weight[o * in_dim..][..in_dim];
            let mut acc = init(y, r, o);
            for i in 0..in_dim {
                acc += w[i] * xr[i];
            }
            y[r * out_dim + o] = acc;
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[allow(clippy::too_many_arguments)]
    fn naive(
        x: &[f64],
        n: usize,
        in_dim: usize,
        out_dim: usize,
        weight: &[f64],
        bias: &[f64],
        y0: &[f64],
        acc: bool,
    ) -> Vec<f64> {
        let mut y = vec![0.0; n * out_dim];
        for r in 0..n {
            for o in 0..out_dim {
                let mut a = if acc {
                    y0[r * out_dim + o]
                } else if bias.is_empty() {
                    0.0
                } else {
                    bias[o]
                };
                for i in 0..in_dim {
                    a += weight[o * in_dim + i] * x[r * in_dim + i];
                }
                y[r * out_dim + o] = a;
            }
        }
        y
    }

    #[test]
    fn blocked_matches_naive_bit_for_bit_across_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        // Cover every tile-remainder combination: n and out_dim spanning 0..2
        // full tiles plus partials, in_dim from empty to odd sizes.
        for &n in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 23] {
            for &out_dim in &[1usize, 2, 3, 4, 5, 8, 10, 13] {
                for &in_dim in &[0usize, 1, 3, 10, 23, 31] {
                    let x: Vec<f64> = (0..n * in_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    let w: Vec<f64> =
                        (0..out_dim * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let b: Vec<f64> = (0..out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();

                    let mut y = vec![0.0; n * out_dim];
                    gemm_bias_into(&x, n, in_dim, out_dim, &w, &b, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &b, &[], false));

                    let mut y = vec![0.0; n * out_dim];
                    gemm_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &[], false));

                    let y0: Vec<f64> = (0..n * out_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let mut y = y0.clone();
                    gemm_acc_into(&x, n, in_dim, out_dim, &w, &mut y);
                    assert_eq!(y, naive(&x, n, in_dim, out_dim, &w, &[], &y0, true));
                }
            }
        }
    }

    #[test]
    fn accumulate_composes_with_bias_init() {
        // bias-init followed by two accumulations equals the fused sum the
        // plan path relies on: Ψ pre-activation = c-term + Σ GEMM terms.
        let n = 6;
        let (din, dout) = (5, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let xa: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xb: Vec<f64> = (0..n * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wa: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let wb: Vec<f64> = (0..dout * din).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bias: Vec<f64> = (0..dout).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n * dout];
        gemm_bias_into(&xa, n, din, dout, &wa, &bias, &mut y);
        gemm_acc_into(&xb, n, din, dout, &wb, &mut y);
        let first = naive(&xa, n, din, dout, &wa, &bias, &[], false);
        let both = naive(&xb, n, din, dout, &wb, &[], &first, true);
        assert_eq!(y, both);
    }
}
