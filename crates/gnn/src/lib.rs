//! A from-scratch Graph Neural Network framework implementing the
//! Deep Statistical Solver (DSS) of the paper (Section II-B and III-B).
//!
//! The paper trains its DSS model with PyTorch-Geometric on GPUs; no such
//! stack exists for Rust, so this crate implements the full pipeline natively:
//!
//! * [`gemm`] — register-blocked batch GEMM micro-kernels with a strict
//!   per-element accumulation-order (bit-identity) contract, plus explicit
//!   8-lane f32 kernels over transposed weights for the single-precision
//!   inference engine (enable the `portable-simd` feature on nightly to use
//!   `std::simd` instead of the autovectorised manual lanes), plus int8
//!   weight kernels (per-output f32 scales, f32 accumulators) and hand-rolled
//!   bf16 encode/decode for the quantised engine,
//! * [`layers`] — linear layers and two-layer MLPs with exact reverse-mode
//!   gradients (validated against finite differences in the test-suite),
//! * [`plan`] — per-graph inference plans: split first-layer weights,
//!   precomputed static edge terms and destination-sorted incidence that
//!   power the fast inference engine,
//! * [`graph`] — the [`graph::LocalGraph`] representation of one sub-domain
//!   problem: geometric edge features `(d_jl, ‖d_jl‖)`, normalised residual
//!   input `c`, boundary mask and the local operator used by the loss,
//! * [`model`] — the DSS architecture: `k̄` distinct message-passing blocks
//!   (Eq. 18–21), per-iteration decoders (Eq. 22), ResNet-style latent update
//!   with step `α`,
//! * [`loss`] — the physics-informed mean-squared residual loss (Eq. 11) and
//!   its gradient,
//! * [`adam`] — Adam with gradient clipping and a reduce-on-plateau schedule,
//! * [`dataset`] — extraction of local training problems from two-level
//!   ASM-preconditioned PCG runs, exactly like the paper's dataset,
//! * [`trainer`] — mini-batch training loop with rayon data-parallel gradient
//!   accumulation, plus the evaluation metrics of Table II,
//! * [`io`] — plain-text model serialisation so trained models can be reused
//!   by the examples and benchmarks.
//!
//! The architecture hyper-parameters reproduce the paper's weight counts
//! exactly (e.g. `k̄ = 30, d = 10` → 37 530 weights, Table II).

#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod adam;
pub mod dataset;
pub mod gemm;
pub mod graph;
pub mod io;
pub mod layers;
pub mod loss;
pub mod model;
pub mod plan;
pub mod trainer;

pub use adam::{Adam, AdamConfig};
pub use dataset::{extract_local_problems, DatasetConfig, TrainingSample};
pub use graph::LocalGraph;
pub use model::{BatchPools, DssConfig, DssModel, InferScratch};
pub use plan::{
    InferScratchF32, InferScratchQ, InferencePlan, InferencePlanF32, InferencePlanQ,
    InferenceTimings, Precision, ScratchPool,
};
pub use trainer::{evaluate, train, EvalMetrics, TrainingConfig, TrainingReport};
