//! Adam optimiser with gradient clipping and a reduce-on-plateau schedule.
//!
//! Training follows the paper's configuration: Adam with an initial learning
//! rate of 1e-2, gradient clipping, and a `ReduceLROnPlateau`-style schedule
//! that multiplies the learning rate by 0.1 when the validation loss stops
//! improving.

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabiliser.
    pub epsilon: f64,
    /// Global-norm gradient clipping threshold (`None` disables clipping).
    pub clip_norm: Option<f64>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip_norm: Some(1e-2),
        }
    }
}

/// Adam state over a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    /// Create an optimiser for `num_params` parameters.
    pub fn new(config: AdamConfig, num_params: usize) -> Self {
        Adam { config, m: vec![0.0; num_params], v: vec![0.0; num_params], t: 0 }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.config.learning_rate
    }

    /// Scale the learning rate (used by the plateau scheduler).
    pub fn scale_learning_rate(&mut self, factor: f64) {
        self.config.learning_rate *= factor;
    }

    /// Apply one update step: `params ← params - lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// The gradient is clipped to the configured global norm first.
    pub fn step(&mut self, params: &mut [f64], gradient: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter length mismatch");
        assert_eq!(gradient.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;

        // Global-norm clipping.
        let mut scale = 1.0;
        if let Some(clip) = self.config.clip_norm {
            let norm: f64 = gradient.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > clip && norm > 0.0 {
                scale = clip / norm;
            }
        }

        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.config.learning_rate;
        for i in 0..params.len() {
            let g = gradient[i] * scale;
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let mhat = self.m[i] / bias1;
            let vhat = self.v[i] / bias2;
            params[i] -= lr * mhat / (vhat.sqrt() + self.config.epsilon);
        }
    }
}

/// Reduce-on-plateau learning-rate scheduler.
#[derive(Debug, Clone)]
pub struct PlateauScheduler {
    best: f64,
    patience: usize,
    factor: f64,
    stale_epochs: usize,
    min_lr: f64,
}

impl PlateauScheduler {
    /// A scheduler that multiplies the learning rate by `factor` after
    /// `patience` epochs without improvement.
    pub fn new(patience: usize, factor: f64, min_lr: f64) -> Self {
        PlateauScheduler { best: f64::INFINITY, patience, factor, stale_epochs: 0, min_lr }
    }

    /// Report an epoch's validation loss; adjusts the optimiser when the loss
    /// has plateaued.  Returns `true` when the learning rate was reduced.
    pub fn observe(&mut self, loss: f64, optimiser: &mut Adam) -> bool {
        if loss < self.best * (1.0 - 1e-4) {
            self.best = loss;
            self.stale_epochs = 0;
            return false;
        }
        self.stale_epochs += 1;
        if self.stale_epochs >= self.patience {
            self.stale_epochs = 0;
            if optimiser.learning_rate() * self.factor >= self.min_lr {
                optimiser.scale_learning_rate(self.factor);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // f(x) = Σ (x_i - target_i)²
        let target = [1.0, -2.0, 0.5, 3.0];
        let mut params = vec![0.0; 4];
        let config = AdamConfig { learning_rate: 0.05, clip_norm: None, ..Default::default() };
        let mut adam = Adam::new(config, 4);
        for _ in 0..500 {
            let grad: Vec<f64> =
                params.iter().zip(target.iter()).map(|(p, t)| 2.0 * (p - t)).collect();
            adam.step(&mut params, &grad);
        }
        for (p, t) in params.iter().zip(target.iter()) {
            assert!((p - t).abs() < 1e-3, "{params:?}");
        }
    }

    #[test]
    fn gradient_clipping_limits_step_size() {
        let config = AdamConfig { learning_rate: 1.0, clip_norm: Some(1e-3), ..Default::default() };
        let mut adam = Adam::new(config, 2);
        let mut params = vec![0.0, 0.0];
        // A huge gradient must not blow the parameters up thanks to clipping
        // and Adam's normalisation.
        adam.step(&mut params, &[1e9, -1e9]);
        assert!(params.iter().all(|p| p.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn learning_rate_scaling() {
        let mut adam = Adam::new(AdamConfig::default(), 1);
        let lr0 = adam.learning_rate();
        adam.scale_learning_rate(0.1);
        assert!((adam.learning_rate() - lr0 * 0.1).abs() < 1e-15);
    }

    #[test]
    fn plateau_scheduler_reduces_after_patience() {
        let mut adam = Adam::new(AdamConfig::default(), 1);
        let lr0 = adam.learning_rate();
        let mut sched = PlateauScheduler::new(2, 0.1, 1e-6);
        assert!(!sched.observe(1.0, &mut adam)); // first observation sets best
        assert!(!sched.observe(1.0, &mut adam)); // stale 1
        assert!(sched.observe(1.0, &mut adam)); // stale 2 -> reduce
        assert!((adam.learning_rate() - lr0 * 0.1).abs() < 1e-12);
        // Improvement resets the counter.
        assert!(!sched.observe(0.5, &mut adam));
        assert!(!sched.observe(0.6, &mut adam));
    }

    #[test]
    fn plateau_scheduler_respects_min_lr() {
        let mut adam = Adam::new(AdamConfig { learning_rate: 1e-5, ..Default::default() }, 1);
        let mut sched = PlateauScheduler::new(1, 0.1, 1e-5);
        sched.observe(1.0, &mut adam);
        let reduced = sched.observe(1.0, &mut adam);
        assert!(!reduced, "must not go below min_lr");
        assert!((adam.learning_rate() - 1e-5).abs() < 1e-18);
    }
}
