//! Per-graph inference plans: split first-layer weights and precomputed
//! static-feature terms.
//!
//! The DSS forward pass feeds every message MLP an edge-level batch of
//! `e × (2d + 3)` rows `[h_dst | h_src | d_jl | ‖d_jl‖]`.  The first layer is
//! affine, so its pre-activation splits along those column groups:
//!
//! ```text
//! W₁ x_e + b₁ = W_dst h_dst(e) + W_src h_src(e) + (W_geo g_e + b₁)
//! ```
//!
//! The two `h`-dependent parts are **node-level** products `H W_dstᵀ` and
//! `H W_srcᵀ` (`n × d` GEMMs) gathered per edge — an ~8× flop cut versus the
//! `e × (2d + 3)` edge-level GEMM at the mesh's typical `e ≈ 7n` — while the
//! geometric part `W_geo g_e + b₁` does not depend on the latent state *or*
//! the right-hand side at all: it is fixed for the lifetime of a sub-domain
//! graph and is precomputed here, per block and per message direction, when
//! the plan is built (once per solve, at preconditioner setup).  The Ψ update
//! splits the same way: its `W_c c` input column is constant across all
//! blocks of one apply and is folded together with the bias into the
//! pre-activation's initial value.
//!
//! A plan is tied to the exact (model, graph) pair it was built from; the
//! edge structure is copied in destination-sorted order (see
//! [`LocalGraph::edge_ptr`]), so message aggregation in the planned forward
//! pass is a contiguous per-node gather.

use std::sync::Mutex;

use crate::graph::LocalGraph;
use crate::layers::Linear;
use crate::model::{Block, DssModel, InferScratch};

/// Split weights and precomputed static terms of one message-passing block.
///
/// Beyond the first-layer split, the plan exploits that the message MLPs'
/// *second* layer is linear too: summing the per-edge messages and then
/// multiplying by `Ψ`'s message columns equals multiplying the per-node sum
/// of ReLU'd hidden activations by the composed matrix `W_Ψ,msg W₂` — so the
/// planned forward pass never materialises a per-edge message at all.  The
/// message biases contribute `deg(j) · W_Ψ,msg b₂` per node, a per-graph
/// constant folded into [`PlanBlock::psi_static`].
pub(crate) struct PlanBlock {
    /// `Φ→` first-layer columns acting on `h_dst` (`d × d`, row-major).
    pub w_dst_fwd: Vec<f64>,
    /// `Φ→` first-layer columns acting on `h_src`.
    pub w_src_fwd: Vec<f64>,
    /// `Φ→` static term `W_geo g_e + b₁` per destination-sorted edge (`e × d`).
    pub geo_fwd: Vec<f64>,
    /// `Φ←` split, with the relative position negated in the static term.
    pub w_dst_bwd: Vec<f64>,
    pub w_src_bwd: Vec<f64>,
    pub geo_bwd: Vec<f64>,
    /// `Ψ` first-layer columns acting on `h` (`d × d`).
    pub psi_w_h: Vec<f64>,
    /// `Ψ` first-layer column acting on the node input `c` (length `d`).
    pub psi_w_c: Vec<f64>,
    /// Composed matrix `W_Ψ,→ W₂→` applied to the aggregated forward hidden
    /// activations (`d × d`).
    pub psi_m_fwd: Vec<f64>,
    /// Composed matrix `W_Ψ,← W₂←` for the backward direction.
    pub psi_m_bwd: Vec<f64>,
    /// Per-node static `Ψ` pre-activation
    /// `b_Ψ + deg(j) · (W_Ψ,→ b₂→ + W_Ψ,← b₂←)` (`n × d`).
    pub psi_static: Vec<f64>,
}

/// Extract the column block `[col0, col0 + cols)` of a row-major layer weight
/// as its own row-major `out_dim × cols` matrix.
fn column_block(layer: &Linear, col0: usize, cols: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(layer.out_dim * cols);
    for o in 0..layer.out_dim {
        let row = &layer.weight[o * layer.in_dim..(o + 1) * layer.in_dim];
        out.extend_from_slice(&row[col0..col0 + cols]);
    }
    out
}

/// Precompute `W_geo g_e + b₁` for every destination-sorted edge.  `sign`
/// flips the relative position for the backward message direction.
fn geo_terms(layer: &Linear, graph: &LocalGraph, d: usize, sign: f64) -> Vec<f64> {
    let cols = layer.in_dim;
    debug_assert_eq!(cols, 2 * d + 3);
    let mut out = Vec::with_capacity(graph.num_edges() * d);
    for &ei in &graph.edge_order {
        let edge = &graph.edges[ei];
        for o in 0..d {
            let w = &layer.weight[o * cols + 2 * d..o * cols + 2 * d + 3];
            out.push(
                layer.bias[o]
                    + w[0] * (sign * edge.delta[0])
                    + w[1] * (sign * edge.delta[1])
                    + w[2] * edge.dist,
            );
        }
    }
    out
}

/// Row-major product `A B` of two `d × d` matrices.
fn matmul_dd(a: &[f64], b: &[f64], d: usize) -> Vec<f64> {
    let mut out = vec![0.0; d * d];
    for p in 0..d {
        for o in 0..d {
            let apo = a[p * d + o];
            if apo == 0.0 {
                continue;
            }
            let brow = &b[o * d..(o + 1) * d];
            let orow = &mut out[p * d..(p + 1) * d];
            for t in 0..d {
                orow[t] += apo * brow[t];
            }
        }
    }
    out
}

/// `A v` for a row-major `d × d` matrix.
fn matvec_dd(a: &[f64], v: &[f64], d: usize) -> Vec<f64> {
    (0..d).map(|p| a[p * d..(p + 1) * d].iter().zip(v).map(|(x, y)| x * y).sum()).collect()
}

impl PlanBlock {
    fn new(block: &Block, graph: &LocalGraph, d: usize) -> Self {
        let psi = &block.psi.l1;
        debug_assert_eq!(psi.in_dim, 3 * d + 1);
        let psi_w_fwd = column_block(psi, d + 1, d);
        let psi_w_bwd = column_block(psi, 2 * d + 1, d);
        // Per-node static Ψ pre-activation: bias plus the message-bias
        // contribution, which scales with the node degree.
        let q_fwd = matvec_dd(&psi_w_fwd, &block.phi_fwd.l2.bias, d);
        let q_bwd = matvec_dd(&psi_w_bwd, &block.phi_bwd.l2.bias, d);
        let n = graph.num_nodes();
        let mut psi_static = vec![0.0; n * d];
        for j in 0..n {
            let deg = (graph.edge_ptr[j + 1] - graph.edge_ptr[j]) as f64;
            let row = &mut psi_static[j * d..(j + 1) * d];
            for k in 0..d {
                row[k] = psi.bias[k] + deg * (q_fwd[k] + q_bwd[k]);
            }
        }
        PlanBlock {
            w_dst_fwd: column_block(&block.phi_fwd.l1, 0, d),
            w_src_fwd: column_block(&block.phi_fwd.l1, d, d),
            geo_fwd: geo_terms(&block.phi_fwd.l1, graph, d, 1.0),
            w_dst_bwd: column_block(&block.phi_bwd.l1, 0, d),
            w_src_bwd: column_block(&block.phi_bwd.l1, d, d),
            geo_bwd: geo_terms(&block.phi_bwd.l1, graph, d, -1.0),
            psi_w_h: column_block(psi, 0, d),
            psi_w_c: column_block(psi, d, 1),
            psi_m_fwd: matmul_dd(&psi_w_fwd, &block.phi_fwd.l2.weight, d),
            psi_m_bwd: matmul_dd(&psi_w_bwd, &block.phi_bwd.l2.weight, d),
            psi_static,
        }
    }
}

/// A per-graph inference plan: the setup half of the setup/apply split.
///
/// Build once per sub-domain graph (e.g. at preconditioner construction) via
/// [`DssModel::build_plan`], then run [`DssModel::infer_with_plan_into`] any
/// number of times with changing node inputs.  The plan snapshots the model's
/// first-layer weights, so it must be rebuilt if the model is retrained.
pub struct InferencePlan {
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    pub(crate) latent_dim: usize,
    pub(crate) num_blocks: usize,
    /// Source node of every destination-sorted edge.
    pub(crate) edge_src: Vec<usize>,
    /// Destination offsets into the sorted edge list (`n + 1` entries).
    pub(crate) edge_ptr: Vec<usize>,
    pub(crate) blocks: Vec<PlanBlock>,
}

impl InferencePlan {
    /// Build a plan for `model` on `graph`.
    pub fn new(model: &DssModel, graph: &LocalGraph) -> Self {
        let d = model.config().latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        assert_eq!(graph.edge_ptr.len(), n + 1, "stale incidence: run rebuild_incidence");
        assert_eq!(graph.edge_order.len(), e, "stale incidence: run rebuild_incidence");
        let edge_src: Vec<usize> = graph.edge_order.iter().map(|&ei| graph.edges[ei].src).collect();
        let blocks = model.blocks().iter().map(|b| PlanBlock::new(b, graph, d)).collect();
        InferencePlan {
            num_nodes: n,
            num_edges: e,
            latent_dim: d,
            num_blocks: model.config().num_blocks,
            edge_src,
            edge_ptr: graph.edge_ptr.clone(),
            blocks,
        }
    }

    /// Number of nodes of the graph this plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges of the graph this plan was built for.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Heap footprint of the precomputed data in bytes (dominated by the
    /// per-block static edge terms, `2 k̄ e d` doubles).
    pub fn memory_bytes(&self) -> usize {
        let d = self.latent_dim;
        let per_block = std::mem::size_of::<f64>()
            * (2 * self.num_edges * d + 7 * d * d + d + self.num_nodes * d);
        self.blocks.len() * per_block
            + std::mem::size_of::<usize>() * (self.edge_src.len() + self.edge_ptr.len())
    }
}

/// Wall-clock breakdown of planned inference, one bucket per pipeline stage.
///
/// Filled by [`DssModel::infer_with_plan_timed`]; buckets accumulate across
/// calls so one struct can aggregate a whole preconditioner application (or
/// several).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InferenceTimings {
    /// Node-level GEMMs `H W_dstᵀ` / `H W_srcᵀ` for both message directions.
    pub node_gemm_ns: u64,
    /// Fused edge sweep: static term + gathered node terms, ReLU, and the
    /// per-node aggregation of the hidden activations (the former edge GEMM
    /// plus scatter, collapsed into one contiguous pass).
    pub edge_gather_ns: u64,
    /// Ψ update: static + c-term init, three accumulating GEMMs, ReLU,
    /// second layer and the latent-state step.
    pub psi_update_ns: u64,
    /// Final-block decoder.
    pub decoder_ns: u64,
    /// Number of inference calls folded into the buckets.
    pub calls: u64,
}

impl InferenceTimings {
    /// Add another timing record into this one.
    pub fn merge(&mut self, other: &InferenceTimings) {
        self.node_gemm_ns += other.node_gemm_ns;
        self.edge_gather_ns += other.edge_gather_ns;
        self.psi_update_ns += other.psi_update_ns;
        self.decoder_ns += other.decoder_ns;
        self.calls += other.calls;
    }

    /// Stage name / nanosecond pairs, in pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 4] {
        [
            ("node_gemm", self.node_gemm_ns),
            ("edge_gather", self.edge_gather_ns),
            ("psi_update", self.psi_update_ns),
            ("decoder", self.decoder_ns),
        ]
    }

    /// Total time across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stages().iter().map(|&(_, ns)| ns).sum()
    }
}

/// A lock-protected pool of [`InferScratch`] buffers for batched inference.
///
/// `acquire` pops a warmed-up scratch (or creates an empty one when the pool
/// is dry); `release` returns it.  Buffers grow to the largest graph they
/// ever served and are reused across batch items *and* across calls, so a
/// long-lived pool makes repeated [`DssModel::infer_batch_with_pool`] calls
/// allocation-free in the steady state.  The pool never influences results —
/// scratch contents are fully overwritten by every inference.
#[derive(Debug, Default)]
pub struct ScratchPool {
    slots: Mutex<Vec<InferScratch>>,
}

impl ScratchPool {
    /// An empty pool; buffers are created on demand.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Take a scratch out of the pool (or create a fresh one).
    pub fn acquire(&self) -> InferScratch {
        self.slots.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a scratch to the pool for reuse.
    pub fn release(&self, scratch: InferScratch) {
        self.slots.lock().unwrap().push(scratch);
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}
