//! Per-graph inference plans: split first-layer weights and precomputed
//! static-feature terms.
//!
//! The DSS forward pass feeds every message MLP an edge-level batch of
//! `e × (2d + 3)` rows `[h_dst | h_src | d_jl | ‖d_jl‖]`.  The first layer is
//! affine, so its pre-activation splits along those column groups:
//!
//! ```text
//! W₁ x_e + b₁ = W_dst h_dst(e) + W_src h_src(e) + (W_geo g_e + b₁)
//! ```
//!
//! The two `h`-dependent parts are **node-level** products `H W_dstᵀ` and
//! `H W_srcᵀ` (`n × d` GEMMs) gathered per edge — an ~8× flop cut versus the
//! `e × (2d + 3)` edge-level GEMM at the mesh's typical `e ≈ 7n` — while the
//! geometric part `W_geo g_e + b₁` does not depend on the latent state *or*
//! the right-hand side at all: it is fixed for the lifetime of a sub-domain
//! graph and is precomputed here, per block and per message direction, when
//! the plan is built (once per solve, at preconditioner setup).  The Ψ update
//! splits the same way: its `W_c c` input column is constant across all
//! blocks of one apply and is folded together with the bias into the
//! pre-activation's initial value.
//!
//! A plan is tied to the exact (model, graph) pair it was built from; the
//! edge structure is copied in destination-sorted order (see
//! [`LocalGraph::edge_ptr`]), so message aggregation in the planned forward
//! pass is a contiguous per-node gather.

use std::time::Instant;

use sanitizer::TrackedMutex;

use crate::gemm;
use crate::graph::LocalGraph;
use crate::layers::Linear;
use crate::model::{Block, DssModel, InferScratch};

/// Scalar precision of the inference engine.
///
/// The preconditioner output only feeds a *flexible* outer Krylov method, so
/// reduced inference precision cannot break convergence — it merely perturbs
/// the preconditioner slightly (the observation that lets graph neural
/// preconditioners run inference in low precision).  `F64` is the default
/// and remains the correctness anchor; `F32` trades ~1e-6 relative output
/// error for SIMD width and halved memory traffic on the hot path; `Int8`
/// additionally quantises the weights to int8 (per-output f32 scales) and the
/// large static streams to bf16, trading ~1e-3 relative output error for
/// roughly half the f32 plan's memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Double-precision inference (bit-reproducible engine, the default).
    #[default]
    F64,
    /// Single-precision inference with explicit 8-lane SIMD kernels.
    F32,
    /// Quantised inference: int8 weights with per-output f32 scales, bf16
    /// static edge terms and hidden sums, f32 accumulators throughout.
    Int8,
}

impl Precision {
    /// Lower-case name used in benchmark reports and env configuration.
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Ok(Precision::F64),
            "f32" | "single" => Ok(Precision::F32),
            "int8" | "i8" | "quantised" | "quantized" => Ok(Precision::Int8),
            other => Err(format!("unknown precision '{other}' (expected f64, f32 or int8)")),
        }
    }
}

/// Split weights and precomputed static terms of one message-passing block.
///
/// Beyond the first-layer split, the plan exploits that the message MLPs'
/// *second* layer is linear too: summing the per-edge messages and then
/// multiplying by `Ψ`'s message columns equals multiplying the per-node sum
/// of ReLU'd hidden activations by the composed matrix `W_Ψ,msg W₂` — so the
/// planned forward pass never materialises a per-edge message at all.  The
/// message biases contribute `deg(j) · W_Ψ,msg b₂` per node, a per-graph
/// constant folded into [`PlanBlock::psi_static`].
pub(crate) struct PlanBlock {
    /// `Φ→` first-layer columns acting on `h_dst` (`d × d`, row-major).
    pub w_dst_fwd: Vec<f64>,
    /// `Φ→` first-layer columns acting on `h_src`.
    pub w_src_fwd: Vec<f64>,
    /// `Φ→` static term `W_geo g_e + b₁` per destination-sorted edge (`e × d`).
    pub geo_fwd: Vec<f64>,
    /// `Φ←` split, with the relative position negated in the static term.
    pub w_dst_bwd: Vec<f64>,
    pub w_src_bwd: Vec<f64>,
    pub geo_bwd: Vec<f64>,
    /// `Ψ` first-layer columns acting on `h` (`d × d`).
    pub psi_w_h: Vec<f64>,
    /// `Ψ` first-layer column acting on the node input `c` (length `d`).
    pub psi_w_c: Vec<f64>,
    /// Composed matrix `W_Ψ,→ W₂→` applied to the aggregated forward hidden
    /// activations (`d × d`).
    pub psi_m_fwd: Vec<f64>,
    /// Composed matrix `W_Ψ,← W₂←` for the backward direction.
    pub psi_m_bwd: Vec<f64>,
    /// Per-node static `Ψ` pre-activation
    /// `b_Ψ + deg(j) · (W_Ψ,→ b₂→ + W_Ψ,← b₂←)` (`n × d`).
    pub psi_static: Vec<f64>,
}

/// Extract the column block `[col0, col0 + cols)` of a row-major layer weight
/// as its own row-major `out_dim × cols` matrix.
fn column_block(layer: &Linear, col0: usize, cols: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(layer.out_dim * cols);
    for o in 0..layer.out_dim {
        let row = &layer.weight[o * layer.in_dim..(o + 1) * layer.in_dim];
        out.extend_from_slice(&row[col0..col0 + cols]);
    }
    out
}

/// Precompute `W_geo g_e + b₁` for every destination-sorted edge.  `sign`
/// flips the relative position for the backward message direction.
fn geo_terms(layer: &Linear, graph: &LocalGraph, d: usize, sign: f64) -> Vec<f64> {
    let cols = layer.in_dim;
    debug_assert_eq!(cols, 2 * d + 3);
    let mut out = Vec::with_capacity(graph.num_edges() * d);
    for &ei in &graph.edge_order {
        let edge = &graph.edges[ei];
        for o in 0..d {
            let w = &layer.weight[o * cols + 2 * d..o * cols + 2 * d + 3];
            out.push(
                layer.bias[o]
                    + w[0] * (sign * edge.delta[0])
                    + w[1] * (sign * edge.delta[1])
                    + w[2] * edge.dist,
            );
        }
    }
    out
}

/// Row-major product `A B` of two `d × d` matrices.
fn matmul_dd(a: &[f64], b: &[f64], d: usize) -> Vec<f64> {
    let mut out = vec![0.0; d * d];
    for p in 0..d {
        for o in 0..d {
            let apo = a[p * d + o];
            if apo == 0.0 {
                continue;
            }
            let brow = &b[o * d..(o + 1) * d];
            let orow = &mut out[p * d..(p + 1) * d];
            for t in 0..d {
                orow[t] += apo * brow[t];
            }
        }
    }
    out
}

/// `A v` for a row-major `d × d` matrix.
fn matvec_dd(a: &[f64], v: &[f64], d: usize) -> Vec<f64> {
    (0..d).map(|p| a[p * d..(p + 1) * d].iter().zip(v).map(|(x, y)| x * y).sum()).collect()
}

impl PlanBlock {
    fn new(block: &Block, graph: &LocalGraph, d: usize) -> Self {
        let psi = &block.psi.l1;
        debug_assert_eq!(psi.in_dim, 3 * d + 1);
        let psi_w_fwd = column_block(psi, d + 1, d);
        let psi_w_bwd = column_block(psi, 2 * d + 1, d);
        // Per-node static Ψ pre-activation: bias plus the message-bias
        // contribution, which scales with the node degree.
        let q_fwd = matvec_dd(&psi_w_fwd, &block.phi_fwd.l2.bias, d);
        let q_bwd = matvec_dd(&psi_w_bwd, &block.phi_bwd.l2.bias, d);
        let n = graph.num_nodes();
        let mut psi_static = vec![0.0; n * d];
        for j in 0..n {
            let deg = (graph.edge_ptr[j + 1] - graph.edge_ptr[j]) as f64;
            let row = &mut psi_static[j * d..(j + 1) * d];
            for k in 0..d {
                row[k] = psi.bias[k] + deg * (q_fwd[k] + q_bwd[k]);
            }
        }
        PlanBlock {
            w_dst_fwd: column_block(&block.phi_fwd.l1, 0, d),
            w_src_fwd: column_block(&block.phi_fwd.l1, d, d),
            geo_fwd: geo_terms(&block.phi_fwd.l1, graph, d, 1.0),
            w_dst_bwd: column_block(&block.phi_bwd.l1, 0, d),
            w_src_bwd: column_block(&block.phi_bwd.l1, d, d),
            geo_bwd: geo_terms(&block.phi_bwd.l1, graph, d, -1.0),
            psi_w_h: column_block(psi, 0, d),
            psi_w_c: column_block(psi, d, 1),
            psi_m_fwd: matmul_dd(&psi_w_fwd, &block.phi_fwd.l2.weight, d),
            psi_m_bwd: matmul_dd(&psi_w_bwd, &block.phi_bwd.l2.weight, d),
            psi_static,
        }
    }
}

/// A per-graph inference plan: the setup half of the setup/apply split.
///
/// Build once per sub-domain graph (e.g. at preconditioner construction) via
/// [`DssModel::build_plan`], then run [`DssModel::infer_with_plan_into`] any
/// number of times with changing node inputs.  The plan snapshots the model's
/// first-layer weights, so it must be rebuilt if the model is retrained.
pub struct InferencePlan {
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    pub(crate) latent_dim: usize,
    pub(crate) num_blocks: usize,
    /// Source node of every destination-sorted edge.
    pub(crate) edge_src: Vec<usize>,
    /// Destination offsets into the sorted edge list (`n + 1` entries).
    pub(crate) edge_ptr: Vec<usize>,
    pub(crate) blocks: Vec<PlanBlock>,
}

impl InferencePlan {
    /// Build a plan for `model` on `graph`.
    pub fn new(model: &DssModel, graph: &LocalGraph) -> Self {
        let d = model.config().latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        assert_eq!(graph.edge_ptr.len(), n + 1, "stale incidence: run rebuild_incidence");
        assert_eq!(graph.edge_order.len(), e, "stale incidence: run rebuild_incidence");
        let edge_src: Vec<usize> = graph.edge_order.iter().map(|&ei| graph.edges[ei].src).collect();
        let blocks = model.blocks().iter().map(|b| PlanBlock::new(b, graph, d)).collect();
        InferencePlan {
            num_nodes: n,
            num_edges: e,
            latent_dim: d,
            num_blocks: model.config().num_blocks,
            edge_src,
            edge_ptr: graph.edge_ptr.clone(),
            blocks,
        }
    }

    /// Number of nodes of the graph this plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges of the graph this plan was built for.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Heap footprint of the precomputed data in bytes (dominated by the
    /// per-block static edge terms, `2 k̄ e d` doubles).
    pub fn memory_bytes(&self) -> usize {
        let d = self.latent_dim;
        let per_block = std::mem::size_of::<f64>()
            * (2 * self.num_edges * d + 7 * d * d + d + self.num_nodes * d);
        self.blocks.len() * per_block
            + std::mem::size_of::<usize>() * (self.edge_src.len() + self.edge_ptr.len())
    }
}

/// Cast a slice of doubles to single precision.
fn cast_f32(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

/// Transpose a row-major `out_dim × in_dim` matrix into the f32 kernels'
/// `in_dim × out_dim` layout (one contiguous row of output weights per input
/// feature), casting to single precision.
fn transpose_cast_f32(w: &[f64], out_dim: usize, in_dim: usize) -> Vec<f32> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    let mut wt = vec![0.0f32; in_dim * out_dim];
    for o in 0..out_dim {
        for i in 0..in_dim {
            wt[i * out_dim + o] = w[o * in_dim + i] as f32;
        }
    }
    wt
}

/// Single-precision counterpart of [`PlanBlock`].
///
/// All matrices consumed by the f32 GEMM kernels are stored transposed
/// (`in × out`); everything is derived from the f64 [`PlanBlock`] — the
/// splits and compositions are computed in double precision and rounded
/// once, so the f32 plan carries no extra composition error.  Unlike the
/// f64 plan, the f32 plan also snapshots Ψ's second layer: the f32 forward
/// pass never reads the model at all.
///
/// On top of the f64 plan's splits, the f32 layout **fuses the two message
/// directions**: the `Φ→`/`Φ←` weight splits, static edge terms and per-node
/// hidden sums are concatenated column-wise (`[fwd | bwd]`, row width `2d`).
/// One node GEMM then produces both directions' terms, one edge sweep
/// aggregates both (halving the per-edge index overhead and running the
/// SIMD lanes over `2d` contiguous floats), and the two composed Ψ message
/// GEMMs collapse into a single `2d × d` product whose ascending-input
/// accumulation order equals the sequential fwd-then-bwd pair.
struct PlanBlockF32 {
    /// `[W_dst,→ | W_dst,←]` transposed: `d × 2d`.
    w_dst_cat_t: Vec<f32>,
    /// `[W_src,→ | W_src,←]` transposed: `d × 2d`.
    w_src_cat_t: Vec<f32>,
    /// `[geo→ | geo←]` per destination-sorted edge: `e × 2d`.
    geo_cat: Vec<f32>,
    /// `Ψ` first-layer columns acting on `h`, transposed: `d × d`.
    psi_w_h_t: Vec<f32>,
    /// `Ψ` first-layer column acting on the node input `c` (length `d`).
    psi_w_c: Vec<f32>,
    /// `[W_Ψ,→ W₂→ ; W_Ψ,← W₂←]` transposed: `2d × d`.
    psi_m_cat_t: Vec<f32>,
    /// Per-node static `Ψ` pre-activation (`n × d`).
    psi_static: Vec<f32>,
    /// Ψ second layer, transposed weight + bias.
    psi_l2_wt: Vec<f32>,
    psi_l2_b: Vec<f32>,
}

/// Concatenate two row-major `d × d` matrices column-wise and transpose the
/// pair into the f32 kernels' `in × out` layout: row `i` holds
/// `[a[·][i] | b[·][i]]`, `2d` outputs wide.
fn cat_transpose_cast_f32(a: &[f64], b: &[f64], d: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), d * d);
    debug_assert_eq!(b.len(), d * d);
    let mut wt = vec![0.0f32; d * 2 * d];
    for o in 0..d {
        for i in 0..d {
            wt[i * 2 * d + o] = a[o * d + i] as f32;
            wt[i * 2 * d + d + o] = b[o * d + i] as f32;
        }
    }
    wt
}

impl PlanBlockF32 {
    fn new(block: &Block, graph: &LocalGraph, d: usize) -> Self {
        let pb = PlanBlock::new(block, graph, d);
        let e = graph.num_edges();
        let mut geo_cat = vec![0.0f32; e * 2 * d];
        for slot in 0..e {
            for k in 0..d {
                geo_cat[slot * 2 * d + k] = pb.geo_fwd[slot * d + k] as f32;
                geo_cat[slot * 2 * d + d + k] = pb.geo_bwd[slot * d + k] as f32;
            }
        }
        // The composed message matrices stack as GEMM *inputs*: input row i
        // of the transposed layout is the i-th forward hidden dimension for
        // i < d and the (i-d)-th backward one otherwise.
        let mut psi_m_cat_t = vec![0.0f32; 2 * d * d];
        for i in 0..d {
            for o in 0..d {
                psi_m_cat_t[i * d + o] = pb.psi_m_fwd[o * d + i] as f32;
                psi_m_cat_t[(d + i) * d + o] = pb.psi_m_bwd[o * d + i] as f32;
            }
        }
        PlanBlockF32 {
            w_dst_cat_t: cat_transpose_cast_f32(&pb.w_dst_fwd, &pb.w_dst_bwd, d),
            w_src_cat_t: cat_transpose_cast_f32(&pb.w_src_fwd, &pb.w_src_bwd, d),
            geo_cat,
            psi_w_h_t: transpose_cast_f32(&pb.psi_w_h, d, d),
            psi_w_c: cast_f32(&pb.psi_w_c),
            psi_m_cat_t,
            psi_static: cast_f32(&pb.psi_static),
            psi_l2_wt: block.psi.l2.weight_t_f32(),
            psi_l2_b: block.psi.l2.bias_f32(),
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<f32>()
            * (self.w_dst_cat_t.len()
                + self.w_src_cat_t.len()
                + self.geo_cat.len()
                + self.psi_w_h_t.len()
                + self.psi_w_c.len()
                + self.psi_m_cat_t.len()
                + self.psi_static.len()
                + self.psi_l2_wt.len()
                + self.psi_l2_b.len())
    }
}

/// Final-block decoder in single precision.
struct DecoderF32 {
    l1_wt: Vec<f32>,
    l1_b: Vec<f32>,
    /// Second-layer weight row (`out_dim = 1`).
    l2_w: Vec<f32>,
    l2_b: f32,
}

/// Reusable buffers for the f32 inference path ([`InferencePlanF32`]).
///
/// Mirrors [`InferScratch`]: create once, pass to every call; buffers are
/// sized lazily and reused.  Contents are fully overwritten per inference.
/// The direction-fused buffers (`a_dst`, `a_src`, `hsum`) are `n × 2d`.
#[derive(Debug, Default)]
pub struct InferScratchF32 {
    input: Vec<f32>,
    h: Vec<f32>,
    a_dst: Vec<f32>,
    a_src: Vec<f32>,
    hsum: Vec<f32>,
    psi_hidden: Vec<f32>,
    update: Vec<f32>,
    hidden: Vec<f32>,
}

impl InferScratchF32 {
    /// Empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        InferScratchF32::default()
    }
}

/// `acc[k] += max(g[k] + adj[k] + asj[k], 0)` — the fused edge sweep body.
/// Equal-length slices let LLVM fold the four bounds checks and vectorise
/// the whole row.
#[inline(always)]
fn relu_sum3_acc_f32(acc: &mut [f32], g: &[f32], adj: &[f32], asj: &[f32]) {
    let d = acc.len();
    let (g, adj, asj) = (&g[..d], &adj[..d], &asj[..d]);
    for k in 0..d {
        acc[k] += (g[k] + adj[k] + asj[k]).max(0.0);
    }
}

/// Batched fused edge-sweep body: `acc`, `adj` and `asj` are `2d × b`
/// column-interleaved panels, `g` the shared `2d` static row — loaded once
/// per edge and broadcast over the `b` right-hand sides.  Per column the
/// operation sequence equals [`relu_sum3_acc_f32`] exactly.
#[inline(always)]
fn relu_sum3_acc_f32_b(acc: &mut [f32], g: &[f32], adj: &[f32], asj: &[f32], b: usize) {
    let db = acc.len();
    let (adj, asj) = (&adj[..db], &asj[..db]);
    for (k, &gk) in g.iter().enumerate() {
        let ak = &mut acc[k * b..(k + 1) * b];
        let adjk = &adj[k * b..(k + 1) * b];
        let asjk = &asj[k * b..(k + 1) * b];
        for c in 0..b {
            ak[c] += (gk + adjk[c] + asjk[c]).max(0.0);
        }
    }
}

/// A per-graph single-precision inference plan: the f32 sibling of
/// [`InferencePlan`].
///
/// Built once per sub-domain graph via [`DssModel::build_plan_f32`]; the
/// forward pass ([`InferencePlanF32::infer_into`]) runs entirely in f32 —
/// the caller's residual is converted on entry and the decoded output is
/// widened back to f64 on exit, so the surrounding solver stays in double
/// precision.  The plan snapshots *all* weights it needs (including Ψ's
/// second layer and the final decoder), making the apply independent of the
/// model object.
pub struct InferencePlanF32 {
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    pub(crate) latent_dim: usize,
    pub(crate) num_blocks: usize,
    alpha: f32,
    /// Source node of every destination-sorted edge (u32: sub-domain graphs
    /// are far below 2³² nodes, and the narrower index halves gather
    /// traffic).
    edge_src: Vec<u32>,
    /// Destination offsets into the sorted edge list (`n + 1` entries).
    edge_ptr: Vec<usize>,
    blocks: Vec<PlanBlockF32>,
    decoder: Option<DecoderF32>,
}

impl InferencePlanF32 {
    /// Build an f32 plan for `model` on `graph`.
    pub fn new(model: &DssModel, graph: &LocalGraph) -> Self {
        let config = model.config();
        let d = config.latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        assert_eq!(graph.edge_ptr.len(), n + 1, "stale incidence: run rebuild_incidence");
        assert_eq!(graph.edge_order.len(), e, "stale incidence: run rebuild_incidence");
        let edge_src: Vec<u32> =
            graph.edge_order.iter().map(|&ei| graph.edges[ei].src as u32).collect();
        let blocks: Vec<PlanBlockF32> =
            model.blocks().iter().map(|b| PlanBlockF32::new(b, graph, d)).collect();
        let decoder = model.blocks().last().map(|b| DecoderF32 {
            l1_wt: b.decoder.l1.weight_t_f32(),
            l1_b: b.decoder.l1.bias_f32(),
            l2_w: cast_f32(&b.decoder.l2.weight),
            l2_b: b.decoder.l2.bias[0] as f32,
        });
        InferencePlanF32 {
            num_nodes: n,
            num_edges: e,
            latent_dim: d,
            num_blocks: config.num_blocks,
            alpha: config.alpha as f32,
            edge_src,
            edge_ptr: graph.edge_ptr.clone(),
            blocks,
            decoder,
        }
    }

    /// Number of nodes of the graph this plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges of the graph this plan was built for.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Heap footprint of the precomputed data in bytes (about half the f64
    /// plan's: the dominant static edge terms are stored single-precision).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(PlanBlockF32::memory_bytes).sum::<usize>()
            + self.decoder.as_ref().map_or(0, |dec| {
                std::mem::size_of::<f32>() * (dec.l1_wt.len() + dec.l1_b.len() + dec.l2_w.len() + 1)
            })
            + std::mem::size_of::<u32>() * self.edge_src.len()
            + std::mem::size_of::<usize>() * self.edge_ptr.len()
    }

    /// Run the single-precision engine: `input` (the normalised residual) is
    /// converted to f32 on entry, the decoded output is widened back into
    /// `out`.  All intermediates live in `scratch`; the steady state
    /// allocates nothing.
    pub fn infer_into(&self, input: &[f64], scratch: &mut InferScratchF32, out: &mut [f64]) {
        self.infer_core(input, scratch, out, None);
    }

    /// [`InferencePlanF32::infer_into`] with a per-stage wall-clock breakdown
    /// accumulated into `timings`.
    pub fn infer_timed(
        &self,
        input: &[f64],
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_core(input, scratch, out, Some(timings));
    }

    fn infer_core(
        &self,
        input: &[f64],
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.latent_dim;
        let n = self.num_nodes;
        assert_eq!(input.len(), n, "input length mismatch");
        assert_eq!(out.len(), n, "output length mismatch");

        let InferScratchF32 { input: input32, h, a_dst, a_src, hsum, psi_hidden, update, hidden } =
            scratch;
        input32.clear();
        input32.extend(input.iter().map(|&v| v as f32));
        h.clear();
        h.resize(n * d, 0.0);
        let d2 = 2 * d;
        a_dst.resize(n * d2, 0.0);
        a_src.resize(n * d2, 0.0);
        hsum.resize(n * d2, 0.0);
        psi_hidden.resize(n * d, 0.0);
        update.resize(n * d, 0.0);
        hidden.resize(n * d, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        for pb in &self.blocks {
            // Node-level GEMMs, both message directions at once (`n × 2d`).
            gemm::gemm_t_into_f32(h, n, d, d2, &pb.w_dst_cat_t, a_dst);
            gemm::gemm_t_into_f32(h, n, d, d2, &pb.w_src_cat_t, a_src);
            tick!(node_gemm_ns);
            // Fused edge sweep over both directions: one pass, `2d`-wide rows.
            for j in 0..n {
                let adj = &a_dst[j * d2..(j + 1) * d2];
                let acc = &mut hsum[j * d2..(j + 1) * d2];
                acc.fill(0.0);
                for slot in self.edge_ptr[j]..self.edge_ptr[j + 1] {
                    let src = self.edge_src[slot] as usize;
                    relu_sum3_acc_f32(
                        acc,
                        &pb.geo_cat[slot * d2..(slot + 1) * d2],
                        adj,
                        &a_src[src * d2..(src + 1) * d2],
                    );
                }
            }
            tick!(edge_gather_ns);
            for j in 0..n {
                let c = input32[j];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * d..(j + 1) * d];
                for k in 0..d {
                    row[k] = stat[k] + pb.psi_w_c[k] * c;
                }
            }
            gemm::gemm_t_acc_into_f32(h, n, d, d, &pb.psi_w_h_t, psi_hidden);
            gemm::gemm_t_acc_into_f32(hsum, n, d2, d, &pb.psi_m_cat_t, psi_hidden);
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            gemm::gemm_t_bias_into_f32(psi_hidden, n, d, d, &pb.psi_l2_wt, &pb.psi_l2_b, update);
            for (hv, uv) in h.iter_mut().zip(update.iter()) {
                *hv += self.alpha * *uv;
            }
            tick!(psi_update_ns);
        }
        match &self.decoder {
            Some(dec) => {
                gemm::gemm_t_bias_into_f32(h, n, d, d, &dec.l1_wt, &dec.l1_b, hidden);
                for v in hidden.iter_mut() {
                    *v = v.max(0.0);
                }
                for j in 0..n {
                    let row = &hidden[j * d..(j + 1) * d];
                    let mut acc = dec.l2_b;
                    for k in 0..d {
                        acc += dec.l2_w[k] * row[k];
                    }
                    out[j] = acc as f64;
                }
            }
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }

    /// Batched forward pass over `b` right-hand sides: `input` and `out` are
    /// column-interleaved `n × b` panels (`input[j*b + c]` is column `c`'s
    /// value at node `j`).  One sweep over the plan's static streams serves
    /// all `b` columns; column `c` of the output matches
    /// [`InferencePlanF32::infer_into`] run on that column alone.
    pub fn infer_into_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchF32,
        out: &mut [f64],
    ) {
        self.infer_core_b(input, b, scratch, out, None);
    }

    /// [`InferencePlanF32::infer_into_b`] with a per-stage wall-clock
    /// breakdown accumulated into `timings`.
    pub fn infer_timed_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_core_b(input, b, scratch, out, Some(timings));
    }

    fn infer_core_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchF32,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.latent_dim;
        let n = self.num_nodes;
        assert_eq!(input.len(), n * b, "input panel length mismatch");
        assert_eq!(out.len(), n * b, "output panel length mismatch");

        let InferScratchF32 { input: input32, h, a_dst, a_src, hsum, psi_hidden, update, hidden } =
            scratch;
        input32.clear();
        input32.extend(input.iter().map(|&v| v as f32));
        h.clear();
        h.resize(n * d * b, 0.0);
        let d2 = 2 * d;
        a_dst.resize(n * d2 * b, 0.0);
        a_src.resize(n * d2 * b, 0.0);
        hsum.resize(n * d2 * b, 0.0);
        psi_hidden.resize(n * d * b, 0.0);
        update.resize(n * d * b, 0.0);
        hidden.resize(n * d * b, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        let d2b = d2 * b;
        for pb in &self.blocks {
            // Node-level GEMMs, both message directions at once, all b
            // columns per weight load.
            gemm::gemm_t_into_f32_b(h, n, d, d2, b, &pb.w_dst_cat_t, a_dst);
            gemm::gemm_t_into_f32_b(h, n, d, d2, b, &pb.w_src_cat_t, a_src);
            tick!(node_gemm_ns);
            // Fused edge sweep: the static geo row is read once per edge and
            // broadcast across the b columns.
            for j in 0..n {
                let adj = &a_dst[j * d2b..(j + 1) * d2b];
                let acc = &mut hsum[j * d2b..(j + 1) * d2b];
                acc.fill(0.0);
                for slot in self.edge_ptr[j]..self.edge_ptr[j + 1] {
                    let src = self.edge_src[slot] as usize;
                    relu_sum3_acc_f32_b(
                        acc,
                        &pb.geo_cat[slot * d2..(slot + 1) * d2],
                        adj,
                        &a_src[src * d2b..(src + 1) * d2b],
                        b,
                    );
                }
            }
            tick!(edge_gather_ns);
            for j in 0..n {
                let cin = &input32[j * b..(j + 1) * b];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * d * b..(j + 1) * d * b];
                for k in 0..d {
                    let s = stat[k];
                    let wc = pb.psi_w_c[k];
                    let rk = &mut row[k * b..(k + 1) * b];
                    for c in 0..b {
                        rk[c] = s + wc * cin[c];
                    }
                }
            }
            gemm::gemm_t_acc_into_f32_b(h, n, d, d, b, &pb.psi_w_h_t, psi_hidden);
            gemm::gemm_t_acc_into_f32_b(hsum, n, d2, d, b, &pb.psi_m_cat_t, psi_hidden);
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            gemm::gemm_t_bias_into_f32_b(
                psi_hidden,
                n,
                d,
                d,
                b,
                &pb.psi_l2_wt,
                &pb.psi_l2_b,
                update,
            );
            for (hv, uv) in h.iter_mut().zip(update.iter()) {
                *hv += self.alpha * *uv;
            }
            tick!(psi_update_ns);
        }
        match &self.decoder {
            Some(dec) => {
                gemm::gemm_t_bias_into_f32_b(h, n, d, d, b, &dec.l1_wt, &dec.l1_b, hidden);
                for v in hidden.iter_mut() {
                    *v = v.max(0.0);
                }
                for j in 0..n {
                    let row = &hidden[j * d * b..(j + 1) * d * b];
                    for c in 0..b {
                        let mut acc = dec.l2_b;
                        for k in 0..d {
                            acc += dec.l2_w[k] * row[k * b + c];
                        }
                        out[j * b + c] = acc as f64;
                    }
                }
            }
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }
}

/// Per-output-column int8 quantisation of a transposed (`in × out`) f64
/// matrix: `scale[o] = max_i |wt[i][o]| / 127` (1.0 for all-zero columns, so
/// the quantised values stay 0), `q[i][o] = round(wt[i][o] / scale[o])`.
///
/// One scale per *output* equals one scale per row of the original
/// `out × in` weight — the per-output-row scheme: each output's dot product
/// is exact up to a single rounding per weight, and dequantisation is one
/// multiply per output after the shared-axis sweep.
fn quantise_cols_i8(wt: &[f64], in_dim: usize, out_dim: usize) -> (Vec<i8>, Vec<f32>) {
    debug_assert_eq!(wt.len(), in_dim * out_dim);
    let mut q = vec![0i8; wt.len()];
    let mut scale = vec![0.0f32; out_dim];
    for o in 0..out_dim {
        let amax = (0..in_dim).map(|i| wt[i * out_dim + o].abs()).fold(0.0f64, f64::max);
        let s = if amax == 0.0 { 1.0 } else { amax / 127.0 };
        scale[o] = s as f32;
        for i in 0..in_dim {
            q[i * out_dim + o] = (wt[i * out_dim + o] / s).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (q, scale)
}

/// Transpose a row-major `out × in` f64 matrix into the kernels' `in × out`
/// layout, staying in f64 (quantisation happens afterwards, once).
fn transpose_f64(w: &[f64], out_dim: usize, in_dim: usize) -> Vec<f64> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    let mut wt = vec![0.0f64; in_dim * out_dim];
    for o in 0..out_dim {
        for i in 0..in_dim {
            wt[i * out_dim + o] = w[o * in_dim + i];
        }
    }
    wt
}

/// Concatenate two row-major `d × d` f64 matrices column-wise and transpose
/// the pair into `in × out` (`d × 2d`) — the f64 twin of
/// [`cat_transpose_cast_f32`], feeding the quantiser.
fn cat_transpose_f64(a: &[f64], b: &[f64], d: usize) -> Vec<f64> {
    debug_assert_eq!(a.len(), d * d);
    debug_assert_eq!(b.len(), d * d);
    let mut wt = vec![0.0f64; d * 2 * d];
    for o in 0..d {
        for i in 0..d {
            wt[i * 2 * d + o] = a[o * d + i];
            wt[i * 2 * d + d + o] = b[o * d + i];
        }
    }
    wt
}

/// Quantised counterpart of [`PlanBlockF32`]: same direction-fused layout,
/// with the weight matrices stored as int8 + per-output f32 scales and the
/// two dominant memory streams — the `[fwd | bwd]` static geo/bias edge
/// terms (`e × 2d`) and the per-node static Ψ pre-activation (`n × d`) —
/// stored as bf16.  The tiny Ψ `W_c` column, Ψ's second layer and the
/// decoder stay f32: they are negligible in both memory and error budget.
/// All splits/compositions are computed in f64 (via [`PlanBlock`]) and
/// quantised exactly once.
struct PlanBlockQ {
    /// `[W_dst,→ | W_dst,←]` transposed, int8: `d × 2d` + `2d` scales.
    w_dst_cat_q: Vec<i8>,
    w_dst_cat_scale: Vec<f32>,
    /// `[W_src,→ | W_src,←]` transposed, int8.
    w_src_cat_q: Vec<i8>,
    w_src_cat_scale: Vec<f32>,
    /// `[geo→ | geo←]` per destination-sorted edge, bf16: `e × 2d`.
    geo_cat: Vec<u16>,
    /// `Ψ` first-layer columns acting on `h`, transposed int8: `d × d`.
    psi_w_h_q: Vec<i8>,
    psi_w_h_scale: Vec<f32>,
    /// `Ψ` first-layer column acting on the node input `c` (length `d`, f32).
    psi_w_c: Vec<f32>,
    /// `[W_Ψ,→ W₂→ ; W_Ψ,← W₂←]` transposed int8: `2d × d`.
    psi_m_cat_q: Vec<i8>,
    psi_m_cat_scale: Vec<f32>,
    /// Per-node static `Ψ` pre-activation, bf16 (`n × d`).
    psi_static: Vec<u16>,
    /// Ψ second layer, transposed weight + bias (f32).
    psi_l2_wt: Vec<f32>,
    psi_l2_b: Vec<f32>,
}

impl PlanBlockQ {
    fn new(block: &Block, graph: &LocalGraph, d: usize) -> Self {
        let pb = PlanBlock::new(block, graph, d);
        let e = graph.num_edges();
        // bf16 static edge terms, direction-fused exactly like the f32 plan.
        let mut geo_cat = vec![0u16; e * 2 * d];
        for slot in 0..e {
            for k in 0..d {
                geo_cat[slot * 2 * d + k] = gemm::f32_to_bf16(pb.geo_fwd[slot * d + k] as f32);
                geo_cat[slot * 2 * d + d + k] = gemm::f32_to_bf16(pb.geo_bwd[slot * d + k] as f32);
            }
        }
        let psi_static: Vec<u16> =
            pb.psi_static.iter().map(|&v| gemm::f32_to_bf16(v as f32)).collect();
        // Composed message matrices stacked as GEMM inputs (fwd rows then bwd
        // rows of the transposed layout), then quantised per output column.
        let mut psi_m_cat_t = vec![0.0f64; 2 * d * d];
        for i in 0..d {
            for o in 0..d {
                psi_m_cat_t[i * d + o] = pb.psi_m_fwd[o * d + i];
                psi_m_cat_t[(d + i) * d + o] = pb.psi_m_bwd[o * d + i];
            }
        }
        let (w_dst_cat_q, w_dst_cat_scale) =
            quantise_cols_i8(&cat_transpose_f64(&pb.w_dst_fwd, &pb.w_dst_bwd, d), d, 2 * d);
        let (w_src_cat_q, w_src_cat_scale) =
            quantise_cols_i8(&cat_transpose_f64(&pb.w_src_fwd, &pb.w_src_bwd, d), d, 2 * d);
        let (psi_w_h_q, psi_w_h_scale) = quantise_cols_i8(&transpose_f64(&pb.psi_w_h, d, d), d, d);
        let (psi_m_cat_q, psi_m_cat_scale) = quantise_cols_i8(&psi_m_cat_t, 2 * d, d);
        PlanBlockQ {
            w_dst_cat_q,
            w_dst_cat_scale,
            w_src_cat_q,
            w_src_cat_scale,
            geo_cat,
            psi_w_h_q,
            psi_w_h_scale,
            psi_w_c: cast_f32(&pb.psi_w_c),
            psi_m_cat_q,
            psi_m_cat_scale,
            psi_static,
            psi_l2_wt: block.psi.l2.weight_t_f32(),
            psi_l2_b: block.psi.l2.bias_f32(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.w_dst_cat_q.len()
            + self.w_src_cat_q.len()
            + self.psi_w_h_q.len()
            + self.psi_m_cat_q.len()
            + std::mem::size_of::<u16>() * (self.geo_cat.len() + self.psi_static.len())
            + std::mem::size_of::<f32>()
                * (self.w_dst_cat_scale.len()
                    + self.w_src_cat_scale.len()
                    + self.psi_w_h_scale.len()
                    + self.psi_m_cat_scale.len()
                    + self.psi_w_c.len()
                    + self.psi_l2_wt.len()
                    + self.psi_l2_b.len())
    }
}

/// Reusable buffers for the quantised inference path ([`InferencePlanQ`]).
///
/// Mirrors [`InferScratchF32`], with two differences: the per-node hidden
/// sums are *stored* bf16 (`n × 2d` `u16`s — halving the read traffic of the
/// Ψ message GEMM) and a single `2d`-wide f32 row (`acc`) accumulates each
/// node's edge sweep before it is rounded to bf16 once.
#[derive(Debug, Default)]
pub struct InferScratchQ {
    input: Vec<f32>,
    h: Vec<f32>,
    a_dst: Vec<f32>,
    a_src: Vec<f32>,
    /// Per-node hidden sums, bf16-packed (`n × 2d`).
    hsum: Vec<u16>,
    /// f32 accumulator row for one node's edge sweep (`2d`).
    acc: Vec<f32>,
    /// Widened-weight panel of the int8 GEMM kernels (`≤ 2d × 2d`).
    wbuf: Vec<f32>,
    psi_hidden: Vec<f32>,
    update: Vec<f32>,
    hidden: Vec<f32>,
}

impl InferScratchQ {
    /// Empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        InferScratchQ::default()
    }
}

/// `acc[k] += max(decode(g[k]) + adj[k] + asj[k], 0)` — the fused edge-sweep
/// body with bf16 static terms decoded on the fly (a 16-bit shift per lane).
#[inline(always)]
fn relu_sum3_acc_bf16_geo(acc: &mut [f32], g: &[u16], adj: &[f32], asj: &[f32]) {
    let d = acc.len();
    let (g, adj, asj) = (&g[..d], &adj[..d], &asj[..d]);
    for k in 0..d {
        acc[k] += (gemm::bf16_to_f32(g[k]) + adj[k] + asj[k]).max(0.0);
    }
}

/// Batched bf16 edge-sweep body: the static term is **decoded once per edge**
/// and broadcast across the `b` columns (the unbatched path decodes it once
/// per (edge, rhs)).  Per column the operation sequence equals
/// [`relu_sum3_acc_bf16_geo`] exactly.
#[inline(always)]
fn relu_sum3_acc_bf16_geo_b(acc: &mut [f32], g: &[u16], adj: &[f32], asj: &[f32], b: usize) {
    let db = acc.len();
    let (adj, asj) = (&adj[..db], &asj[..db]);
    for (k, &gq) in g.iter().enumerate() {
        let gk = gemm::bf16_to_f32(gq);
        let ak = &mut acc[k * b..(k + 1) * b];
        let adjk = &adj[k * b..(k + 1) * b];
        let asjk = &asj[k * b..(k + 1) * b];
        for c in 0..b {
            ak[c] += (gk + adjk[c] + asjk[c]).max(0.0);
        }
    }
}

/// A per-graph **quantised** inference plan: int8 weights (per-output f32
/// scales), bf16 static streams, f32 accumulators — the third member of the
/// [`InferencePlan`] / [`InferencePlanF32`] family.
///
/// Built once per sub-domain graph via [`DssModel::build_plan_q`]; the
/// forward pass ([`InferencePlanQ::infer_into`]) keeps all *state* (latent
/// `H`, node GEMM outputs, Ψ pre-activations) in f32 and dequantises weights
/// inside the GEMM kernels, so accuracy degrades only by the weight rounding
/// (≤ 2⁻⁸ relative per weight) and the bf16 rounding of the static streams
/// (≤ 2⁻⁹ relative each) — in practice ~1e-3 relative on the decoded output,
/// far below what the flexible outer Krylov method notices.  The residual is
/// converted on entry and the decoded output widened back to f64 on exit,
/// exactly like the f32 engine.
///
/// The plan's memory footprint is roughly **half the f32 plan's** (the
/// dominant `e × 2d` static edge stream and the `n × d` static Ψ term are
/// 2-byte, the weights 1-byte), which is what the bandwidth-bound edge sweep
/// actually pays for.
pub struct InferencePlanQ {
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    pub(crate) latent_dim: usize,
    pub(crate) num_blocks: usize,
    alpha: f32,
    /// Source node of every destination-sorted edge (u32, like the f32 plan).
    edge_src: Vec<u32>,
    /// Destination offsets into the sorted edge list (`n + 1` entries).
    edge_ptr: Vec<usize>,
    blocks: Vec<PlanBlockQ>,
    decoder: Option<DecoderF32>,
}

impl InferencePlanQ {
    /// Build a quantised plan for `model` on `graph`.
    pub fn new(model: &DssModel, graph: &LocalGraph) -> Self {
        let config = model.config();
        let d = config.latent_dim;
        let n = graph.num_nodes();
        let e = graph.num_edges();
        assert_eq!(graph.edge_ptr.len(), n + 1, "stale incidence: run rebuild_incidence");
        assert_eq!(graph.edge_order.len(), e, "stale incidence: run rebuild_incidence");
        let edge_src: Vec<u32> =
            graph.edge_order.iter().map(|&ei| graph.edges[ei].src as u32).collect();
        let blocks: Vec<PlanBlockQ> =
            model.blocks().iter().map(|b| PlanBlockQ::new(b, graph, d)).collect();
        let decoder = model.blocks().last().map(|b| DecoderF32 {
            l1_wt: b.decoder.l1.weight_t_f32(),
            l1_b: b.decoder.l1.bias_f32(),
            l2_w: cast_f32(&b.decoder.l2.weight),
            l2_b: b.decoder.l2.bias[0] as f32,
        });
        InferencePlanQ {
            num_nodes: n,
            num_edges: e,
            latent_dim: d,
            num_blocks: config.num_blocks,
            alpha: config.alpha as f32,
            edge_src,
            edge_ptr: graph.edge_ptr.clone(),
            blocks,
            decoder,
        }
    }

    /// Number of nodes of the graph this plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges of the graph this plan was built for.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Heap footprint of the precomputed data in bytes (about half the f32
    /// plan's: the dominant static streams are 2-byte, the weights 1-byte).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(PlanBlockQ::memory_bytes).sum::<usize>()
            + self.decoder.as_ref().map_or(0, |dec| {
                std::mem::size_of::<f32>() * (dec.l1_wt.len() + dec.l1_b.len() + dec.l2_w.len() + 1)
            })
            + std::mem::size_of::<u32>() * self.edge_src.len()
            + std::mem::size_of::<usize>() * self.edge_ptr.len()
    }

    /// Run the quantised engine: `input` (the normalised residual) is
    /// converted to f32 on entry, the decoded output is widened back into
    /// `out`.  All intermediates live in `scratch`; the steady state
    /// allocates nothing.
    pub fn infer_into(&self, input: &[f64], scratch: &mut InferScratchQ, out: &mut [f64]) {
        self.infer_core(input, scratch, out, None);
    }

    /// [`InferencePlanQ::infer_into`] with a per-stage wall-clock breakdown
    /// accumulated into `timings`.
    pub fn infer_timed(
        &self,
        input: &[f64],
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_core(input, scratch, out, Some(timings));
    }

    fn infer_core(
        &self,
        input: &[f64],
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.latent_dim;
        let n = self.num_nodes;
        assert_eq!(input.len(), n, "input length mismatch");
        assert_eq!(out.len(), n, "output length mismatch");

        let InferScratchQ {
            input: input32,
            h,
            a_dst,
            a_src,
            hsum,
            acc,
            wbuf,
            psi_hidden,
            update,
            hidden,
        } = scratch;
        input32.clear();
        input32.extend(input.iter().map(|&v| v as f32));
        h.clear();
        h.resize(n * d, 0.0);
        let d2 = 2 * d;
        a_dst.resize(n * d2, 0.0);
        a_src.resize(n * d2, 0.0);
        hsum.resize(n * d2, 0);
        acc.resize(d2, 0.0);
        psi_hidden.resize(n * d, 0.0);
        update.resize(n * d, 0.0);
        hidden.resize(n * d, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        for pb in &self.blocks {
            // Node-level int8 GEMMs, both message directions at once
            // (`n × 2d`): the weights dequantise inside the kernel, the
            // outputs land in f32.
            gemm::gemm_t_into_i8(h, n, d, d2, &pb.w_dst_cat_q, &pb.w_dst_cat_scale, wbuf, a_dst);
            gemm::gemm_t_into_i8(h, n, d, d2, &pb.w_src_cat_q, &pb.w_src_cat_scale, wbuf, a_src);
            tick!(node_gemm_ns);
            // Fused edge sweep: bf16 static terms decoded on the fly, f32
            // accumulation into one row, rounded to bf16 once per node.
            for j in 0..n {
                let adj = &a_dst[j * d2..(j + 1) * d2];
                acc.fill(0.0);
                for slot in self.edge_ptr[j]..self.edge_ptr[j + 1] {
                    let src = self.edge_src[slot] as usize;
                    relu_sum3_acc_bf16_geo(
                        acc,
                        &pb.geo_cat[slot * d2..(slot + 1) * d2],
                        adj,
                        &a_src[src * d2..(src + 1) * d2],
                    );
                }
                gemm::store_bf16(acc, &mut hsum[j * d2..(j + 1) * d2]);
            }
            tick!(edge_gather_ns);
            for j in 0..n {
                let c = input32[j];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * d..(j + 1) * d];
                gemm::gather_bf16(stat, row);
                for k in 0..d {
                    row[k] += pb.psi_w_c[k] * c;
                }
            }
            gemm::gemm_t_acc_into_i8(
                h,
                n,
                d,
                d,
                &pb.psi_w_h_q,
                &pb.psi_w_h_scale,
                wbuf,
                psi_hidden,
            );
            gemm::gemm_t_acc_into_i8_bf16(
                hsum,
                n,
                d2,
                d,
                &pb.psi_m_cat_q,
                &pb.psi_m_cat_scale,
                wbuf,
                psi_hidden,
            );
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            gemm::gemm_t_bias_into_f32(psi_hidden, n, d, d, &pb.psi_l2_wt, &pb.psi_l2_b, update);
            for (hv, uv) in h.iter_mut().zip(update.iter()) {
                *hv += self.alpha * *uv;
            }
            tick!(psi_update_ns);
        }
        match &self.decoder {
            Some(dec) => {
                gemm::gemm_t_bias_into_f32(h, n, d, d, &dec.l1_wt, &dec.l1_b, hidden);
                for v in hidden.iter_mut() {
                    *v = v.max(0.0);
                }
                for j in 0..n {
                    let row = &hidden[j * d..(j + 1) * d];
                    let mut acc = dec.l2_b;
                    for k in 0..d {
                        acc += dec.l2_w[k] * row[k];
                    }
                    out[j] = acc as f64;
                }
            }
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }

    /// Batched quantised forward pass over `b` right-hand sides: `input` and
    /// `out` are column-interleaved `n × b` panels.  The bf16 static streams
    /// (geo edge terms and the Ψ static rows) are decoded once per element
    /// and broadcast across all `b` columns; column `c` of the output matches
    /// [`InferencePlanQ::infer_into`] run on that column alone.
    pub fn infer_into_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchQ,
        out: &mut [f64],
    ) {
        self.infer_core_b(input, b, scratch, out, None);
    }

    /// [`InferencePlanQ::infer_into_b`] with a per-stage wall-clock breakdown
    /// accumulated into `timings`.
    pub fn infer_timed_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        timings: &mut InferenceTimings,
    ) {
        self.infer_core_b(input, b, scratch, out, Some(timings));
    }

    fn infer_core_b(
        &self,
        input: &[f64],
        b: usize,
        scratch: &mut InferScratchQ,
        out: &mut [f64],
        mut timings: Option<&mut InferenceTimings>,
    ) {
        let d = self.latent_dim;
        let n = self.num_nodes;
        assert_eq!(input.len(), n * b, "input panel length mismatch");
        assert_eq!(out.len(), n * b, "output panel length mismatch");

        let InferScratchQ {
            input: input32,
            h,
            a_dst,
            a_src,
            hsum,
            acc,
            wbuf,
            psi_hidden,
            update,
            hidden,
        } = scratch;
        input32.clear();
        input32.extend(input.iter().map(|&v| v as f32));
        h.clear();
        h.resize(n * d * b, 0.0);
        let d2 = 2 * d;
        a_dst.resize(n * d2 * b, 0.0);
        a_src.resize(n * d2 * b, 0.0);
        hsum.resize(n * d2 * b, 0);
        acc.resize(d2 * b, 0.0);
        psi_hidden.resize(n * d * b, 0.0);
        update.resize(n * d * b, 0.0);
        hidden.resize(n * d * b, 0.0);

        let mut last = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
        macro_rules! tick {
            ($field:ident) => {
                if let Some(t) = timings.as_deref_mut() {
                    let now = Instant::now(); // detlint::allow(nondet-clock): timing telemetry only
                    t.$field += now.duration_since(last).as_nanos() as u64;
                    last = now;
                }
            };
        }

        let d2b = d2 * b;
        for pb in &self.blocks {
            gemm::gemm_t_into_i8_b(
                h,
                n,
                d,
                d2,
                b,
                &pb.w_dst_cat_q,
                &pb.w_dst_cat_scale,
                wbuf,
                a_dst,
            );
            gemm::gemm_t_into_i8_b(
                h,
                n,
                d,
                d2,
                b,
                &pb.w_src_cat_q,
                &pb.w_src_cat_scale,
                wbuf,
                a_src,
            );
            tick!(node_gemm_ns);
            // Fused edge sweep: bf16 static terms decoded once per edge for
            // all b columns, f32 accumulation into one panel row, rounded to
            // bf16 once per node.
            for j in 0..n {
                let adj = &a_dst[j * d2b..(j + 1) * d2b];
                acc.fill(0.0);
                for slot in self.edge_ptr[j]..self.edge_ptr[j + 1] {
                    let src = self.edge_src[slot] as usize;
                    relu_sum3_acc_bf16_geo_b(
                        acc,
                        &pb.geo_cat[slot * d2..(slot + 1) * d2],
                        adj,
                        &a_src[src * d2b..(src + 1) * d2b],
                        b,
                    );
                }
                gemm::store_bf16(acc, &mut hsum[j * d2b..(j + 1) * d2b]);
            }
            tick!(edge_gather_ns);
            for j in 0..n {
                let cin = &input32[j * b..(j + 1) * b];
                let stat = &pb.psi_static[j * d..(j + 1) * d];
                let row = &mut psi_hidden[j * d * b..(j + 1) * d * b];
                for k in 0..d {
                    let s = gemm::bf16_to_f32(stat[k]);
                    let wc = pb.psi_w_c[k];
                    let rk = &mut row[k * b..(k + 1) * b];
                    for c in 0..b {
                        rk[c] = s + wc * cin[c];
                    }
                }
            }
            gemm::gemm_t_acc_into_i8_b(
                h,
                n,
                d,
                d,
                b,
                &pb.psi_w_h_q,
                &pb.psi_w_h_scale,
                wbuf,
                psi_hidden,
            );
            gemm::gemm_t_acc_into_i8_bf16_b(
                hsum,
                n,
                d2,
                d,
                b,
                &pb.psi_m_cat_q,
                &pb.psi_m_cat_scale,
                wbuf,
                psi_hidden,
            );
            for v in psi_hidden.iter_mut() {
                *v = v.max(0.0);
            }
            gemm::gemm_t_bias_into_f32_b(
                psi_hidden,
                n,
                d,
                d,
                b,
                &pb.psi_l2_wt,
                &pb.psi_l2_b,
                update,
            );
            for (hv, uv) in h.iter_mut().zip(update.iter()) {
                *hv += self.alpha * *uv;
            }
            tick!(psi_update_ns);
        }
        match &self.decoder {
            Some(dec) => {
                gemm::gemm_t_bias_into_f32_b(h, n, d, d, b, &dec.l1_wt, &dec.l1_b, hidden);
                for v in hidden.iter_mut() {
                    *v = v.max(0.0);
                }
                for j in 0..n {
                    let row = &hidden[j * d * b..(j + 1) * d * b];
                    for c in 0..b {
                        let mut acc = dec.l2_b;
                        for k in 0..d {
                            acc += dec.l2_w[k] * row[k * b + c];
                        }
                        out[j * b + c] = acc as f64;
                    }
                }
            }
            None => out.fill(0.0),
        }
        tick!(decoder_ns);
        let _ = last; // the final tick's stamp is intentionally unused
        if let Some(t) = timings {
            t.calls += 1;
        }
    }
}

/// Wall-clock breakdown of planned inference, one bucket per pipeline stage.
///
/// Filled by [`DssModel::infer_with_plan_timed`]; buckets accumulate across
/// calls so one struct can aggregate a whole preconditioner application (or
/// several).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InferenceTimings {
    /// Node-level GEMMs `H W_dstᵀ` / `H W_srcᵀ` for both message directions.
    pub node_gemm_ns: u64,
    /// Fused edge sweep: static term + gathered node terms, ReLU, and the
    /// per-node aggregation of the hidden activations (the former edge GEMM
    /// plus scatter, collapsed into one contiguous pass).
    pub edge_gather_ns: u64,
    /// Ψ update: static + c-term init, three accumulating GEMMs, ReLU,
    /// second layer and the latent-state step.
    pub psi_update_ns: u64,
    /// Final-block decoder.
    pub decoder_ns: u64,
    /// Number of inference calls folded into the buckets.
    pub calls: u64,
}

impl InferenceTimings {
    /// Add another timing record into this one.
    pub fn merge(&mut self, other: &InferenceTimings) {
        self.node_gemm_ns += other.node_gemm_ns;
        self.edge_gather_ns += other.edge_gather_ns;
        self.psi_update_ns += other.psi_update_ns;
        self.decoder_ns += other.decoder_ns;
        self.calls += other.calls;
    }

    /// Stage name / nanosecond pairs, in pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 4] {
        [
            ("node_gemm", self.node_gemm_ns),
            ("edge_gather", self.edge_gather_ns),
            ("psi_update", self.psi_update_ns),
            ("decoder", self.decoder_ns),
        ]
    }

    /// Total time across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stages().iter().map(|&(_, ns)| ns).sum()
    }
}

/// A lock-protected pool of scratch buffers for batched inference, generic
/// over the scratch type (`InferScratch` by default; [`InferScratchF32`] and
/// [`InferScratchQ`] pool the same way for the reduced-precision engines).
///
/// `acquire` pops a warmed-up scratch (or creates an empty one when the pool
/// is dry); `release` returns it.  Buffers grow to the largest graph they
/// ever served and are reused across batch items *and* across calls, so a
/// long-lived pool makes repeated [`DssModel::infer_batch_with_pool`] calls
/// allocation-free in the steady state.  The pool never influences results —
/// scratch contents are fully overwritten by every inference.
///
/// Two robustness properties:
///
/// * **Bounded retention.**  Idle buffers are capped at the high-water mark
///   of *concurrent* borrows ever observed — more idle buffers than peak
///   concurrency can never be useful, so buffers released beyond that cap
///   are dropped instead of retained forever.
/// * **Panic tolerance.**  The internal mutex recovers from poisoning: a
///   worker that panics between `acquire` and `release` must not cascade
///   into poison-panics on every later pool operation.  The guarded state
///   (a list of interchangeable buffers plus counters) has no invariant a
///   mid-panic writer could break.
///
/// **Size classes.**  Borrows are keyed by a *size class* — in practice the
/// batch width `b` of a batched inference, so an `n × 8` panel scratch and a
/// `n × 1` scratch live in separate bins.  Without the split, one batched
/// apply would permanently inflate every pooled buffer to `b×` the unbatched
/// size (buffers only ever grow), and alternating widths would hand b=1
/// borrowers panel-sized allocations while batched borrowers keep drawing
/// cold buffers.  [`ScratchPool::acquire`]/[`ScratchPool::release`] are the
/// width-1 shorthand used by the unbatched paths; the retention cap applies
/// per class.
#[derive(Debug)]
pub struct ScratchPool<T = InferScratch> {
    state: TrackedMutex<PoolState<T>>,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        ScratchPool {
            // Commutative: the bins hold *interchangeable* buffers, so which
            // of two same-batch borrowers pops a given buffer first cannot
            // affect any solver output (contents are overwritten on use).
            state: TrackedMutex::new_commutative(
                PoolState::default(),
                "gnn::plan::ScratchPool::state",
                "pooled buffers are interchangeable; acquire/release order never \
                 reaches solver output",
            ),
        }
    }
}

/// Size class of the unbatched (single right-hand-side) borrows.
const POOL_CLASS_UNBATCHED: usize = 1;

#[derive(Debug)]
struct PoolState<T> {
    /// Idle buffers, binned by size class (few classes — linear scan).
    bins: Vec<(usize, Vec<T>)>,
    /// Buffers currently borrowed (acquired and not yet released).
    outstanding: usize,
    /// Maximum `outstanding` ever observed — the per-class idle-retention cap.
    high_water: usize,
}

impl<T> Default for PoolState<T> {
    fn default() -> Self {
        PoolState { bins: Vec::new(), outstanding: 0, high_water: 0 }
    }
}

impl<T> PoolState<T> {
    fn bin_mut(&mut self, class: usize) -> &mut Vec<T> {
        if let Some(pos) = self.bins.iter().position(|(c, _)| *c == class) {
            &mut self.bins[pos].1
        } else {
            self.bins.push((class, Vec::new()));
            match self.bins.last_mut() {
                Some(last) => &mut last.1,
                None => unreachable!("bins is non-empty: an entry was just pushed"),
            }
        }
    }
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool; buffers are created on demand.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Take an unbatched (size class 1) scratch out of the pool.
    pub fn acquire(&self) -> T {
        self.acquire_class(POOL_CLASS_UNBATCHED)
    }

    /// Take a scratch of the given size class (batch width) out of the pool,
    /// or create a fresh one when that class's bin is dry.  Borrows of other
    /// classes are never handed out.
    pub fn acquire_class(&self, class: usize) -> T {
        let mut st = self.state.lock();
        st.outstanding += 1;
        st.high_water = st.high_water.max(st.outstanding);
        st.bin_mut(class).pop().unwrap_or_default()
    }

    /// Return an unbatched scratch to the pool for reuse.
    pub fn release(&self, scratch: T) {
        self.release_class(POOL_CLASS_UNBATCHED, scratch);
    }

    /// Return a scratch to its size class's bin.  Buffers beyond the
    /// high-water concurrent-borrow count (per class) are dropped.
    pub fn release_class(&self, class: usize, scratch: T) {
        let mut st = self.state.lock();
        // Saturating: a panicked worker may never have reported its release,
        // and foreign buffers can legitimately be donated to the pool.
        st.outstanding = st.outstanding.saturating_sub(1);
        let cap = st.high_water;
        let bin = st.bin_mut(class);
        if bin.len() < cap {
            bin.push(scratch);
        }
    }

    /// Number of idle buffers currently pooled, across all size classes.
    pub fn idle(&self) -> usize {
        self.state.lock().bins.iter().map(|(_, bin)| bin.len()).sum()
    }

    /// Number of idle buffers pooled for one size class.
    pub fn idle_class(&self, class: usize) -> usize {
        self.state.lock().bins.iter().find(|(c, _)| *c == class).map_or(0, |(_, bin)| bin.len())
    }

    /// Drop every idle buffer and reset the idle-retention cap, releasing
    /// the memory a past high-concurrency (or large-graph) burst grew the
    /// pool to.  Outstanding borrows are unaffected; the pool refills on
    /// demand.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.bins.clear();
        st.high_water = st.outstanding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("F64".parse::<Precision>().unwrap(), Precision::F64);
        assert_eq!("single".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("int8".parse::<Precision>().unwrap(), Precision::Int8);
        assert_eq!("I8".parse::<Precision>().unwrap(), Precision::Int8);
        assert_eq!("quantised".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn quantise_cols_i8_is_exact_per_column_scale() {
        // A 3×2 transposed matrix: column 0 has amax 2.0, column 1 is zero.
        let wt = vec![2.0, 0.0, -1.0, 0.0, 0.5, 0.0];
        let (q, scale) = quantise_cols_i8(&wt, 3, 2);
        assert_eq!(scale[1], 1.0, "all-zero columns get scale 1.0");
        assert!(q.iter().skip(1).step_by(2).all(|&v| v == 0));
        assert_eq!(q[0], 127, "the column max quantises to ±127");
        assert!((scale[0] as f64 - 2.0 / 127.0).abs() < 1e-8, "scale stored in f32");
        // Dequantised values stay within half a quantisation step.
        for i in 0..3 {
            let deq = q[i * 2] as f64 * scale[0] as f64;
            assert!((deq - wt[i * 2]).abs() <= scale[0] as f64 * 0.5 + 1e-12);
        }
    }

    #[test]
    fn pool_caps_idle_buffers_at_high_water_borrows() {
        let pool: ScratchPool = ScratchPool::new();
        // Peak of three concurrent borrows.
        let (a, b, c) = (pool.acquire(), pool.acquire(), pool.acquire());
        pool.release(a);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.idle(), 3);
        // Donating extra buffers must not grow the pool past the high-water
        // mark of 3.
        pool.release(InferScratch::new());
        pool.release(InferScratch::new());
        assert_eq!(pool.idle(), 3, "idle buffers must stay capped at peak concurrency");
        // Steady-state reuse keeps the count stable.
        let s = pool.acquire();
        pool.release(s);
        assert_eq!(pool.idle(), 3);
    }

    #[test]
    fn pool_sequential_use_retains_a_single_buffer() {
        let pool: ScratchPool = ScratchPool::new();
        for _ in 0..5 {
            let s = pool.acquire();
            pool.release(s);
        }
        assert_eq!(pool.idle(), 1, "sequential borrows never need more than one idle buffer");
    }

    #[test]
    fn pool_survives_mutex_poisoning() {
        let pool: ScratchPool = ScratchPool::new();
        let s = pool.acquire();
        pool.release(s);
        // Poison the mutex: panic while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.state.lock();
            panic!("worker panic while holding the pool lock");
        }));
        assert!(result.is_err());
        assert!(pool.state.is_poisoned(), "mutex must actually be poisoned");
        // Every pool operation must keep working.
        assert_eq!(pool.idle(), 1);
        let s = pool.acquire();
        pool.release(s);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_release_of_unacquired_buffer_is_safe() {
        let pool: ScratchPool = ScratchPool::new();
        // outstanding is 0; release must not underflow and (with no borrow
        // history) must not retain the buffer.
        pool.release(InferScratch::new());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_keeps_batched_and_unbatched_borrows_in_separate_bins() {
        // Alternating b=1 / b=8 borrows: each width must recycle its own
        // buffer, the b=1 bin must never be handed a panel-sized buffer and
        // the pool must not accumulate one buffer per alternation.
        let pool: ScratchPool<Vec<f64>> = ScratchPool::new();
        let mut big = pool.acquire_class(8);
        assert!(big.capacity() == 0, "first batched borrow starts cold");
        big.resize(8 * 1024, 0.0);
        let big_ptr = big.as_ptr();
        pool.release_class(8, big);

        let mut small = pool.acquire();
        assert_eq!(small.capacity(), 0, "a b=1 borrow must not receive the n×8 panel buffer");
        small.resize(1024, 0.0);
        pool.release(small);

        let big = pool.acquire_class(8);
        assert_eq!(big.as_ptr(), big_ptr, "the batched borrow recycles the batched buffer");
        assert!(big.capacity() >= 8 * 1024);
        pool.release_class(8, big);

        for _ in 0..16 {
            let s = pool.acquire();
            pool.release(s);
            let s8 = pool.acquire_class(8);
            pool.release_class(8, s8);
        }
        assert_eq!(pool.idle_class(1), 1, "sequential b=1 borrows keep one idle buffer");
        assert_eq!(pool.idle_class(8), 1, "sequential b=8 borrows keep one idle buffer");
        assert_eq!(pool.idle(), 2, "alternating widths must not inflate the pool");

        pool.clear();
        assert_eq!(pool.idle(), 0);
    }
}
