//! Parity of the optimised inference engine against the retained naive
//! reference, plus gradient-stability checks.
//!
//! The fast path (`DssModel::infer_with_plan_into` and everything routed
//! through it) reassociates the first-layer sums — split node-level GEMMs
//! plus precomputed static edge terms instead of one edge-level GEMM — so it
//! is *not* bit-identical to the reference formulation.  These tests pin the
//! agreement to ≤ 1e-12 relative error on random graphs and random weights,
//! and verify that the training path (`backward`) still matches finite
//! differences, i.e. that the refactor left the gradients untouched.
//!
//! The single-precision engine (`InferencePlanF32`) is pinned against the
//! f64 plan path at ≤ 1e-4 relative error over the same random graph
//! distribution — the bound the DDM-GNN preconditioner's f32 mode relies on.
//!
//! The quantised engine (`InferencePlanQ`: int8 weights with per-output f32
//! scales, bf16 static streams, f32 accumulators) is pinned at ≤ 1e-2
//! relative error against the f64 plan path — the documented tolerance of
//! the `Precision::Int8` preconditioner mode.

use gnn::{
    DssConfig, DssModel, InferScratch, InferScratchF32, InferScratchQ, LocalGraph, ScratchPool,
};
use meshgen::Point2;
use proptest::prelude::*;
use sparse::CooMatrix;

/// Build a random connected local graph: a chain backbone (guaranteeing
/// connectivity) plus random extra symmetric couplings, random geometry and a
/// random right-hand side.
fn random_graph(n: usize, extra: &[(usize, usize)], geo_seed: u64, rhs_seed: u64) -> LocalGraph {
    let mut coo = CooMatrix::new(n, n);
    let mut touched = vec![false; n];
    let push_pair = |coo: &mut CooMatrix, i: usize, j: usize| {
        coo.push(i, j, -1.0).unwrap();
        coo.push(j, i, -1.0).unwrap();
    };
    for i in 0..n - 1 {
        push_pair(&mut coo, i, i + 1);
    }
    for &(a, b) in extra {
        let (i, j) = (a % n, b % n);
        if i != j && !(touched[i] && touched[j]) {
            // Cap the fill-in a little; duplicates are merged by to_csr.
            push_pair(&mut coo, i, j);
            touched[i] = true;
            touched[j] = true;
        }
    }
    for i in 0..n {
        coo.push(i, i, 8.0).unwrap();
    }
    let positions: Vec<Point2> = (0..n)
        .map(|i| {
            let t = i as f64 + geo_seed as f64 * 0.37;
            Point2::new((t * 0.71).sin() * 2.0, (t * 0.53).cos() * 2.0)
        })
        .collect();
    let rhs: Vec<f64> =
        (0..n).map(|i| ((i as u64 * 31 + rhs_seed * 17) % 23) as f64 * 0.2 - 2.0).collect();
    let mut boundary = vec![false; n];
    boundary[0] = true;
    boundary[n - 1] = true;
    LocalGraph::new(coo.to_csr(), positions, &rhs, boundary)
}

fn max_relative_deviation(a: &[f64], b: &[f64]) -> f64 {
    let scale = b.iter().map(|v| v.abs()).fold(1.0_f64, f64::max);
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs() / scale).fold(0.0_f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimised forward pass agrees with the naive reference to
    /// ≤ 1e-12 relative error on random graphs and random weights.
    #[test]
    fn optimised_forward_matches_reference(
        n in 4usize..40,
        extra in proptest::collection::vec((0usize..40, 0usize..40), 0..30),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
        num_blocks in 1usize..5,
        latent in 2usize..12,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(
            DssConfig { num_blocks, latent_dim: latent, alpha: 1e-2 },
            model_seed,
        );
        let reference = model.infer_reference(&graph, &graph.input);
        let optimised = model.infer_with_input(&graph, &graph.input);
        prop_assert_eq!(optimised.len(), reference.len());
        let dev = max_relative_deviation(&optimised, &reference);
        prop_assert!(dev <= 1e-12, "deviation {} exceeds 1e-12", dev);
    }

    /// A prebuilt plan reused across inputs gives bit-identical results to a
    /// throwaway plan, and the batched pool path matches per-graph inference.
    #[test]
    fn plan_reuse_and_batching_are_bit_stable(
        n in 4usize..24,
        extra in proptest::collection::vec((0usize..24, 0usize..24), 0..12),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 6, alpha: 1e-2 }, model_seed);
        let plan = model.build_plan(&graph);
        let mut scratch = InferScratch::new();
        let mut out = vec![0.0; graph.num_nodes()];
        for scale in [1.0, -0.4] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.01).collect();
            model.infer_with_plan_into(&plan, &input, &mut scratch, &mut out);
            prop_assert_eq!(&out, &model.infer_with_input(&graph, &input));
        }
        let graphs = vec![graph.clone(), graph.clone(), graph];
        let pool = ScratchPool::new();
        let batched = model.infer_batch_with_pool(&graphs, &pool);
        for (g, got) in graphs_outputs(&graphs, &batched) {
            prop_assert_eq!(got, &model.infer(g));
        }
    }

    /// The f32 engine tracks the f64 plan path to ≤ 1e-4 relative error on
    /// random sub-domain graphs, random weights and unit-normalised inputs
    /// (the preconditioner always feeds the network unit-norm residuals).
    #[test]
    fn f32_engine_matches_f64_within_1e4(
        n in 4usize..40,
        extra in proptest::collection::vec((0usize..40, 0usize..40), 0..30),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
        num_blocks in 1usize..5,
        latent in 2usize..12,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(
            DssConfig { num_blocks, latent_dim: latent, alpha: 1e-2 },
            model_seed,
        );
        // Unit-normalise the input like the preconditioner does.
        let norm = graph.input.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let input: Vec<f64> = graph.input.iter().map(|v| v / norm).collect();

        let plan64 = model.build_plan(&graph);
        let plan32 = model.build_plan_f32(&graph);
        let mut s64 = InferScratch::new();
        let mut s32 = InferScratchF32::new();
        let mut out64 = vec![0.0; graph.num_nodes()];
        let mut out32 = vec![0.0; graph.num_nodes()];
        model.infer_with_plan_into(&plan64, &input, &mut s64, &mut out64);
        model.infer_with_plan_f32_into(&plan32, &input, &mut s32, &mut out32);
        let dev = max_relative_deviation(&out32, &out64);
        prop_assert!(dev <= 1e-4, "f32 deviation {} exceeds 1e-4", dev);
    }

    /// An f32 plan reused across inputs and scratch states is bit-stable:
    /// results depend only on (plan, input), never on buffer history.
    #[test]
    fn f32_plan_reuse_is_bit_stable(
        n in 4usize..24,
        extra in proptest::collection::vec((0usize..24, 0usize..24), 0..12),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 6, alpha: 1e-2 }, model_seed);
        let plan = model.build_plan_f32(&graph);
        let mut scratch = InferScratchF32::new();
        let mut out = vec![0.0; graph.num_nodes()];
        let mut baseline: Vec<Vec<f64>> = Vec::new();
        for scale in [1.0, -0.4] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.01).collect();
            model.infer_with_plan_f32_into(&plan, &input, &mut scratch, &mut out);
            baseline.push(out.clone());
        }
        // Re-run in reverse order with a fresh scratch: identical bits.
        let mut fresh = InferScratchF32::new();
        for (i, scale) in [1.0, -0.4].iter().enumerate().rev() {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.01).collect();
            model.infer_with_plan_f32_into(&plan, &input, &mut fresh, &mut out);
            prop_assert_eq!(&out, &baseline[i]);
        }
    }

    /// The quantised int8/bf16 engine tracks the f64 plan path to ≤ 1e-2
    /// relative error on random sub-domain graphs, random weights and
    /// unit-normalised inputs — the documented accuracy contract of
    /// `Precision::Int8` (weight rounding ≤ 2⁻⁸ relative per weight, bf16
    /// stream rounding ≤ 2⁻⁹, f32 accumulation).
    #[test]
    fn quantised_engine_matches_f64_within_1e2(
        n in 4usize..40,
        extra in proptest::collection::vec((0usize..40, 0usize..40), 0..30),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
        num_blocks in 1usize..5,
        latent in 2usize..12,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(
            DssConfig { num_blocks, latent_dim: latent, alpha: 1e-2 },
            model_seed,
        );
        // Unit-normalise the input like the preconditioner does.
        let norm = graph.input.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let input: Vec<f64> = graph.input.iter().map(|v| v / norm).collect();

        let plan64 = model.build_plan(&graph);
        let planq = model.build_plan_q(&graph);
        let plan32 = model.build_plan_f32(&graph);
        prop_assert!(
            planq.memory_bytes() < plan32.memory_bytes(),
            "quantised plan ({}) must be smaller than the f32 plan ({})",
            planq.memory_bytes(),
            plan32.memory_bytes()
        );
        let mut s64 = InferScratch::new();
        let mut sq = InferScratchQ::new();
        let mut out64 = vec![0.0; graph.num_nodes()];
        let mut outq = vec![0.0; graph.num_nodes()];
        model.infer_with_plan_into(&plan64, &input, &mut s64, &mut out64);
        model.infer_with_plan_q_into(&planq, &input, &mut sq, &mut outq);
        let dev = max_relative_deviation(&outq, &out64);
        prop_assert!(dev <= 1e-2, "quantised deviation {} exceeds 1e-2", dev);
    }

    /// A quantised plan reused across inputs and scratch states is
    /// bit-stable: results depend only on (plan, input), never on buffer
    /// history.
    #[test]
    fn quantised_plan_reuse_is_bit_stable(
        n in 4usize..24,
        extra in proptest::collection::vec((0usize..24, 0usize..24), 0..12),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(DssConfig { num_blocks: 3, latent_dim: 6, alpha: 1e-2 }, model_seed);
        let plan = model.build_plan_q(&graph);
        let mut scratch = InferScratchQ::new();
        let mut out = vec![0.0; graph.num_nodes()];
        let mut baseline: Vec<Vec<f64>> = Vec::new();
        for scale in [1.0, -0.4] {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.01).collect();
            model.infer_with_plan_q_into(&plan, &input, &mut scratch, &mut out);
            baseline.push(out.clone());
        }
        // Re-run in reverse order with a fresh scratch: identical bits.
        let mut fresh = InferScratchQ::new();
        for (i, scale) in [1.0, -0.4].iter().enumerate().rev() {
            let input: Vec<f64> = graph.input.iter().map(|c| c * scale + 0.01).collect();
            model.infer_with_plan_q_into(&plan, &input, &mut fresh, &mut out);
            prop_assert_eq!(&out, &baseline[i]);
        }
    }

    /// `backward` still matches central finite differences on random graphs —
    /// the inference refactor must leave training gradients unchanged.
    #[test]
    fn backward_gradients_match_finite_differences(
        n in 4usize..12,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..6),
        geo_seed in 0u64..1000,
        rhs_seed in 0u64..1000,
        model_seed in 0u64..1000,
    ) {
        let graph = random_graph(n, &extra, geo_seed, rhs_seed);
        let model = DssModel::new(DssConfig { num_blocks: 2, latent_dim: 3, alpha: 0.05 }, model_seed);
        let mut grad = model.zeros_like();
        let loss = model.backward(&graph, &mut grad);
        prop_assert!((loss - model.loss(&graph)).abs() <= 1e-12 * loss.abs().max(1.0));
        let params = model.flatten();
        let analytic = grad.flatten();
        let eps = 1e-6;
        // Spot-check a spread of parameters per case.
        for t in 0..8 {
            let i = t * params.len() / 8;
            let mut plus = params.clone();
            plus[i] += eps;
            let mut minus = params.clone();
            minus[i] -= eps;
            let mut mp = model.clone();
            mp.load_flat(&plus);
            let mut mm = model.clone();
            mm.load_flat(&minus);
            let numeric = (mp.loss(&graph) - mm.loss(&graph)) / (2.0 * eps);
            let diff = (numeric - analytic[i]).abs();
            let scale = numeric.abs().max(analytic[i].abs()).max(1e-3);
            prop_assert!(diff / scale < 1e-3, "param {}: numeric {:e} vs analytic {:e}", i, numeric, analytic[i]);
        }
    }
}

/// Zip graphs with their batched outputs (helper keeping the proptest body
/// tidy).
fn graphs_outputs<'a>(
    graphs: &'a [LocalGraph],
    outs: &'a [Vec<f64>],
) -> impl Iterator<Item = (&'a LocalGraph, &'a Vec<f64>)> {
    graphs.iter().zip(outs.iter())
}
