//! Dense row-major matrix with the handful of kernels the workspace needs.
//!
//! Dense matrices show up in three places: the coarse operator
//! `R₀ A R₀ᵀ` of the two-level Schwarz method (K × K with K the number of
//! sub-domains), the weights of the GNN layers, and reference LU solves in
//! tests.  The implementation is deliberately simple — cache-friendly
//! row-major storage, `matmul` with the k-loop innermost hoisted, no blocking.

use crate::{Result, SparseError};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major vector.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::InvalidArgument(format!(
                "dense data length {} != {nrows}x{ncols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable access to the row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            y[r] = crate::vector::dot(self.row(r), x);
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_transpose: dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            let row = self.row(r);
            for c in 0..self.ncols {
                y[c] += row[c] * xr;
            }
        }
        y
    }

    /// Matrix–matrix product `C = A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "matmul",
                expected: (self.ncols, other.nrows),
                found: (other.nrows, other.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for j in 0..other.ncols {
                    orow[j] += aik * brow[j];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// In-place scaled addition `self ← self + alpha * other`.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "add_scaled",
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Fill with a constant.
    pub fn fill(&mut self, value: f64) {
        for v in &mut self.data {
            *v = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(0, 0, 1.0);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_identity_and_mismatch() {
        let m = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
        let bad = DenseMatrix::zeros(3, 3);
        assert!(m.matmul(&bad).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]).unwrap();
        let b = DenseMatrix::from_row_major(3, 2, vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn add_scaled_and_norm_and_fill() {
        let mut a = DenseMatrix::identity(2);
        let b = DenseMatrix::identity(2);
        a.add_scaled(2.0, &b).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert!((a.frobenius_norm() - (18.0_f64).sqrt()).abs() < 1e-12);
        a.fill(0.5);
        assert_eq!(a.data(), &[0.5; 4]);
        assert!(a.add_scaled(1.0, &DenseMatrix::zeros(3, 3)).is_err());
    }
}
