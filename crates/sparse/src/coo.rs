//! Coordinate (triplet) sparse matrix used as an assembly buffer.
//!
//! Finite-element assembly naturally produces duplicate `(row, col, value)`
//! triplets (one contribution per element touching a pair of nodes).  The COO
//! builder accumulates them and converts to [`CsrMatrix`](crate::CsrMatrix),
//! summing duplicates in the process.

use crate::{CsrMatrix, Result, SparseError};

/// A sparse matrix in coordinate (triplet) format.
///
/// Triplets may appear in any order and may repeat; duplicates are summed when
/// converting to CSR.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Create an empty `nrows × ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() }
    }

    /// Create an empty matrix with room for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Append a triplet.  Returns an error if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows {
            return Err(SparseError::IndexOutOfBounds { index: row, bound: self.nrows });
        }
        if col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds { index: col, bound: self.ncols });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Append a triplet without bounds checking (used by hot assembly loops
    /// that have already validated their indices).
    ///
    /// # Panics
    /// Debug builds still assert the indices are in range.
    pub fn push_unchecked(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Iterate over the stored triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSR, summing duplicate entries and dropping explicit zeros
    /// produced by cancellation only if `drop_zeros` is requested by the
    /// caller through [`CooMatrix::to_csr_dropping`].
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_csr_dropping(false)
    }

    /// Convert to CSR.  When `drop_zeros` is true, entries that sum exactly to
    /// zero are removed from the sparsity pattern.
    pub fn to_csr_dropping(&self, drop_zeros: bool) -> CsrMatrix {
        // Counting sort by row, then sort each row's column indices.
        let nnz = self.values.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order = vec![0usize; nnz];
        let mut cursor = row_counts.clone();
        for (k, &r) in self.rows.iter().enumerate() {
            order[cursor[r]] = k;
            cursor[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(nnz);
        let mut values: Vec<f64> = Vec::with_capacity(nnz);
        row_ptr.push(0);

        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[row_counts[r]..row_counts[r + 1]] {
                scratch.push((self.cols[k], self.values[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == col {
                    sum += scratch[i].1;
                    i += 1;
                }
                if !(drop_zeros && sum == 0.0) {
                    col_idx.push(col);
                    values.push(sum);
                }
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix::from_raw_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
            .expect("COO→CSR conversion produced an invalid matrix; this is a bug")
    }

    /// Build an identity-like COO matrix with the given diagonal values.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut coo = CooMatrix::with_capacity(n, n, n);
        for (i, &v) in diag.iter().enumerate() {
            coo.push_unchecked(i, i, v);
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bounds() {
        let mut coo = CooMatrix::new(2, 3);
        assert!(coo.push(0, 0, 1.0).is_ok());
        assert!(coo.push(1, 2, 2.0).is_ok());
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 3, 1.0).is_err());
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.nrows(), 2);
        assert_eq!(coo.ncols(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(1, 1), 4.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn zero_cancellation_dropping() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, -2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 2);
        assert_eq!(coo.to_csr_dropping(true).nnz(), 1);
    }

    #[test]
    fn triplets_roundtrip_and_diagonal() {
        let coo = CooMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        let trips: Vec<_> = coo.triplets().collect();
        assert_eq!(trips, vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]);
        let csr = coo.to_csr();
        assert_eq!(csr.diagonal(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(3, 3, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row(1).0.len(), 0);
        assert_eq!(csr.row(2).0.len(), 0);
        assert_eq!(csr.nnz(), 2);
    }
}
