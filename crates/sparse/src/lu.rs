//! Dense LU factorisation with partial pivoting.
//!
//! The paper solves the Nicolaides coarse problem `(R₀ A R₀ᵀ)⁻¹` with a direct
//! LU decomposition (Section III-A, step 1).  The coarse matrix is only
//! `K × K` where `K` is the number of sub-domains (at most ~1200 in the
//! paper's largest run), so a dense factorisation is the appropriate tool.
//! The same factorisation doubles as the reference "exact" solver in tests
//! and in the relative-error metric of Table II.

use crate::{CsrMatrix, DenseMatrix, Result, SparseError};

/// A dense LU factorisation `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    /// Combined storage: strictly lower part of L (unit diagonal implied) and U.
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

impl LuFactor {
    /// Factor a dense matrix.  Fails on (numerically) singular input.
    pub fn factor_dense(a: &DenseMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let n = a.nrows();
        let mut lu = a.data().to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SparseError::SingularMatrix { pivot: k, value: lu[k * n + k] });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        lu[r * n + c] -= factor * lu[k * n + c];
                    }
                }
            }
        }
        Ok(LuFactor { n, lu, perm })
    }

    /// Factor a square sparse matrix by densifying it first.  Intended for
    /// small systems (coarse problems, reference solves in tests).
    pub fn factor_csr(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let dense = DenseMatrix::from_row_major(a.nrows(), a.ncols(), a.to_dense())?;
        Self::factor_dense(&dense)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A x = b`, returning `x`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "lu_solve",
                expected: (self.n, 1),
                found: (b.len(), 1),
            });
        }
        let n = self.n;
        // Apply permutation: y = P b
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(x)
    }

    /// Solve in place into a preallocated output buffer.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let x = self.solve(b)?;
        out.copy_from_slice(&x);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn solve_identity() {
        let id = DenseMatrix::identity(4);
        let lu = LuFactor::factor_dense(&id).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b).unwrap(), b);
        assert_eq!(lu.dim(), 4);
    }

    #[test]
    fn solve_small_known_system() {
        // A = [[2, 1], [1, 3]], b = [3, 5] -> x = [0.8, 1.4]
        let a = DenseMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let lu = LuFactor::factor_dense(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without pivoting this matrix breaks immediately.
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = LuFactor::factor_dense(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(LuFactor::factor_dense(&a), Err(SparseError::SingularMatrix { .. })));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(matches!(LuFactor::factor_dense(&rect), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn random_system_residual_is_tiny() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let mut data = vec![0.0; n * n];
        for v in &mut data {
            *v = rng.gen_range(-1.0..1.0);
        }
        // Make it diagonally dominant so it is comfortably nonsingular.
        for i in 0..n {
            data[i * n + i] += n as f64;
        }
        let a = DenseMatrix::from_row_major(n, n, data).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = LuFactor::factor_dense(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let err = crate::vector::relative_error(&x, &x_true);
        assert!(err < 1e-10, "relative error {err}");
    }

    #[test]
    fn factor_csr_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0).unwrap();
        }
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 2, -1.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        let a = coo.to_csr();
        let lu = LuFactor::factor_csr(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let r: Vec<f64> = a.spmv(&x).iter().zip(b.iter()).map(|(ax, bi)| bi - ax).collect();
        assert!(crate::vector::norm2(&r) < 1e-12);
        let mut out = vec![0.0; 3];
        lu.solve_into(&b, &mut out).unwrap();
        assert_eq!(out, x);
        assert!(lu.solve(&[1.0]).is_err());
    }
}
