//! Error type shared by all linear-algebra operations in this crate.

use std::fmt;

/// Errors produced by matrix construction, factorisation and solves.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Dimensions that were expected.
        expected: (usize, usize),
        /// Dimensions that were found.
        found: (usize, usize),
    },
    /// A triplet or index refers to a row/column outside the matrix.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay below.
        bound: usize,
    },
    /// A factorisation encountered a (numerically) singular pivot.
    SingularMatrix {
        /// Pivot position at which the breakdown happened.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A factorisation requiring symmetric positive definiteness found a
    /// non-positive diagonal entry.
    NotPositiveDefinite {
        /// Row at which the breakdown happened.
        row: usize,
        /// The non-positive value encountered.
        value: f64,
    },
    /// The input matrix was expected to be square.
    NotSquare {
        /// Number of rows found.
        rows: usize,
        /// Number of columns found.
        cols: usize,
    },
    /// Generic invalid-argument error with a description.
    InvalidArgument(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, expected, found } => write!(
                f,
                "dimension mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            SparseError::SingularMatrix { pivot, value } => {
                write!(f, "singular matrix: pivot {pivot} has value {value:e}")
            }
            SparseError::NotPositiveDefinite { row, value } => {
                write!(f, "matrix not positive definite: diagonal {row} -> {value:e}")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, found {rows}x{cols}")
            }
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = SparseError::DimensionMismatch { op: "spmv", expected: (3, 4), found: (2, 2) };
        let text = err.to_string();
        assert!(text.contains("spmv"));
        assert!(text.contains("3x4"));
        assert!(text.contains("2x2"));
    }

    #[test]
    fn display_singular() {
        let err = SparseError::SingularMatrix { pivot: 5, value: 0.0 };
        assert!(err.to_string().contains("pivot 5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let err = SparseError::NotPositiveDefinite { row: 2, value: -1.0 };
        assert!(err.to_string().contains("positive definite"));
    }

    #[test]
    fn display_out_of_bounds_and_square() {
        assert!(SparseError::IndexOutOfBounds { index: 9, bound: 3 }.to_string().contains("9"));
        assert!(SparseError::NotSquare { rows: 2, cols: 3 }.to_string().contains("2x3"));
        assert!(SparseError::InvalidArgument("bad".into()).to_string().contains("bad"));
    }
}
