//! Envelope (skyline) Cholesky factorisation with RCM reordering.
//!
//! This is the exact sub-domain solver behind the paper's DDM-LU baseline
//! (the paper uses Eigen's sparse LU; the sub-domain matrices are symmetric
//! positive definite Dirichlet Laplacians, so a Cholesky factorisation is the
//! natural equivalent).  The factorisation stores, for every row, the segment
//! from its first nonzero column to the diagonal ("skyline"), which after an
//! RCM reordering of a planar FEM matrix stays narrow.

use crate::rcm::{permute_symmetric, reverse_cuthill_mckee};
use crate::{CsrMatrix, Result, SparseError};

/// Sparse SPD factorisation `A = L Lᵀ` in skyline storage, with an internal
/// RCM permutation applied transparently by [`SkylineCholesky::solve`].
#[derive(Debug, Clone)]
pub struct SkylineCholesky {
    n: usize,
    /// `perm[new] = old` RCM permutation (identity when `n == 0`).
    perm: Vec<usize>,
    /// Inverse permutation: `inv[old] = new`.
    inv: Vec<usize>,
    /// For each (permuted) row `i`, the column index of the first entry stored.
    first_col: Vec<usize>,
    /// Start offset of row `i` in `data`.
    row_start: Vec<usize>,
    /// Packed rows of L: row `i` stores columns `first_col[i]..=i`.
    data: Vec<f64>,
}

impl SkylineCholesky {
    /// Factor a symmetric positive definite CSR matrix.
    ///
    /// The matrix must be square and (numerically) symmetric; only the lower
    /// triangle is read.  Returns an error if a non-positive pivot appears.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(SkylineCholesky {
                n,
                perm: vec![],
                inv: vec![],
                first_col: vec![],
                row_start: vec![0],
                data: vec![],
            });
        }
        let perm = reverse_cuthill_mckee(a);
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let ap = permute_symmetric(a, &perm);

        // Envelope structure: first nonzero column of each row (lower triangle).
        let mut first_col = vec![0usize; n];
        for i in 0..n {
            let (cols, _) = ap.row(i);
            let mut fc = i;
            for &c in cols {
                if c <= i {
                    fc = fc.min(c);
                }
            }
            first_col[i] = fc;
        }
        let mut row_start = vec![0usize; n + 1];
        for i in 0..n {
            row_start[i + 1] = row_start[i] + (i - first_col[i] + 1);
        }
        let mut data = vec![0.0; row_start[n]];

        // Scatter the lower triangle of the permuted matrix into the envelope.
        for i in 0..n {
            let (cols, vals) = ap.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c <= i {
                    let off = row_start[i] + (c - first_col[i]);
                    data[off] = v;
                }
            }
        }

        // In-place envelope Cholesky (row-oriented, "active column" variant).
        //
        //   L[i][j] = (A[i][j] - Σ_{k} L[i][k] L[j][k]) / L[j][j]
        //   L[i][i] = sqrt(A[i][i] - Σ_{k} L[i][k]^2)
        for i in 0..n {
            let fi = first_col[i];
            for j in fi..i {
                let fj = first_col[j];
                let lo = fi.max(fj);
                // dot product of row i segment [lo, j) with row j segment [lo, j)
                let mut sum = 0.0;
                if lo < j {
                    let ri = row_start[i] + (lo - fi);
                    let rj = row_start[j] + (lo - fj);
                    let len = j - lo;
                    for k in 0..len {
                        sum += data[ri + k] * data[rj + k];
                    }
                }
                let djj = data[row_start[j] + (j - fj)];
                let off_ij = row_start[i] + (j - fi);
                data[off_ij] = (data[off_ij] - sum) / djj;
            }
            // diagonal
            let mut sum = 0.0;
            let ri = row_start[i];
            for k in 0..(i - fi) {
                sum += data[ri + k] * data[ri + k];
            }
            let off_ii = row_start[i] + (i - fi);
            let dii = data[off_ii] - sum;
            if dii <= 0.0 || !dii.is_finite() {
                return Err(SparseError::NotPositiveDefinite { row: i, value: dii });
            }
            data[off_ii] = dii.sqrt();
        }

        Ok(SkylineCholesky { n, perm, inv, first_col, row_start, data })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of floats stored in the envelope (a fill measure).
    pub fn envelope_size(&self) -> usize {
        self.data.len()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.n];
        let mut work = Vec::new();
        self.solve_scratch(b, &mut work, &mut out)?;
        Ok(out)
    }

    /// Solve into a preallocated output buffer.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let mut work = Vec::new();
        self.solve_scratch(b, &mut work, out)
    }

    /// Allocation-free solve: the permuted intermediate lives in `work`
    /// (resized on first use, reused afterwards) and the result is written to
    /// `out`.  This is the form the Schwarz preconditioner calls once per
    /// sub-domain per Krylov iteration.
    pub fn solve_scratch(&self, b: &[f64], work: &mut Vec<f64>, out: &mut [f64]) -> Result<()> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "cholesky_solve",
                expected: (self.n, 1),
                found: (b.len(), 1),
            });
        }
        if out.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "cholesky_solve",
                expected: (self.n, 1),
                found: (out.len(), 1),
            });
        }
        let n = self.n;
        if n == 0 {
            return Ok(());
        }
        work.resize(n, 0.0);
        let x = work.as_mut_slice();
        // permute rhs: x[new] = b[perm[new]]
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        // Forward solve L y = b
        for i in 0..n {
            let fi = self.first_col[i];
            let ri = self.row_start[i];
            let mut acc = x[i];
            for (k, j) in (fi..i).enumerate() {
                acc -= self.data[ri + k] * x[j];
            }
            x[i] = acc / self.data[ri + (i - fi)];
        }
        // Backward solve Lᵀ x = y (column sweep over the envelope rows).
        for i in (0..n).rev() {
            let fi = self.first_col[i];
            let ri = self.row_start[i];
            let xi = x[i] / self.data[ri + (i - fi)];
            x[i] = xi;
            for (k, j) in (fi..i).enumerate() {
                x[j] -= self.data[ri + k] * xi;
            }
        }
        // un-permute: out[old] = x[inv[old]]
        for old in 0..n {
            out[old] = x[self.inv[old]];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, LuFactor};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// 2D 5-point Laplacian on an `nx × ny` grid — an SPD matrix with the same
    /// structure class as the FEM sub-domain matrices.
    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                coo.push(me, me, 4.0).unwrap();
                if i > 0 {
                    coo.push(me, idx(i - 1, j), -1.0).unwrap();
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1), -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solve_identity() {
        let a = CsrMatrix::identity(5);
        let chol = SkylineCholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.0, 5.0];
        assert_eq!(chol.solve(&b).unwrap(), b);
        assert_eq!(chol.dim(), 5);
    }

    #[test]
    fn solve_2d_laplacian_matches_lu() {
        let a = laplacian_2d(9, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let chol = SkylineCholesky::factor(&a).unwrap();
        let lu = LuFactor::factor_csr(&a).unwrap();
        let x1 = chol.solve(&b).unwrap();
        let x2 = lu.solve(&b).unwrap();
        let err = crate::vector::relative_error(&x1, &x2);
        assert!(err < 1e-10, "Cholesky vs LU mismatch: {err}");
    }

    #[test]
    fn residual_is_tiny_on_random_spd() {
        let mut rng = StdRng::seed_from_u64(42);
        // Random sparse SPD matrix: A = B Bᵀ + n I with B banded random.
        let n = 60;
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            for j in i.saturating_sub(3)..=(i + 3).min(n - 1) {
                dense[i * n + j] = rng.gen_range(-1.0..1.0);
            }
        }
        // A = B Bᵀ + n I  (dense build, then sparsify)
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += dense[i * n + k] * dense[j * n + k];
                }
                a[i * n + j] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        let a = CsrMatrix::from_dense(&a, n, n, 1e-14);
        let chol = SkylineCholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.spmv(&x_true);
        let x = chol.solve(&b).unwrap();
        assert!(crate::vector::relative_error(&x, &x_true) < 1e-9);
    }

    #[test]
    fn non_spd_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            SkylineCholesky::factor(&a),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
        let rect_coo = CooMatrix::new(2, 3);
        assert!(matches!(
            SkylineCholesky::factor(&rect_coo.to_csr()),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn empty_matrix_and_wrong_rhs() {
        let a = CsrMatrix::identity(0);
        let chol = SkylineCholesky::factor(&a).unwrap();
        assert_eq!(chol.solve(&[]).unwrap(), Vec::<f64>::new());
        let a = CsrMatrix::identity(3);
        let chol = SkylineCholesky::factor(&a).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn envelope_is_smaller_than_dense() {
        let a = laplacian_2d(20, 20);
        let chol = SkylineCholesky::factor(&a).unwrap();
        let n = a.nrows();
        assert!(chol.envelope_size() < n * (n + 1) / 2, "envelope should beat dense storage");
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = laplacian_2d(5, 5);
        let chol = SkylineCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let x = chol.solve(&b).unwrap();
        let mut out = vec![0.0; 25];
        chol.solve_into(&b, &mut out).unwrap();
        assert_eq!(x, out);
    }

    #[test]
    fn solve_scratch_reuses_buffers_bit_identically() {
        let a = laplacian_2d(7, 6);
        let n = a.nrows();
        let chol = SkylineCholesky::factor(&a).unwrap();
        let mut work = Vec::new();
        let mut out = vec![0.0; n];
        for seed in 0..4u64 {
            let b: Vec<f64> =
                (0..n).map(|i| ((i as u64 * 7 + seed * 13) % 19) as f64 - 9.0).collect();
            chol.solve_scratch(&b, &mut work, &mut out).unwrap();
            assert_eq!(out, chol.solve(&b).unwrap(), "seed {seed}");
        }
        // Wrong output length is rejected.
        let mut short = vec![0.0; n - 1];
        assert!(chol.solve_scratch(&vec![0.0; n], &mut work, &mut short).is_err());
    }
}
