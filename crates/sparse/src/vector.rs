//! BLAS-1 style vector kernels used throughout the workspace.
//!
//! The Krylov solvers and the GNN training loop only need a handful of dense
//! vector operations; they are collected here so every crate shares a single,
//! tested implementation.  The parallel variants switch to rayon only above a
//! length threshold — for the short vectors that appear in sub-domain solves
//! the sequential loop is faster than the fork/join overhead.

use rayon::prelude::*;

/// Length above which the `par_*` kernels actually use rayon.
const PAR_THRESHOLD: usize = 16_384;

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if the two slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Parallel dot product, falling back to the sequential kernel for short
/// vectors.
#[inline]
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return dot(x, y);
    }
    x.par_iter().zip(y.par_iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Parallel Euclidean norm.
#[inline]
pub fn par_norm2(x: &[f64]) -> f64 {
    par_dot(x, x).sqrt()
}

/// Infinity norm `max |x_i|` (0 for the empty vector).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if x.len() >= PAR_THRESHOLD {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, xi)| *yi += a * xi);
    } else {
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += a * xi;
        }
    }
}

/// `y ← a·x + b·y`.
#[inline]
pub fn axpby(a: f64, x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    if x.len() >= PAR_THRESHOLD {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, xi)| *yi = a * xi + b * *yi);
    } else {
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi = a * xi + b * *yi;
        }
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    if x.len() >= PAR_THRESHOLD {
        x.par_iter_mut().for_each(|xi| *xi *= a);
    } else {
        for xi in x.iter_mut() {
            *xi *= a;
        }
    }
}

/// Element-wise copy `y ← x`.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// `z ← x - y` writing into a preallocated output.
#[inline]
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), z.len(), "sub_into: output length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

/// Fill a vector with a constant.
#[inline]
pub fn fill(x: &mut [f64], value: f64) {
    for xi in x.iter_mut() {
        *xi = value;
    }
}

/// Relative Euclidean distance `‖x - y‖ / ‖y‖`, returning the absolute
/// distance when `‖y‖` is (numerically) zero.
pub fn relative_error(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "relative_error: length mismatch");
    let mut diff = 0.0;
    let mut base = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        diff += (a - b) * (a - b);
        base += b * b;
    }
    let diff = diff.sqrt();
    let base = base.sqrt();
    if base <= f64::EPSILON {
        diff
    } else {
        diff / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        assert_eq!(par_dot(&x, &y), 32.0);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(par_norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_axpby_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
        scale(2.0, &mut y);
        assert_eq!(y, [14.0, 28.0]);
    }

    #[test]
    fn sub_and_fill_and_copy() {
        let x = [5.0, 7.0];
        let y = [1.0, 2.0];
        let mut z = [0.0; 2];
        sub_into(&x, &y, &mut z);
        assert_eq!(z, [4.0, 5.0]);
        fill(&mut z, 1.5);
        assert_eq!(z, [1.5, 1.5]);
        copy(&x, &mut z);
        assert_eq!(z, x);
    }

    #[test]
    fn relative_error_basic() {
        let exact = [1.0, 1.0, 1.0, 1.0];
        let approx = [1.0, 1.0, 1.0, 2.0];
        let err = relative_error(&approx, &exact);
        assert!((err - 0.5).abs() < 1e-12);
        // Zero reference vector falls back to absolute error.
        let zero = [0.0, 0.0];
        assert!((relative_error(&[3.0, 4.0], &zero) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_kernels_match_sequential_on_long_vectors() {
        let n = 50_000;
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 11) as f64 - 3.0).collect();
        let seq = dot(&x, &y);
        let par = par_dot(&x, &y);
        assert!((seq - par).abs() / seq.abs().max(1.0) < 1e-12);

        let mut y1 = y.clone();
        let mut y2 = y.clone();
        axpy(1.25, &x, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(x.iter()) {
            *yi += 1.25 * xi;
        }
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
