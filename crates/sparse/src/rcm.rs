//! Reverse Cuthill–McKee (RCM) bandwidth-reducing ordering.
//!
//! The exact sub-domain solver of the DDM-LU baseline factorises each
//! `Rᵢ A Rᵢᵀ` once per global solve.  Those matrices come from planar FEM
//! meshes, so an envelope (skyline) Cholesky after an RCM reordering has a
//! near-optimal fill for a fraction of the implementation complexity of a
//! general sparse direct solver.  This module computes the permutation; the
//! factorisation lives in [`crate::cholesky`].

use crate::CsrMatrix;

/// Compute the reverse Cuthill–McKee ordering of the symmetric sparsity
/// pattern of `a`.
///
/// Returns `perm` such that `perm[new] = old`: position `new` of the reordered
/// matrix holds original row/column `perm[new]`.  Disconnected components are
/// each ordered separately (the mesh sub-domains produced by the partitioner
/// are connected, but the ordering must not rely on it).
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let degree = |v: usize| a.row(v).0.len();

    // Start-node selection: the next component starts at the unvisited node
    // of minimal degree (ties broken by smallest index — exactly what a
    // `(0..n).filter(!visited).min_by_key(degree)` scan would pick, since
    // `min_by_key` keeps the first minimum).  A fresh O(n) scan per
    // component is O(n²) on decompositions with many tiny components (the
    // legitimate `k == n` singleton-part shape), so the candidates are
    // sorted by `(degree, index)` once and consumed through a cursor: each
    // node is skipped at most once, making all start selections O(n log n)
    // total while returning the identical ordering.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| (degree(v), v));
    let mut cursor = 0usize;

    while order.len() < n {
        while visited[by_degree[cursor]] {
            cursor += 1;
        }
        let start = by_degree[cursor];
        // Refine the start by a couple of BFS sweeps towards a peripheral node.
        let start = pseudo_peripheral(a, start);

        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (cols, _) = a.row(v);
            let mut neighbours: Vec<usize> =
                cols.iter().copied().filter(|&u| u != v && !visited[u]).collect();
            neighbours.sort_unstable_by_key(|&u| degree(u));
            for u in neighbours {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    order
}

/// A few BFS sweeps to find an approximately peripheral node starting from
/// `start` (George–Liu heuristic, two iterations are enough in practice).
fn pseudo_peripheral(a: &CsrMatrix, mut start: usize) -> usize {
    let n = a.nrows();
    let mut level = vec![usize::MAX; n];
    for _ in 0..2 {
        for l in level.iter_mut() {
            *l = usize::MAX;
        }
        let mut queue = std::collections::VecDeque::new();
        level[start] = 0;
        queue.push_back(start);
        let mut last = start;
        let mut last_level = 0;
        while let Some(v) = queue.pop_front() {
            let (cols, _) = a.row(v);
            for &u in cols {
                if u != v && level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    if level[u] > last_level
                        || (level[u] == last_level && a.row(u).0.len() < a.row(last).0.len())
                    {
                        last = u;
                        last_level = level[u];
                    }
                    queue.push_back(u);
                }
            }
        }
        if last == start {
            break;
        }
        start = last;
    }
    start
}

/// Apply a symmetric permutation to a square CSR matrix: returns
/// `B = P A Pᵀ` where `perm[new] = old`.
pub fn permute_symmetric(a: &CsrMatrix, perm: &[usize]) -> CsrMatrix {
    let n = a.nrows();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    // inverse permutation: old -> new
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    row_ptr.push(0);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for new_r in 0..n {
        let old_r = perm[new_r];
        let (cols, vals) = a.row(old_r);
        scratch.clear();
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            scratch.push((inv[c], v));
        }
        scratch.sort_unstable_by_key(|&(c, _)| c);
        for &(c, v) in &scratch {
            col_idx.push(c);
            values.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values)
        .expect("symmetric permutation produced an invalid matrix; this is a bug")
}

/// Bandwidth of a symmetric sparsity pattern: `max |i - j|` over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0;
    for r in 0..a.nrows() {
        let (cols, _) = a.row(r);
        for &c in cols {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// 1D Laplacian (tridiagonal) on `n` nodes but with a scrambled node order,
    /// so RCM has something to improve.
    fn scrambled_path(n: usize) -> (CsrMatrix, Vec<usize>) {
        // map path node i -> scrambled label (i * 7) % n with n coprime to 7
        let label: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(label[i], label[i], 2.0).unwrap();
            if i + 1 < n {
                coo.push(label[i], label[i + 1], -1.0).unwrap();
                coo.push(label[i + 1], label[i], -1.0).unwrap();
            }
        }
        (coo.to_csr(), label)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let (a, _) = scrambled_path(20);
        let perm = reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_path() {
        let (a, _) = scrambled_path(50);
        let before = bandwidth(&a);
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);
        let after = bandwidth(&b);
        assert!(after <= before, "bandwidth should not increase: {before} -> {after}");
        // A path graph admits bandwidth 1.
        assert_eq!(after, 1, "RCM should recover the optimal path bandwidth");
    }

    #[test]
    fn permute_symmetric_preserves_spectrum_action() {
        let (a, _) = scrambled_path(10);
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm);
        // For any x: (P A Pᵀ) (P x) = P (A x)
        let x: Vec<f64> = (0..10).map(|i| (i as f64 + 1.0).ln()).collect();
        let px: Vec<f64> = perm.iter().map(|&old| x[old]).collect();
        let lhs = b.spmv(&px);
        let ax = a.spmv(&x);
        let rhs: Vec<f64> = perm.iter().map(|&old| ax[old]).collect();
        for (l, r) in lhs.iter().zip(rhs.iter()) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_disconnected_components() {
        // Two disjoint edges: {0-1}, {2-3}
        let mut coo = CooMatrix::new(4, 4);
        for &(i, j) in &[(0usize, 1usize), (2, 3)] {
            coo.push(i, i, 2.0).unwrap();
            coo.push(j, j, 2.0).unwrap();
            coo.push(i, j, -1.0).unwrap();
            coo.push(j, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let perm = reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bandwidth_of_diagonal_matrix_is_zero() {
        let a = CsrMatrix::identity(5);
        assert_eq!(bandwidth(&a), 0);
    }

    /// The per-component start selection used to rescan all nodes
    /// (`(0..n).filter(!visited).min_by_key(degree)`): O(n) per component,
    /// O(n²) over the `k == n` singleton-part shapes the partitioner
    /// legitimately produces.  The cursor replacement must return the exact
    /// same ordering; this reference reproduces the original scan.
    fn reference_rcm(a: &CsrMatrix) -> Vec<usize> {
        let n = a.nrows();
        let mut visited = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let degree = |v: usize| a.row(v).0.len();
        while order.len() < n {
            let start =
                (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree(v)).expect("unvisited");
            let start = pseudo_peripheral(a, start);
            let mut queue = std::collections::VecDeque::new();
            visited[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let (cols, _) = a.row(v);
                let mut neighbours: Vec<usize> =
                    cols.iter().copied().filter(|&u| u != v && !visited[u]).collect();
                neighbours.sort_unstable_by_key(|&u| degree(u));
                for u in neighbours {
                    if !visited[u] {
                        visited[u] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        order.reverse();
        order
    }

    #[test]
    fn many_singleton_components_order_unchanged_and_fast() {
        // 4000 isolated diagonal nodes — one component each.  The old scan is
        // quadratic here; the cursor version must stay linear-ish while
        // producing the identical ordering.
        let n = 4000;
        let a = {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0).unwrap();
            }
            coo.to_csr()
        };
        let perm = reverse_cuthill_mckee(&a);
        assert_eq!(perm, reference_rcm(&a));
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ordering_matches_reference_on_mixed_graphs() {
        // Connected inputs and mixed-size multi-component inputs: the cursor
        // start selection must reproduce the original ordering exactly.
        let cases: Vec<CsrMatrix> = vec![scrambled_path(57).0, scrambled_path(200).0, {
            // Three components of different sizes and degree profiles:
            // a path of 10, a star of 6, and 5 singletons.
            let mut coo = CooMatrix::new(21, 21);
            for i in 0..10 {
                coo.push(i, i, 2.0).unwrap();
                if i + 1 < 10 {
                    coo.push(i, i + 1, -1.0).unwrap();
                    coo.push(i + 1, i, -1.0).unwrap();
                }
            }
            for i in 10..16 {
                coo.push(i, i, 2.0).unwrap();
            }
            for leaf in 11..16 {
                coo.push(10, leaf, -1.0).unwrap();
                coo.push(leaf, 10, -1.0).unwrap();
            }
            for i in 16..21 {
                coo.push(i, i, 1.0).unwrap();
            }
            coo.to_csr()
        }];
        for a in &cases {
            assert_eq!(reverse_cuthill_mckee(a), reference_rcm(a), "n = {}", a.nrows());
        }
    }
}
