//! Compressed Sparse Row matrix.
//!
//! CSR is the workhorse format of the whole workspace: the assembled global
//! Poisson operator, every sub-domain operator `Rᵢ A Rᵢᵀ` and the graphs fed
//! to the GNN are all stored as [`CsrMatrix`].  The implementation focuses on
//! the operations the solvers actually need: parallel SpMV, principal
//! sub-matrix extraction, transpose, symmetry checks and Galerkin triple
//! products for the coarse space.

use rayon::prelude::*;

use crate::{Result, SparseError};

/// A sparse matrix stored in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_raw_parts`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
/// * `col_idx.len() == values.len() == row_ptr[nrows]`,
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build a CSR matrix from raw arrays, validating all invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::InvalidArgument(format!(
                "row_ptr length {} does not match nrows {} + 1",
                row_ptr.len(),
                nrows
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidArgument("row_ptr[0] must be 0".into()));
        }
        if col_idx.len() != values.len() || col_idx.len() != *row_ptr.last().unwrap() {
            return Err(SparseError::InvalidArgument(
                "col_idx/values length must equal row_ptr[nrows]".into(),
            ));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidArgument(format!(
                    "row_ptr must be non-decreasing (row {r})"
                )));
            }
            let mut last: Option<usize> = None;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c >= ncols {
                    return Err(SparseError::IndexOutOfBounds { index: c, bound: ncols });
                }
                if let Some(prev) = last {
                    if c <= prev {
                        return Err(SparseError::InvalidArgument(format!(
                            "column indices must be strictly increasing within row {r}"
                        )));
                    }
                }
                last = Some(c);
            }
        }
        Ok(CsrMatrix { nrows, ncols, row_ptr, col_idx, values })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Build a CSR matrix from a dense row-major slice, keeping entries with
    /// absolute value larger than `tol`.
    pub fn from_dense(data: &[f64], nrows: usize, ncols: usize, tol: f64) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_dense: data length mismatch");
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v.abs() > tol {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(row, col)`, 0 when the entry is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a dense vector (square or rectangular; missing entries
    /// are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Matrix–vector product `y = A x` into a preallocated output, parallel
    /// over rows.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        if self.nrows >= 4096 {
            y.par_iter_mut().enumerate().for_each(|(r, yr)| {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                *yr = acc;
            });
        } else {
            for r in 0..self.nrows {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                y[r] = acc;
            }
        }
    }

    /// Matrix–vector product returning a freshly allocated vector.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x` into a preallocated
    /// output.  Works directly on the CSR arrays (scatter along rows) — no
    /// explicit transpose and no temporary is ever built.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.ncols, "spmv_transpose: y length mismatch");
        y.fill(0.0);
        self.spmv_transpose_add_into(x, y);
    }

    /// Accumulating transposed product `y += Aᵀ x`.
    ///
    /// The accumulate form is what the Schwarz prolongation needs
    /// (`z += R₀ᵀ v`), so the coarse correction can scatter straight into the
    /// global output without a scratch vector.
    pub fn spmv_transpose_add_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv_transpose: x length mismatch");
        assert_eq!(y.len(), self.ncols, "spmv_transpose: y length mismatch");
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                y[self.col_idx[k]] += self.values[k] * xr;
            }
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn spmv_transpose(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        self.spmv_transpose_into(x, &mut y);
        y
    }

    /// Residual `r = b - A x` into a preallocated buffer.
    pub fn residual_into(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        self.spmv_into(x, r);
        for i in 0..r.len() {
            r[i] = b[i] - r[i];
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let pos = cursor[c];
                col_idx[pos] = r;
                values[pos] = self.values[k];
                cursor[c] += 1;
            }
        }
        row_ptr.truncate(self.ncols + 1);
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, values }
    }

    /// Check numerical symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extract the principal sub-matrix `A[idx, idx]`.
    ///
    /// `idx` lists global indices (need not be sorted, must be unique).  The
    /// result is a `idx.len() × idx.len()` CSR matrix whose local ordering
    /// follows `idx`.  This is exactly the `Rᵢ A Rᵢᵀ` operator of the Schwarz
    /// method when `idx` enumerates the nodes of sub-domain `i`.
    pub fn principal_submatrix(&self, idx: &[usize]) -> CsrMatrix {
        let n = idx.len();
        // Global → local map, usize::MAX marks "not in the sub-domain".
        let mut glob_to_loc = vec![usize::MAX; self.ncols];
        for (loc, &g) in idx.iter().enumerate() {
            debug_assert!(g < self.nrows, "principal_submatrix: index out of bounds");
            glob_to_loc[g] = loc;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for &g in idx {
            scratch.clear();
            let (cols, vals) = self.row(g);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let loc = glob_to_loc[c];
                if loc != usize::MAX {
                    scratch.push((loc, v));
                }
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { nrows: n, ncols: n, row_ptr, col_idx, values }
    }

    /// Galerkin triple product `R A Rᵀ` where `R` is a dense `k × n` matrix
    /// given row-wise as `k` dense vectors.  Returns a dense row-major `k × k`
    /// array.  Used for the Nicolaides coarse operator (small `k`).
    ///
    /// Internally the rows are sparsified and routed through
    /// [`CsrMatrix::galerkin_product_csr`], so the old `k` dense `n`-vector
    /// temporaries (`A R_jᵀ` for every coarse dof) are never materialised.
    pub fn galerkin_product(&self, r_rows: &[Vec<f64>]) -> Vec<f64> {
        let k = r_rows.len();
        let n = self.nrows;
        let mut row_ptr = Vec::with_capacity(k + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in r_rows {
            assert_eq!(row.len(), n, "galerkin_product: R row length mismatch");
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let r = CsrMatrix { nrows: k, ncols: n, row_ptr, col_idx, values };
        self.galerkin_product_csr(&r)
    }

    /// Galerkin triple product `R A Rᵀ` with a sparse `k × n` restriction
    /// matrix, returning a dense row-major `k × k` array.
    ///
    /// Row `i` of the result is computed with a sparse row-merge accumulator:
    /// the rows of `A` selected by the nonzeros of `R_i` are merged into a
    /// dense accumulator `w = R_i A` (tracking the touched columns so the
    /// accumulator can be cleared in `O(touched)`), and each entry
    /// `out[i, j] = w · R_j` is then a sparse dot against row `j` of `R`.
    /// Peak extra memory is one `n`-vector regardless of `k`, and every
    /// summation order is fixed, so the result is deterministic.
    ///
    /// **Explicit zeros:** entries of `R` stored with value exactly `0.0` are
    /// skipped, both in the merge and in the dots, so this method computes
    /// the same floating-point operation sequence whether `R` carries
    /// explicitly-stored zeros or not.  In particular it agrees **bit for
    /// bit** with [`CsrMatrix::galerkin_product`] on the densified rows of
    /// `R` (the wrapper drops zeros when sparsifying).
    pub fn galerkin_product_csr(&self, r: &CsrMatrix) -> Vec<f64> {
        assert_eq!(r.ncols(), self.nrows, "galerkin_product: R column count mismatch");
        assert_eq!(self.nrows, self.ncols, "galerkin_product: A must be square");
        let k = r.nrows();
        let mut out = vec![0.0; k * k];
        let mut acc = vec![0.0; self.ncols];
        let mut marked = vec![false; self.ncols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..k {
            // w = R_i A  (row-merge of the A-rows selected by R_i's nonzeros).
            let (rcols, rvals) = r.row(i);
            for (&g, &w) in rcols.iter().zip(rvals.iter()) {
                if w == 0.0 {
                    continue;
                }
                let (acols, avals) = self.row(g);
                for (&c, &a) in acols.iter().zip(avals.iter()) {
                    if !marked[c] {
                        marked[c] = true;
                        touched.push(c);
                        acc[c] = 0.0;
                    }
                    acc[c] += w * a;
                }
            }
            // out[i, j] = w · R_j, iterating row j's nonzeros in column order.
            for j in 0..k {
                let (jcols, jvals) = r.row(j);
                let mut s = 0.0;
                for (&c, &v) in jcols.iter().zip(jvals.iter()) {
                    if v != 0.0 && marked[c] {
                        s += acc[c] * v;
                    }
                }
                out[i * k + j] = s;
            }
            for &c in &touched {
                marked[c] = false;
            }
            touched.clear();
        }
        out
    }

    /// Sparse matrix–matrix product `C = A B` (row-merge SpGEMM).
    ///
    /// Every output row is accumulated into a dense scratch row with a
    /// touched-column list, then emitted in ascending column order, so the
    /// result satisfies the CSR invariants and the per-entry summation order
    /// is a fixed function of the inputs (deterministic, thread-free).
    /// Explicitly-stored zeros in `self` are skipped; zeros *produced* by
    /// cancellation are kept, preserving the Galerkin sparsity pattern.
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul: inner dimension mismatch");
        let n_out = other.ncols;
        let mut acc = vec![0.0; n_out];
        let mut marked = vec![false; n_out];
        let mut touched: Vec<usize> = Vec::new();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &a) in cols.iter().zip(vals.iter()) {
                if a == 0.0 {
                    continue;
                }
                let (bcols, bvals) = other.row(j);
                for (&c, &b) in bcols.iter().zip(bvals.iter()) {
                    if !marked[c] {
                        marked[c] = true;
                        touched.push(c);
                        acc[c] = 0.0;
                    }
                    acc[c] += a * b;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                col_idx.push(c);
                values.push(acc[c]);
                marked[c] = false;
            }
            row_ptr.push(col_idx.len());
            touched.clear();
        }
        CsrMatrix { nrows: self.nrows, ncols: n_out, row_ptr, col_idx, values }
    }

    /// Galerkin triple product `R A Rᵀ` returning a **sparse** `k × k` CSR
    /// matrix — the per-level coarse-operator kernel of the multi-level
    /// hierarchy, where the dense `k × k` output of
    /// [`CsrMatrix::galerkin_product_csr`] would be quadratic in memory.
    ///
    /// Computed as two row-merge SpGEMMs, `(R · A) · Rᵀ`; both products keep
    /// a fixed summation order, so the result is deterministic.
    pub fn galerkin_rap(&self, r: &CsrMatrix) -> CsrMatrix {
        assert_eq!(r.ncols(), self.nrows, "galerkin_rap: R column count mismatch");
        assert_eq!(self.nrows, self.ncols, "galerkin_rap: A must be square");
        r.matmul(self).matmul(&r.transpose())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scale all stored values by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Convert to a dense row-major vector (for small matrices / testing).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                out[r * self.ncols + c] = v;
            }
        }
        out
    }

    /// Number of stored entries in the strictly lower triangle.
    pub fn lower_nnz(&self) -> usize {
        let mut count = 0;
        for r in 0..self.nrows {
            let (cols, _) = self.row(r);
            count += cols.iter().filter(|&&c| c < r).count();
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample_matrix() -> CsrMatrix {
        // [ 4 -1  0]
        // [-1  4 -1]
        // [ 0 -1  4]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0).unwrap();
        }
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 2, -1.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn from_raw_parts_validation() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // bad row_ptr length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // decreasing row_ptr
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn spmv_and_residual() {
        let a = sample_matrix();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
        let mut r = vec![0.0; 3];
        a.residual_into(&[2.0, 4.0, 10.0], &x, &mut r);
        assert_eq!(r, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_and_get() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(id.spmv(&x), x);
        assert_eq!(id.get(2, 2), 1.0);
        assert_eq!(id.get(2, 3), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let a = coo.to_csr();
        let at = a.transpose();
        assert_eq!(at.nrows(), 3);
        assert_eq!(at.ncols(), 2);
        assert_eq!(at.get(2, 0), 2.0);
        let att = at.transpose();
        assert_eq!(att, a);
    }

    #[test]
    fn spmv_transpose_matches_explicit_transpose() {
        let a = sample_matrix();
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(a.spmv_transpose(&x), a.transpose().spmv(&x));
    }

    #[test]
    fn spmv_transpose_into_and_add_into() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let a = coo.to_csr();
        let x = vec![2.0, -1.0];
        let mut y = vec![99.0; 3];
        a.spmv_transpose_into(&x, &mut y);
        assert_eq!(y, a.transpose().spmv(&x));
        // The accumulate form adds on top of existing contents.
        let mut z = vec![1.0; 3];
        a.spmv_transpose_add_into(&x, &mut z);
        assert_eq!(z, vec![1.0 + y[0], 1.0 + y[1], 1.0 + y[2]]);
    }

    #[test]
    fn symmetry_check() {
        let a = sample_matrix();
        assert!(a.is_symmetric(1e-14));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        assert!(!coo.to_csr().is_symmetric(1e-14));
    }

    #[test]
    fn principal_submatrix_extraction() {
        let a = sample_matrix();
        let sub = a.principal_submatrix(&[2, 1]);
        // local ordering follows idx: local 0 = global 2, local 1 = global 1
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.get(0, 0), 4.0);
        assert_eq!(sub.get(0, 1), -1.0);
        assert_eq!(sub.get(1, 0), -1.0);
        assert_eq!(sub.get(1, 1), 4.0);
    }

    #[test]
    fn galerkin_product_small() {
        let a = sample_matrix();
        // R = [1 1 0; 0 0 1]
        let r = vec![vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let g = a.galerkin_product(&r);
        // R A Rᵀ = [[6, -1], [-1, 4]]
        assert_eq!(g, vec![6.0, -1.0, -1.0, 4.0]);
    }

    #[test]
    fn galerkin_product_csr_matches_dense_reference() {
        // A larger pseudo-random SPD-ish matrix and overlapping R rows; the
        // sparse row-merge accumulator must agree with the naive dense
        // computation R (A Rᵀ) to rounding.
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + (i % 3) as f64).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
            if i + 7 < n {
                coo.push(i, i + 7, 0.5).unwrap();
                coo.push(i + 7, i, 0.5).unwrap();
            }
        }
        let a = coo.to_csr();
        let k = 5;
        let r_rows: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|c| {
                        if c % k == j || c % (k + 1) == j {
                            (c + j + 1) as f64 * 0.1
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let fast = a.galerkin_product(&r_rows);
        // Naive reference.
        let mut slow = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                let arj = a.spmv(&r_rows[j]);
                slow[i * k + j] = crate::vector::dot(&r_rows[i], &arj);
            }
        }
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!((f - s).abs() < 1e-10 * s.abs().max(1.0), "{f} vs {s}");
        }
    }

    #[test]
    fn matmul_matches_dense_reference() {
        // (3×4) · (4×2) against the dense triple loop.
        let mut coo_a = CooMatrix::new(3, 4);
        for &(i, j, v) in
            &[(0usize, 0usize, 1.0), (0, 2, -2.0), (1, 1, 3.0), (1, 3, 0.5), (2, 0, -1.0)]
        {
            coo_a.push(i, j, v).unwrap();
        }
        let mut coo_b = CooMatrix::new(4, 2);
        for &(i, j, v) in
            &[(0usize, 0usize, 2.0), (1, 0, -1.0), (1, 1, 4.0), (2, 1, 1.5), (3, 0, 1.0)]
        {
            coo_b.push(i, j, v).unwrap();
        }
        let a = coo_a.to_csr();
        let b = coo_b.to_csr();
        let c = a.matmul(&b);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 2);
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += da[i * 4 + k] * db[k * 2 + j];
                }
                assert!((dc[i * 2 + j] - s).abs() < 1e-14, "C[{i},{j}]");
            }
        }
        // Identity is neutral on both sides.
        assert_eq!(a.matmul(&CsrMatrix::identity(4)), a);
        assert_eq!(CsrMatrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_keeps_cancellation_zeros_and_skips_stored_zeros() {
        // A row with +1/-1 against equal columns cancels to an explicit zero
        // in the output (pattern preserved); a stored zero in A contributes
        // no pattern at all.
        let a = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 3], vec![0, 1, 0], vec![1.0, -1.0, 0.0])
            .unwrap();
        let b = CsrMatrix::from_raw_parts(2, 1, vec![0, 1, 2], vec![0, 0], vec![3.0, 3.0]).unwrap();
        let c = a.matmul(&b);
        // Row 0: 1*3 + (-1)*3 = 0, stored explicitly.
        assert_eq!(c.row(0), (&[0usize][..], &[0.0][..]));
        // Row 1: the stored zero never touches B, so the row is empty.
        assert_eq!(c.row(1).0.len(), 0);
    }

    #[test]
    fn galerkin_rap_matches_dense_galerkin() {
        let a = {
            let n = 30;
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 4.0).unwrap();
                if i + 1 < n {
                    coo.push(i, i + 1, -1.0).unwrap();
                    coo.push(i + 1, i, -1.0).unwrap();
                }
            }
            coo.to_csr()
        };
        // Overlapping aggregates of 3, stride 2: R is 14×30.
        let k = 14;
        let mut coo = CooMatrix::new(k, 30);
        for i in 0..k {
            for d in 0..3 {
                coo.push(i, 2 * i + d, 1.0 + d as f64 * 0.5).unwrap();
            }
        }
        let r = coo.to_csr();
        let sparse = a.galerkin_rap(&r);
        let dense = a.galerkin_product_csr(&r);
        assert_eq!(sparse.nrows(), k);
        assert_eq!(sparse.ncols(), k);
        let sd = sparse.to_dense();
        for (i, (s, d)) in sd.iter().zip(dense.iter()).enumerate() {
            assert!((s - d).abs() < 1e-12 * d.abs().max(1.0), "entry {i}: {s} vs {d}");
        }
        // RAP of a symmetric matrix is symmetric.
        assert!(sparse.is_symmetric(1e-12));
    }

    #[test]
    fn dense_roundtrip_and_norm() {
        let a = sample_matrix();
        let d = a.to_dense();
        let b = CsrMatrix::from_dense(&d, 3, 3, 0.0);
        assert_eq!(a, b);
        assert!((a.frobenius_norm() - (3.0 * 16.0 + 4.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.lower_nnz(), 2);
    }

    #[test]
    fn scale_and_values_mut() {
        let mut a = sample_matrix();
        a.scale(2.0);
        assert_eq!(a.get(0, 0), 8.0);
        a.values_mut()[0] = 1.0;
        assert_eq!(a.values()[0], 1.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample_matrix();
        assert_eq!(a.diagonal(), vec![4.0, 4.0, 4.0]);
    }
}
