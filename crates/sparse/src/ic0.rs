//! Zero-fill incomplete Cholesky factorisation, IC(0).
//!
//! IC(0) is the "legacy optimized preconditioner" baseline of the paper's
//! Table III.  The factorisation computes `A ≈ L Lᵀ` where `L` is constrained
//! to the sparsity pattern of the lower triangle of `A` (no fill-in), and the
//! preconditioner application solves the two triangular systems.

use crate::{CsrMatrix, Result, SparseError};

/// Incomplete Cholesky factorisation with zero fill-in.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// Lower-triangular factor in CSR (row-wise, columns `<= row`, sorted).
    l: CsrMatrix,
}

impl IncompleteCholesky {
    /// Compute the IC(0) factorisation of a symmetric positive definite CSR
    /// matrix.  Only the lower triangle of `a` is read.
    ///
    /// When a pivot becomes non-positive (possible for incomplete
    /// factorisations even on SPD input), a standard diagonal-shift retry is
    /// applied: the whole diagonal is scaled by `1 + shift` with a growing
    /// shift until the factorisation succeeds.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let mut shift = 0.0;
        for _attempt in 0..12 {
            match Self::factor_with_shift(a, shift) {
                Ok(ic) => return Ok(ic),
                Err(SparseError::NotPositiveDefinite { .. }) => {
                    shift = if shift == 0.0 { 1e-3 } else { shift * 10.0 };
                }
                Err(e) => return Err(e),
            }
        }
        Err(SparseError::InvalidArgument("IC(0) failed even with large diagonal shift".into()))
    }

    fn factor_with_shift(a: &CsrMatrix, shift: f64) -> Result<Self> {
        let n = a.nrows();
        // Extract the lower-triangular pattern and values of A.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c < r {
                    col_idx.push(c);
                    values.push(v);
                } else if c == r {
                    col_idx.push(c);
                    values.push(v * (1.0 + shift));
                }
            }
            row_ptr.push(col_idx.len());
        }

        // Row-wise IKJ incomplete factorisation restricted to the pattern.
        // For each row i and each stored (i, j) with j < i:
        //   L[i][j] = (A[i][j] - Σ_{k<j, k in both patterns} L[i][k] L[j][k]) / L[j][j]
        // and the diagonal:
        //   L[i][i] = sqrt(A[i][i] - Σ_{k<i} L[i][k]^2)
        for i in 0..n {
            let (ri_lo, ri_hi) = (row_ptr[i], row_ptr[i + 1]);
            for idx in ri_lo..ri_hi {
                let j = col_idx[idx];
                if j < i {
                    // sparse dot of row i [cols < j] with row j [cols < j]
                    let (rj_lo, rj_hi) = (row_ptr[j], row_ptr[j + 1]);
                    let mut sum = 0.0;
                    let mut p = ri_lo;
                    let mut q = rj_lo;
                    while p < idx && q < rj_hi && col_idx[q] < j {
                        match col_idx[p].cmp(&col_idx[q]) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                sum += values[p] * values[q];
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                    // diagonal of row j is its last stored entry
                    let djj = values[rj_hi - 1];
                    values[idx] = (values[idx] - sum) / djj;
                } else if j == i {
                    let mut sum = 0.0;
                    for k in ri_lo..idx {
                        sum += values[k] * values[k];
                    }
                    let d = values[idx] - sum;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(SparseError::NotPositiveDefinite { row: i, value: d });
                    }
                    values[idx] = d.sqrt();
                }
            }
        }

        let l = CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values)?;
        Ok(IncompleteCholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &CsrMatrix {
        &self.l
    }

    /// Apply the preconditioner: solve `L Lᵀ z = r`.
    pub fn apply(&self, r: &[f64]) -> Result<Vec<f64>> {
        if r.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "ic0_apply",
                expected: (self.n, 1),
                found: (r.len(), 1),
            });
        }
        let n = self.n;
        let mut y = r.to_vec();
        // Forward solve L y = r
        for i in 0..n {
            let (cols, vals) = self.l.row(i);
            let mut acc = y[i];
            let mut diag = 1.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c < i {
                    acc -= v * y[c];
                } else {
                    diag = v;
                }
            }
            y[i] = acc / diag;
        }
        // Backward solve Lᵀ z = y
        let mut z = y;
        for i in (0..n).rev() {
            let (cols, vals) = self.l.row(i);
            let diag = *vals.last().expect("row must contain its diagonal");
            let zi = z[i] / diag;
            z[i] = zi;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c < i {
                    z[c] -= v * zi;
                }
            }
        }
        Ok(z)
    }

    /// Apply into a preallocated output buffer.
    pub fn apply_into(&self, r: &[f64], out: &mut [f64]) -> Result<()> {
        let z = self.apply(r)?;
        out.copy_from_slice(&z);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, SkylineCholesky};

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn tridiagonal_ic0_is_exact() {
        // For a tridiagonal SPD matrix the IC(0) pattern equals the exact
        // Cholesky pattern, so the preconditioner is an exact solver.
        let a = laplacian_1d(30);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let chol = SkylineCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let z = ic.apply(&b).unwrap();
        let x = chol.solve(&b).unwrap();
        assert!(crate::vector::relative_error(&z, &x) < 1e-10);
        assert_eq!(ic.dim(), 30);
    }

    #[test]
    fn factor_matrix_is_lower_triangular() {
        let a = laplacian_1d(10);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let l = ic.factor_matrix();
        for r in 0..l.nrows() {
            let (cols, _) = l.row(r);
            assert!(cols.iter().all(|&c| c <= r));
            assert_eq!(*cols.last().unwrap(), r, "diagonal must be stored");
        }
    }

    #[test]
    fn preconditioner_improves_residual_direction() {
        // z = M⁻¹ r should be a much better correction than r itself for an
        // ill-conditioned Laplacian: ‖b - A z‖ < ‖b - A (r/λmax-ish scaling)‖.
        let a = laplacian_1d(100);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b = vec![1.0; 100];
        let z = ic.apply(&b).unwrap();
        let az = a.spmv(&z);
        let res_z: Vec<f64> = b.iter().zip(az.iter()).map(|(bi, ai)| bi - ai).collect();
        assert!(crate::vector::norm2(&res_z) < 1e-8, "tridiagonal IC0 should solve exactly");
    }

    #[test]
    fn rejects_rectangular_and_wrong_rhs() {
        let coo = CooMatrix::new(2, 3);
        assert!(IncompleteCholesky::factor(&coo.to_csr()).is_err());
        let a = laplacian_1d(4);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        assert!(ic.apply(&[1.0]).is_err());
    }

    #[test]
    fn indefinite_matrix_falls_back_to_shift_or_errors() {
        // A matrix with a negative diagonal cannot be IC-factored even with
        // a positive multiplicative shift — expect a clean error, not a panic.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -5.0).unwrap();
        let result = IncompleteCholesky::factor(&coo.to_csr());
        assert!(result.is_err());
    }

    #[test]
    fn apply_into_matches_apply() {
        let a = laplacian_1d(12);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..12).map(|i| i as f64 - 6.0).collect();
        let z = ic.apply(&b).unwrap();
        let mut out = vec![0.0; 12];
        ic.apply_into(&b, &mut out).unwrap();
        assert_eq!(z, out);
    }

    #[test]
    fn ic0_on_2d_laplacian_is_spd_preconditioner() {
        // 5-point Laplacian on a small grid: IC(0) is inexact but must stay
        // SPD: zᵀ r > 0 for the PCG inner products to make sense.
        let nx = 8;
        let ny = 8;
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                coo.push(me, me, 4.0).unwrap();
                if i > 0 {
                    coo.push(me, idx(i - 1, j), -1.0).unwrap();
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j), -1.0).unwrap();
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1), -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1), -1.0).unwrap();
                }
            }
        }
        let a = coo.to_csr();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        for seed in 0..5u64 {
            let r: Vec<f64> = (0..n)
                .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 500.0 - 1.0)
                .collect();
            let z = ic.apply(&r).unwrap();
            assert!(crate::vector::dot(&z, &r) > 0.0, "IC(0) application must stay SPD");
        }
    }
}
