//! Sparse and dense linear-algebra substrate for the DDM-GNN reproduction.
//!
//! This crate provides every matrix/vector primitive the rest of the workspace
//! builds on:
//!
//! * [`CooMatrix`] — triplet builder used during finite-element assembly,
//! * [`CsrMatrix`] — compressed sparse row storage with parallel
//!   matrix–vector products and sub-matrix extraction,
//! * [`DenseMatrix`] / [`LuFactor`] — dense kernels and LU with partial
//!   pivoting used for the coarse problem of the two-level Schwarz method,
//! * [`SkylineCholesky`] — envelope (skyline) Cholesky factorisation
//!   combined with [`rcm`] reordering, used as the exact sub-domain solver of
//!   the DDM-LU baseline,
//! * [`IncompleteCholesky`] — zero-fill incomplete Cholesky, the IC(0)
//!   baseline preconditioner of the paper's Table III,
//! * [`vector`] — the small set of BLAS-1 kernels (dot, axpy, norms) shared by
//!   the Krylov solvers.
//!
//! All floating point work is `f64`. Parallelism uses rayon and is restricted
//! to embarrassingly parallel loops (row-wise SpMV, batched factorisations),
//! so results are deterministic.

pub mod cholesky;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod ic0;
pub mod lu;
pub mod rcm;
pub mod vector;

pub use cholesky::SkylineCholesky;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use ic0::IncompleteCholesky;
pub use lu::LuFactor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
