//! Unit-level integration tests for the sparse crate: COO→CSR conversion
//! invariants, SpMV against a dense reference, and direct solves on a small
//! SPD system.

use sparse::{CooMatrix, CsrMatrix, LuFactor, SkylineCholesky};

/// A fixed 6×6 SPD matrix: 1D Laplacian with a boosted diagonal.
fn small_spd() -> CsrMatrix {
    let n = 6;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, -1.0).unwrap();
            coo.push(i + 1, i, -1.0).unwrap();
        }
    }
    coo.to_csr()
}

#[test]
fn coo_to_csr_sorts_and_deduplicates() {
    let mut coo = CooMatrix::new(3, 3);
    // Unsorted insertion order with duplicate entries that must be summed.
    coo.push(2, 0, 5.0).unwrap();
    coo.push(0, 2, 1.0).unwrap();
    coo.push(0, 0, 2.0).unwrap();
    coo.push(0, 0, 3.0).unwrap(); // duplicate of (0,0)
    coo.push(1, 1, 7.0).unwrap();
    coo.push(0, 2, -1.0).unwrap(); // duplicate of (0,2), sums to zero
    let csr = coo.to_csr();

    assert_eq!(csr.nrows(), 3);
    assert_eq!(csr.ncols(), 3);

    // Duplicates are accumulated.
    assert_eq!(csr.get(0, 0), 5.0);
    assert_eq!(csr.get(1, 1), 7.0);
    assert_eq!(csr.get(2, 0), 5.0);
    // The (0,2) pair sums to 0.0; whether it is stored explicitly or dropped,
    // its value must read back as zero.
    assert_eq!(csr.get(0, 2), 0.0);

    // Column indices are strictly increasing within every row.
    for r in 0..csr.nrows() {
        let (cols, _) = csr.row(r);
        for w in cols.windows(2) {
            assert!(w[0] < w[1], "row {r} has unsorted or duplicate columns: {cols:?}");
        }
    }
}

#[test]
fn coo_round_trips_through_csr_and_dense() {
    let a = small_spd();
    let dense = a.to_dense();
    let b = CsrMatrix::from_dense(&dense, a.nrows(), a.ncols(), 0.0);
    assert_eq!(a.nrows(), b.nrows());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            assert_eq!(a.get(i, j), b.get(i, j), "mismatch at ({i},{j})");
        }
    }
}

#[test]
fn out_of_bounds_push_is_rejected() {
    let mut coo = CooMatrix::new(2, 2);
    assert!(coo.push(2, 0, 1.0).is_err());
    assert!(coo.push(0, 2, 1.0).is_err());
    assert!(coo.push(1, 1, 1.0).is_ok());
}

#[test]
fn spmv_matches_dense_reference() {
    let a = small_spd();
    let n = a.nrows();
    let dense = a.to_dense();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();

    // Dense reference product.
    let mut expected = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            expected[i] += dense[i * n + j] * x[j];
        }
    }

    let y = a.spmv(&x);
    for i in 0..n {
        assert!((y[i] - expected[i]).abs() < 1e-13, "row {i}: {} vs {}", y[i], expected[i]);
    }

    // And the transpose product on a symmetric matrix must agree.
    let yt = a.spmv_transpose(&x);
    for i in 0..n {
        assert!((yt[i] - expected[i]).abs() < 1e-13);
    }
}

#[test]
fn lu_solves_small_spd_system() {
    let a = small_spd();
    let n = a.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let b = a.spmv(&x_true);

    let lu = LuFactor::factor_csr(&a).expect("SPD matrix factors");
    let x = lu.solve(&b).expect("solve succeeds");
    for i in 0..n {
        assert!((x[i] - x_true[i]).abs() < 1e-10, "x[{i}] = {} vs {}", x[i], x_true[i]);
    }
}

#[test]
fn cholesky_agrees_with_lu_on_spd_system() {
    let a = small_spd();
    let b: Vec<f64> = (0..a.nrows()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
    let lu = LuFactor::factor_csr(&a).unwrap().solve(&b).unwrap();
    let ch = SkylineCholesky::factor(&a).unwrap().solve(&b).unwrap();
    assert!(sparse::vector::relative_error(&lu, &ch) < 1e-12);
}
