//! The Nicolaides coarse space and coarse problem (Eq. 7 and 13 of the paper).
//!
//! The coarse space has one degree of freedom per sub-domain.  Its basis
//! vectors are the partition-of-unity weighted indicator vectors of the
//! sub-domains: node `v` contributes `1 / multiplicity(v)` to every
//! sub-domain that contains it, so the basis sums to the constant vector —
//! the kernel direction the one-level method struggles with.  The coarse
//! operator `A₀ = R₀ A R₀ᵀ` is a small `K × K` dense matrix factored with LU
//! once per solve.

use sparse::{CsrMatrix, DenseMatrix, LuFactor};

use crate::restriction::{node_multiplicity, Restriction};

/// The assembled Nicolaides coarse space: basis vectors, coarse operator LU.
pub struct NicolaidesCoarseSpace {
    /// `R₀` rows: one dense global vector per sub-domain.
    rows: Vec<Vec<f64>>,
    /// LU factorisation of `R₀ A R₀ᵀ`.
    factor: LuFactor,
}

impl NicolaidesCoarseSpace {
    /// Build the coarse space from the global matrix and the sub-domain
    /// restrictions.
    pub fn new(matrix: &CsrMatrix, restrictions: &[Restriction]) -> sparse::Result<Self> {
        let n = matrix.nrows();
        let k = restrictions.len();
        assert!(k > 0, "coarse space needs at least one sub-domain");
        let mult = node_multiplicity(restrictions, n);
        let mut rows = Vec::with_capacity(k);
        for r in restrictions {
            let mut row = vec![0.0; n];
            for &g in r.indices() {
                // Partition-of-unity weight.
                row[g] = 1.0 / mult[g].max(1) as f64;
            }
            rows.push(row);
        }
        // Coarse operator A0 = R0 A R0ᵀ (dense K × K).
        let a0 = matrix.galerkin_product(&rows);
        let dense = DenseMatrix::from_row_major(k, k, a0)?;
        let factor = LuFactor::factor_dense(&dense)?;
        Ok(NicolaidesCoarseSpace { rows, factor })
    }

    /// Number of coarse degrees of freedom (= number of sub-domains).
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Apply the coarse correction `z_c = R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀ r`, accumulating
    /// the result into `out`.
    pub fn apply_into(&self, r: &[f64], out: &mut [f64]) {
        let k = self.rows.len();
        // coarse rhs = R0 r
        let mut coarse_rhs = vec![0.0; k];
        for (i, row) in self.rows.iter().enumerate() {
            coarse_rhs[i] = sparse::vector::dot(row, r);
        }
        let coarse_sol =
            self.factor.solve(&coarse_rhs).expect("coarse solve dimension mismatch cannot happen");
        // out += R0ᵀ coarse_sol
        for (i, row) in self.rows.iter().enumerate() {
            let alpha = coarse_sol[i];
            if alpha == 0.0 {
                continue;
            }
            for (o, &w) in out.iter_mut().zip(row.iter()) {
                *o += alpha * w;
            }
        }
    }

    /// Apply the coarse correction returning a fresh vector.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; r.len()];
        self.apply_into(r, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fixture;
    use crate::Decomposition;

    #[test]
    fn basis_is_a_partition_of_unity() {
        let fx = fixture(800, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let n = fx.problem.num_unknowns();
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        assert_eq!(coarse.dim(), decomp.num_subdomains());
        // Sum of basis rows = 1 everywhere (partition of unity).
        let mut sum = vec![0.0; n];
        for row in &coarse.rows {
            for (s, &v) in sum.iter_mut().zip(row.iter()) {
                *s += v;
            }
        }
        for &s in &sum {
            assert!((s - 1.0).abs() < 1e-12, "partition of unity violated: {s}");
        }
    }

    #[test]
    fn coarse_apply_is_symmetric_operator() {
        // zᵀ apply(y) == yᵀ apply(z) because R0ᵀ A0⁻¹ R0 is symmetric.
        let fx = fixture(600, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let y: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.25).collect();
        let ay = coarse.apply(&y);
        let az = coarse.apply(&z);
        let lhs = sparse::vector::dot(&z, &ay);
        let rhs = sparse::vector::dot(&y, &az);
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn coarse_correction_captures_constant_like_error() {
        // The coarse space must represent (approximately) constant vectors:
        // applying the coarse correction to A * 1 should recover something
        // close to the constant vector on the interior.
        let fx = fixture(700, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let ones = vec![1.0; n];
        let a_ones = fx.problem.matrix.spmv(&ones);
        let recovered = coarse.apply(&a_ones);
        // Galerkin projection property: R0 A (recovered - ones) = 0, i.e. the
        // coarse residual of the recovered vector vanishes.
        let diff: Vec<f64> = recovered.iter().zip(ones.iter()).map(|(r, o)| r - o).collect();
        let a_diff = fx.problem.matrix.spmv(&diff);
        for row in &coarse.rows {
            let proj = sparse::vector::dot(row, &a_diff);
            assert!(proj.abs() < 1e-6, "coarse residual component {proj}");
        }
    }
}
