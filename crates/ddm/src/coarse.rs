//! The Nicolaides coarse space and coarse problem (Eq. 7 and 13 of the paper).
//!
//! The coarse space has one degree of freedom per sub-domain.  Its basis
//! vectors are the partition-of-unity weighted indicator vectors of the
//! sub-domains: node `v` contributes `1 / multiplicity(v)` to every
//! sub-domain that contains it, so the basis sums to the constant vector —
//! the kernel direction the one-level method struggles with.
//!
//! `R₀` is stored as a sparse `K × N` CSR matrix (each row has one entry per
//! sub-domain node, not `N`), so the restriction `R₀ r` is a sparse SpMV and
//! the prolongation `R₀ᵀ v` a transposed scatter via
//! [`CsrMatrix::spmv_transpose_add_into`] — no dense basis vectors and no
//! temporaries.  The coarse operator `A₀ = R₀ A R₀ᵀ` is a small `K × K` dense
//! matrix assembled with the sparse Galerkin row-merge kernel and factored
//! with LU once per setup; `apply_into` reuses pre-sized scratch vectors so
//! the per-Krylov-iteration path is allocation-free.

use sanitizer::TrackedMutex;

use sparse::{CsrMatrix, DenseMatrix, LuFactor};

use crate::restriction::{node_multiplicity, Restriction};

/// Reusable coarse-solve buffers (`K`-sized, tiny; the `_b` panels grow to
/// `K × b` on the first batched apply).
struct CoarseScratch {
    rhs: Vec<f64>,
    sol: Vec<f64>,
    rhs_b: Vec<f64>,
    sol_b: Vec<f64>,
}

/// The assembled Nicolaides coarse space: sparse basis, coarse operator LU.
pub struct NicolaidesCoarseSpace {
    /// `R₀` as a sparse `K × N` matrix of partition-of-unity weights.
    r0: CsrMatrix,
    /// LU factorisation of `R₀ A R₀ᵀ`.
    factor: LuFactor,
    /// Pre-sized buffers for `apply_into`.
    scratch: TrackedMutex<CoarseScratch>,
}

impl NicolaidesCoarseSpace {
    /// Build the coarse space from the global matrix and the sub-domain
    /// restrictions.
    pub fn new(matrix: &CsrMatrix, restrictions: &[Restriction]) -> sparse::Result<Self> {
        let n = matrix.nrows();
        let k = restrictions.len();
        assert!(k > 0, "coarse space needs at least one sub-domain");
        let mult = node_multiplicity(restrictions, n);
        // Restriction indices are sorted and unique, so the rows can be
        // emitted directly in CSR order.
        let mut row_ptr = Vec::with_capacity(k + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in restrictions {
            for &g in r.indices() {
                col_idx.push(g);
                values.push(1.0 / mult[g].max(1) as f64);
            }
            row_ptr.push(col_idx.len());
        }
        let r0 = CsrMatrix::from_raw_parts(k, n, row_ptr, col_idx, values)?;
        // Coarse operator A0 = R0 A R0ᵀ (dense K × K).
        let a0 = matrix.galerkin_product_csr(&r0);
        let dense = DenseMatrix::from_row_major(k, k, a0)?;
        let factor = LuFactor::factor_dense(&dense)?;
        let scratch = TrackedMutex::new(
            CoarseScratch {
                rhs: vec![0.0; k],
                sol: vec![0.0; k],
                rhs_b: Vec::new(),
                sol_b: Vec::new(),
            },
            "ddm::coarse::NicolaidesCoarseSpace::scratch",
        );
        Ok(NicolaidesCoarseSpace { r0, factor, scratch })
    }

    /// Number of coarse degrees of freedom (= number of sub-domains).
    pub fn dim(&self) -> usize {
        self.r0.nrows()
    }

    /// The sparse restriction matrix `R₀`.
    pub fn restriction_matrix(&self) -> &CsrMatrix {
        &self.r0
    }

    /// Apply the coarse correction `z_c = R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀ r`, accumulating
    /// the result into `out`.
    ///
    /// A mismatched residual length is a classified `sparse::Result` error
    /// (not an `.expect` panic) so callers can route it into fault
    /// classification and keep the outer solve alive.
    pub fn apply_into(&self, r: &[f64], out: &mut [f64]) -> sparse::Result<()> {
        if r.len() != self.r0.ncols() || out.len() != self.r0.ncols() {
            return Err(sparse::SparseError::DimensionMismatch {
                op: "coarse correction",
                expected: (self.r0.ncols(), self.r0.ncols()),
                found: (r.len(), out.len()),
            });
        }
        // A panic elsewhere while the lock was held poisons the mutex, but the
        // guarded state has no invariant that a panic could break: both
        // buffers are fully overwritten (`spmv_into` / `solve_into`) before
        // being read, so recovering the guard is always safe.  Without this,
        // one panicked worker would permanently disable the coarse solve for
        // every subsequent apply.
        let mut guard = self.scratch.lock();
        let CoarseScratch { rhs, sol, .. } = &mut *guard;
        // coarse rhs = R0 r (sparse restriction)
        self.r0.spmv_into(r, rhs);
        self.factor.solve_into(rhs, sol)?;
        // out += R0ᵀ coarse_sol (sparse prolongation)
        self.r0.spmv_transpose_add_into(sol, out);
        Ok(())
    }

    /// Batched coarse correction: `outs[c] += R₀ᵀ A₀⁻¹ R₀ rs[c]` for every
    /// column, with the restriction and prolongation run as **blocked SpMM**
    /// — `R₀`'s sparse index/value streams are swept once for the whole batch
    /// instead of once per column.
    ///
    /// Each column accumulates its row sums in the same ascending-entry order
    /// as the unbatched [`NicolaidesCoarseSpace::apply_into`], so column `c`
    /// of the result is bit-identical to an unbatched apply of `rs[c]`.
    pub fn apply_batch_into(&self, rs: &[&[f64]], outs: &mut [&mut [f64]]) -> sparse::Result<()> {
        assert_eq!(rs.len(), outs.len(), "batched coarse apply: rs/outs column count mismatch");
        let b = rs.len();
        let n = self.r0.ncols();
        for (r, out) in rs.iter().zip(outs.iter()) {
            if r.len() != n || out.len() != n {
                return Err(sparse::SparseError::DimensionMismatch {
                    op: "coarse correction",
                    expected: (n, n),
                    found: (r.len(), out.len()),
                });
            }
        }
        let k = self.r0.nrows();
        let mut guard = self.scratch.lock();
        let CoarseScratch { rhs, sol, rhs_b, sol_b } = &mut *guard;
        rhs_b.resize(k * b, 0.0);
        sol_b.resize(k * b, 0.0);
        // Blocked restriction: one sweep over R₀ fills all b coarse rhs
        // columns (column-interleaved K × b panel).
        for i in 0..k {
            let (cols, vals) = self.r0.row(i);
            let row = &mut rhs_b[i * b..(i + 1) * b];
            row.fill(0.0);
            for (&g, &v) in cols.iter().zip(vals.iter()) {
                for (c, r) in rs.iter().enumerate() {
                    row[c] += v * r[g];
                }
            }
        }
        // The K × K LU solve stays per-column (contiguous gather/scatter):
        // the factor is tiny and cache-resident across the batch.
        for c in 0..b {
            for i in 0..k {
                rhs[i] = rhs_b[i * b + c];
            }
            self.factor.solve_into(rhs, sol)?;
            for i in 0..k {
                sol_b[i * b + c] = sol[i];
            }
        }
        // Blocked prolongation: one sweep over R₀ scatters all b columns.
        for i in 0..k {
            let (cols, vals) = self.r0.row(i);
            let row = &sol_b[i * b..(i + 1) * b];
            for (&g, &v) in cols.iter().zip(vals.iter()) {
                for (c, out) in outs.iter_mut().enumerate() {
                    // The unbatched prolongation skips exact-zero coarse
                    // coefficients; mirror that so `-0.0` outputs stay
                    // bit-identical.
                    if row[c] != 0.0 {
                        out[g] += v * row[c];
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply the coarse correction returning a fresh vector.
    pub fn apply(&self, r: &[f64]) -> sparse::Result<Vec<f64>> {
        let mut out = vec![0.0; r.len()];
        self.apply_into(r, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fixture;
    use crate::Decomposition;

    #[test]
    fn basis_is_a_partition_of_unity() {
        let fx = fixture(800, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let n = fx.problem.num_unknowns();
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        assert_eq!(coarse.dim(), decomp.num_subdomains());
        // Sum of basis rows = 1 everywhere (partition of unity).
        let r0 = coarse.restriction_matrix();
        let mut sum = vec![0.0; n];
        for i in 0..r0.nrows() {
            let (cols, vals) = r0.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                sum[c] += v;
            }
        }
        for &s in &sum {
            assert!((s - 1.0).abs() < 1e-12, "partition of unity violated: {s}");
        }
    }

    #[test]
    fn coarse_apply_is_symmetric_operator() {
        // zᵀ apply(y) == yᵀ apply(z) because R0ᵀ A0⁻¹ R0 is symmetric.
        let fx = fixture(600, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let y: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.25).collect();
        let ay = coarse.apply(&y).unwrap();
        let az = coarse.apply(&z).unwrap();
        let lhs = sparse::vector::dot(&z, &ay);
        let rhs = sparse::vector::dot(&y, &az);
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn coarse_correction_captures_constant_like_error() {
        // The coarse space must represent (approximately) constant vectors:
        // applying the coarse correction to A * 1 should recover something
        // close to the constant vector on the interior.
        let fx = fixture(700, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let ones = vec![1.0; n];
        let a_ones = fx.problem.matrix.spmv(&ones);
        let recovered = coarse.apply(&a_ones).unwrap();
        // Galerkin projection property: R0 A (recovered - ones) = 0, i.e. the
        // coarse residual of the recovered vector vanishes.
        let diff: Vec<f64> = recovered.iter().zip(ones.iter()).map(|(r, o)| r - o).collect();
        let a_diff = fx.problem.matrix.spmv(&diff);
        let coarse_residual = coarse.restriction_matrix().spmv(&a_diff);
        for proj in coarse_residual {
            assert!(proj.abs() < 1e-6, "coarse residual component {proj}");
        }
    }

    #[test]
    fn apply_into_is_repeatable_and_accumulates() {
        // Scratch reuse must not change results, and apply_into must add to
        // (not overwrite) the output vector.
        let fx = fixture(500, 180, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let r: Vec<f64> = (0..n).map(|i| ((i * 5 % 17) as f64) * 0.3 - 2.0).collect();
        let first = coarse.apply(&r).unwrap();
        let second = coarse.apply(&r).unwrap();
        assert_eq!(first, second, "scratch reuse changed the result");
        let mut acc = first.clone();
        coarse.apply_into(&r, &mut acc).unwrap();
        for (a, f) in acc.iter().zip(first.iter()) {
            assert!((a - 2.0 * f).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_survives_poisoned_scratch_mutex() {
        // A panic while the scratch lock is held poisons the mutex.  The
        // coarse solve must recover (the buffers carry no cross-call state)
        // and keep producing the exact same corrections as before the panic.
        let fx = fixture(500, 180, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let coarse = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let n = fx.problem.num_unknowns();
        let r: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) * 0.5 - 1.5).collect();
        let before = coarse.apply(&r).unwrap();

        // Deliberately poison: panic while holding the scratch guard.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = coarse.scratch.lock();
            panic!("deliberate poison");
        }));
        assert!(poison.is_err());
        assert!(coarse.scratch.is_poisoned(), "test setup failed to poison the mutex");

        // The next apply must neither panic nor change its answer.
        let after = coarse.apply(&r).unwrap();
        assert_eq!(before, after, "poison recovery changed the coarse correction");
    }
}
