//! Recursive algebraic multi-level hierarchy (smoothed aggregation).
//!
//! The two-level Schwarz method caps out once the Nicolaides coarse problem
//! itself grows with the sub-domain count: its dense LU is `O(K³)` and its
//! one-constant-per-sub-domain space is too weak to keep PCG iteration counts
//! flat as `n` grows.  This module replaces that single coarse solve with a
//! classical smoothed-aggregation AMG hierarchy:
//!
//! 1. **Strength of connection** — `j` is a strong neighbour of `i` when
//!    `|a_ij| ≥ θ √(a_ii a_jj)`.
//! 2. **Greedy uncoupled aggregation** (the Trilinos ML "Uncoupled"/MIS
//!    scheme): a first pass seeds an aggregate at every node whose strong
//!    neighbourhood is untouched, a second pass attaches leftovers to their
//!    strongest aggregated neighbour, a third pass turns stragglers into
//!    singletons.
//! 3. **Smoothed prolongation** — `P = (I − ω D⁻¹A) P_tent` with
//!    `ω = ω_f / λ_max(D⁻¹A)` and `λ_max` bounded by the (deterministic,
//!    iteration-free) Gershgorin estimate.  `R = Pᵀ` is stored as the CSR
//!    restriction, exactly like the Nicolaides `R₀`.
//! 4. **Galerkin coarsening** — `A_{ℓ+1} = R A_ℓ Rᵀ` by sparse SpGEMM
//!    ([`CsrMatrix::galerkin_rap`]), repeated until the coarsest operator is
//!    small enough for the existing skyline-Cholesky direct solve.
//!
//! The [`Hierarchy::apply_into`] V-cycle (weighted-Jacobi or symmetric
//! Gauss–Seidel smoothing per level, zero initial guess) is symmetric
//! positive definite, so it slots in additively as the coarse component of
//! `AdditiveSchwarz` and `DdmGnnPreconditioner` without breaking PCG theory.
//!
//! **Determinism contract.** Everything here is sequential or runs through
//! the fixed-chunk SpMV kernels, so results are bit-identical at every thread
//! count.  The degenerate [`Hierarchy::two_level_nicolaides`] configuration
//! reproduces the existing `NicolaidesCoarseSpace` *bit for bit*: it uses the
//! identical `R₀`, the identical dense-LU coarse factorisation, and an apply
//! path with the identical operation sequence (restrict, solve, scatter
//! straight into `out` — no intermediate accumulator, which would re-round
//! the additions).

use sanitizer::TrackedMutex;

use sparse::{CsrMatrix, DenseMatrix, LuFactor, SkylineCholesky};

use crate::restriction::{node_multiplicity, Restriction};

/// Which stationary smoother runs at each level of the V-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmootherKind {
    /// Damped Jacobi `x ← x + w D⁻¹ (b − A x)` — symmetric by construction.
    WeightedJacobi,
    /// Gauss–Seidel: forward sweeps before coarsening, backward sweeps after,
    /// so the V-cycle stays a symmetric operator when `pre_sweeps ==
    /// post_sweeps`.
    GaussSeidel,
}

/// Scalar precision of the smoother sweeps (the V-cycle glue — restriction,
/// prolongation, coarse solve — always stays f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmootherPrecision {
    /// Full double-precision sweeps.
    F64,
    /// The per-row residual of each Jacobi sweep is accumulated in f32 over
    /// f32 copies of the matrix values and inverse diagonal; the iterate
    /// stays f64.  Halves the smoother's memory traffic at a ~1e-7 relative
    /// perturbation the flexible outer Krylov method absorbs.
    F32,
}

/// Configuration of [`Hierarchy::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelConfig {
    /// Strength-of-connection threshold `θ` in `|a_ij| ≥ θ √(a_ii a_jj)`,
    /// applied at the finest level and **halved at each coarser level**: the
    /// Galerkin operators grow denser stencils whose individual couplings
    /// are proportionally smaller, so a fixed threshold eventually classifies
    /// every coupling as weak and stalls coarsening.
    pub theta: f64,
    /// Prolongator damping numerator: `ω = omega_factor / λ_max(D⁻¹A)`.
    /// The classical smoothed-aggregation choice is `4/3`.
    pub omega_factor: f64,
    /// Damping weight of the Jacobi smoother sweeps.
    pub jacobi_weight: f64,
    /// Per-level smoother.
    pub smoother: SmootherKind,
    /// Smoother sweep precision.
    pub smoother_precision: SmootherPrecision,
    /// Smoothing sweeps before restricting (per level).
    pub pre_sweeps: usize,
    /// Smoothing sweeps after prolongating (per level).
    pub post_sweeps: usize,
    /// Hard cap on the number of levels (including fine and coarsest).
    pub max_levels: usize,
    /// Coarsening stops once the operator has at most this many rows.
    pub coarsest_max_size: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            theta: 0.08,
            omega_factor: 4.0 / 3.0,
            jacobi_weight: 2.0 / 3.0,
            smoother: SmootherKind::WeightedJacobi,
            smoother_precision: SmootherPrecision::F64,
            pre_sweeps: 1,
            post_sweeps: 1,
            max_levels: 12,
            coarsest_max_size: 400,
        }
    }
}

/// Per-level smoother data.  The matrix structure is shared with the level's
/// operator; only value copies at reduced precision are stored here.
enum LevelSmoother {
    /// No sweeps at this level (degenerate two-level configuration).
    None,
    Jacobi {
        inv_diag: Vec<f64>,
        weight: f64,
    },
    JacobiF32 {
        values: Vec<f32>,
        inv_diag: Vec<f32>,
        weight: f32,
    },
    GaussSeidel {
        inv_diag: Vec<f64>,
    },
}

/// One non-coarsest level: its operator, the restriction to the next level
/// and the smoother.
struct Level {
    a: CsrMatrix,
    /// Restriction `R = Pᵀ` to the next coarser level (`n_{ℓ+1} × n_ℓ`).
    r: CsrMatrix,
    smoother: LevelSmoother,
}

/// Direct solver for the coarsest operator.
enum CoarseSolve {
    /// RCM + skyline Cholesky (the default for the SPD Galerkin operators).
    Cholesky(SkylineCholesky),
    /// Dense LU fallback (also the exact factorisation the degenerate
    /// Nicolaides configuration pins itself to).
    DenseLu(LuFactor),
}

impl CoarseSolve {
    fn factor(a: &CsrMatrix) -> sparse::Result<Self> {
        match SkylineCholesky::factor(a) {
            Ok(chol) => Ok(CoarseSolve::Cholesky(chol)),
            Err(_) => {
                // Galerkin RAP of an SPD fine operator is SPD whenever P has
                // full column rank; keep a dense-LU fallback for inputs that
                // defeat the Cholesky (e.g. near-singular coarse operators).
                let dense = DenseMatrix::from_row_major(a.nrows(), a.ncols(), a.to_dense())?;
                Ok(CoarseSolve::DenseLu(LuFactor::factor_dense(&dense)?))
            }
        }
    }

    fn solve_into(&self, b: &[f64], work: &mut Vec<f64>, out: &mut [f64]) {
        match self {
            CoarseSolve::Cholesky(chol) => chol
                .solve_scratch(b, work, out)
                // detlint::allow(panic-in-guarded): b/out are sized by the hierarchy itself, so the dimension check cannot fail
                .expect("coarse Cholesky solve dimension mismatch cannot happen"),
            CoarseSolve::DenseLu(lu) => {
                // detlint::allow(panic-in-guarded): b/out are sized by the hierarchy itself, so the dimension check cannot fail
                lu.solve_into(b, out).expect("coarse LU solve dimension mismatch cannot happen")
            }
        }
    }
}

/// Reusable per-apply buffers: one `(x, b, tmp)` triple per non-coarsest
/// level, an `(x, b)` pair for the coarsest, and the Cholesky work vector.
struct HierarchyScratch {
    /// Iterate per level (index `ℓ < L-1`), plus the coarsest solution last.
    xs: Vec<Vec<f64>>,
    /// Right-hand side per level, plus the coarsest rhs last.
    bs: Vec<Vec<f64>>,
    /// Residual buffer per non-coarsest level.
    tmps: Vec<Vec<f64>>,
    /// Direct-solver work vector.
    work: Vec<f64>,
}

/// The assembled multi-level hierarchy: per-level `(A_ℓ, R_ℓ, smoother_ℓ)`
/// plus the coarsest direct factorisation.
pub struct Hierarchy {
    levels: Vec<Level>,
    coarse: CoarseSolve,
    scratch: TrackedMutex<HierarchyScratch>,
    /// Row counts per level, fine to coarse (length = number of levels).
    level_dims: Vec<usize>,
    /// `Σ_ℓ nnz(A_ℓ) / nnz(A_0)` — the classical AMG operator complexity.
    operator_complexity: f64,
    /// Smoothing sweeps before restriction / after prolongation.
    pre_sweeps: usize,
    post_sweeps: usize,
    /// True for [`Hierarchy::two_level_nicolaides`]: `apply_into` takes the
    /// bit-exact Nicolaides path (scatter straight into `out`).
    degenerate_two_level: bool,
}

impl Hierarchy {
    /// Build a smoothed-aggregation hierarchy over `matrix`.
    ///
    /// Coarsening stops at `config.coarsest_max_size` rows, at
    /// `config.max_levels` levels, or as soon as an aggregation pass fails to
    /// shrink the operator (whichever comes first); the final operator is
    /// factored directly.
    pub fn build(matrix: &CsrMatrix, config: &MultilevelConfig) -> sparse::Result<Self> {
        assert_eq!(matrix.nrows(), matrix.ncols(), "hierarchy needs a square operator");
        assert!(config.max_levels >= 2, "a hierarchy has at least two levels");
        let fine_nnz = matrix.nnz().max(1);
        let mut total_nnz = matrix.nnz();
        let mut level_dims = vec![matrix.nrows()];
        let mut levels: Vec<Level> = Vec::new();
        let mut a = matrix.clone();
        while a.nrows() > config.coarsest_max_size && level_dims.len() < config.max_levels {
            // Halve the strength threshold at each coarser level (see the
            // `theta` field docs): RAP stencils get denser while individual
            // couplings shrink, so the finest-level threshold is too strict.
            let theta = config.theta * 0.5f64.powi(levels.len() as i32);
            let (agg, num_agg) = aggregate(&a, theta);
            if num_agg >= a.nrows() {
                // Aggregation made no progress (e.g. a diagonal operator):
                // stop coarsening and factor what we have.
                break;
            }
            let r = smoothed_restriction(&a, &agg, num_agg, config.omega_factor);
            let a_coarse = a.galerkin_rap(&r);
            total_nnz += a_coarse.nnz();
            let smoother = build_smoother(&a, config);
            levels.push(Level { a, r, smoother });
            level_dims.push(a_coarse.nrows());
            a = a_coarse;
        }
        let coarse = CoarseSolve::factor(&a)?;
        let scratch = TrackedMutex::new(
            make_scratch(&levels, a.nrows()),
            "ddm::multilevel::SmoothedAggregationHierarchy::scratch",
        );
        Ok(Hierarchy {
            levels,
            coarse,
            scratch,
            level_dims,
            operator_complexity: total_nnz as f64 / fine_nnz as f64,
            pre_sweeps: config.pre_sweeps,
            post_sweeps: config.post_sweeps,
            degenerate_two_level: false,
        })
    }

    /// The degenerate two-level configuration: the partition-of-unity
    /// Nicolaides restriction, dense-LU coarse solve, and **zero** smoothing
    /// sweeps.  Produces bit-identical corrections to
    /// [`crate::NicolaidesCoarseSpace`] — the pinning contract the existing
    /// two-level benchmarks rely on.
    pub fn two_level_nicolaides(
        matrix: &CsrMatrix,
        restrictions: &[Restriction],
    ) -> sparse::Result<Self> {
        let n = matrix.nrows();
        let k = restrictions.len();
        assert!(k > 0, "coarse space needs at least one sub-domain");
        let mult = node_multiplicity(restrictions, n);
        let mut row_ptr = Vec::with_capacity(k + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in restrictions {
            for &g in r.indices() {
                col_idx.push(g);
                values.push(1.0 / mult[g].max(1) as f64);
            }
            row_ptr.push(col_idx.len());
        }
        let r0 = CsrMatrix::from_raw_parts(k, n, row_ptr, col_idx, values)?;
        // Identical coarse operator assembly and factorisation to
        // NicolaidesCoarseSpace::new — same kernel, same rounding.
        let a0 = matrix.galerkin_product_csr(&r0);
        let dense = DenseMatrix::from_row_major(k, k, a0)?;
        let factor = LuFactor::factor_dense(&dense)?;
        let total_nnz = matrix.nnz() + k * k;
        let levels = vec![Level { a: matrix.clone(), r: r0, smoother: LevelSmoother::None }];
        let scratch = TrackedMutex::new(
            make_scratch(&levels, k),
            "ddm::multilevel::SmoothedAggregationHierarchy::scratch",
        );
        Ok(Hierarchy {
            levels,
            coarse: CoarseSolve::DenseLu(factor),
            scratch,
            level_dims: vec![n, k],
            operator_complexity: total_nnz as f64 / matrix.nnz().max(1) as f64,
            pre_sweeps: 0,
            post_sweeps: 0,
            degenerate_two_level: true,
        })
    }

    /// Number of levels, fine and coarsest included.
    pub fn num_levels(&self) -> usize {
        self.level_dims.len()
    }

    /// Row counts per level, fine to coarse.
    pub fn level_dims(&self) -> &[usize] {
        &self.level_dims
    }

    /// `Σ_ℓ nnz(A_ℓ) / nnz(A_0)`.
    pub fn operator_complexity(&self) -> f64 {
        self.operator_complexity
    }

    /// Fine-level dimension.
    pub fn dim(&self) -> usize {
        self.level_dims[0]
    }

    /// Whether this is the bit-exact Nicolaides two-level configuration.
    pub fn is_degenerate_two_level(&self) -> bool {
        self.degenerate_two_level
    }

    /// One V-cycle on `A x = r` from a zero initial guess, **accumulated**
    /// into `out` (`out += M⁻¹ r`), matching the additive-Schwarz coarse
    /// component contract of `NicolaidesCoarseSpace::apply_into`.
    pub fn apply_into(&self, r: &[f64], out: &mut [f64]) {
        assert_eq!(r.len(), self.dim(), "apply_into: residual length mismatch");
        assert_eq!(out.len(), self.dim(), "apply_into: output length mismatch");
        // Recover from poisoning exactly as the coarse space does: every
        // buffer is fully overwritten before it is read, so a panicking
        // holder cannot leave a broken invariant behind.
        let mut guard = self.scratch.lock();
        let HierarchyScratch { xs, bs, tmps, work } = &mut *guard;

        if self.degenerate_two_level {
            // Bit-exact Nicolaides path: restrict, dense solve, scatter
            // straight into `out`.  Routing through the V-cycle's fine-level
            // iterate would re-round the scatter additions (x = 0 + c₁ + c₂
            // then out += x is not out += c₁ += c₂ in floating point).
            let lvl = &self.levels[0];
            let k = lvl.r.nrows();
            lvl.r.spmv_into(r, &mut bs[1][..k]);
            self.coarse.solve_into(&bs[1][..k], work, &mut xs[1][..k]);
            lvl.r.spmv_transpose_add_into(&xs[1][..k], out);
            return;
        }

        let num = self.levels.len();
        bs[0].copy_from_slice(r);
        // Downward sweep: pre-smooth from zero, restrict the residual.
        for l in 0..num {
            let lvl = &self.levels[l];
            xs[l].fill(0.0);
            for _ in 0..self.pre_sweeps {
                smooth_pre(&lvl.a, &lvl.smoother, &bs[l], &mut xs[l], &mut tmps[l]);
            }
            lvl.a.residual_into(&bs[l], &xs[l], &mut tmps[l]);
            let (_, bs_coarser) = bs.split_at_mut(l + 1);
            lvl.r.spmv_into(&tmps[l], &mut bs_coarser[0]);
        }
        // Coarsest direct solve.
        self.coarse.solve_into(&bs[num], work, &mut xs[num]);
        // Upward sweep: prolongate, post-smooth.
        for l in (0..num).rev() {
            let lvl = &self.levels[l];
            let (xs_fine, xs_coarser) = xs.split_at_mut(l + 1);
            lvl.r.spmv_transpose_add_into(&xs_coarser[0], &mut xs_fine[l]);
            for _ in 0..self.post_sweeps {
                smooth_post(&lvl.a, &lvl.smoother, &bs[l], &mut xs_fine[l], &mut tmps[l]);
            }
        }
        for (o, &x) in out.iter_mut().zip(xs[0].iter()) {
            *o += x;
        }
    }

    /// [`Hierarchy::apply_into`] into a fresh zero vector.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; r.len()];
        self.apply_into(r, &mut out);
        out
    }
}

fn make_scratch(levels: &[Level], coarse_dim: usize) -> HierarchyScratch {
    let mut xs: Vec<Vec<f64>> = levels.iter().map(|l| vec![0.0; l.a.nrows()]).collect();
    let mut bs = xs.clone();
    xs.push(vec![0.0; coarse_dim]);
    bs.push(vec![0.0; coarse_dim]);
    let tmps = levels.iter().map(|l| vec![0.0; l.a.nrows()]).collect();
    HierarchyScratch { xs, bs, tmps, work: Vec::new() }
}

/// One pre-smoothing sweep (forward direction for Gauss–Seidel).
fn smooth_pre(a: &CsrMatrix, s: &LevelSmoother, b: &[f64], x: &mut [f64], tmp: &mut [f64]) {
    match s {
        LevelSmoother::None => {}
        LevelSmoother::Jacobi { inv_diag, weight } => jacobi_sweep(a, inv_diag, *weight, b, x, tmp),
        LevelSmoother::JacobiF32 { values, inv_diag, weight } => {
            jacobi_sweep_f32(a, values, inv_diag, *weight, b, x, tmp)
        }
        LevelSmoother::GaussSeidel { inv_diag } => {
            gs_sweep(a, inv_diag, b, x, /*forward=*/ true)
        }
    }
}

/// One post-smoothing sweep (backward direction for Gauss–Seidel, so the
/// whole V-cycle is a symmetric operator).
fn smooth_post(a: &CsrMatrix, s: &LevelSmoother, b: &[f64], x: &mut [f64], tmp: &mut [f64]) {
    match s {
        LevelSmoother::None => {}
        LevelSmoother::Jacobi { inv_diag, weight } => jacobi_sweep(a, inv_diag, *weight, b, x, tmp),
        LevelSmoother::JacobiF32 { values, inv_diag, weight } => {
            jacobi_sweep_f32(a, values, inv_diag, *weight, b, x, tmp)
        }
        LevelSmoother::GaussSeidel { inv_diag } => {
            gs_sweep(a, inv_diag, b, x, /*forward=*/ false)
        }
    }
}

/// `x ← x + w D⁻¹ (b − A x)`.
fn jacobi_sweep(
    a: &CsrMatrix,
    inv_diag: &[f64],
    weight: f64,
    b: &[f64],
    x: &mut [f64],
    tmp: &mut [f64],
) {
    a.residual_into(b, x, tmp);
    for i in 0..x.len() {
        x[i] += weight * inv_diag[i] * tmp[i];
    }
}

/// The f32 Jacobi sweep: the per-row residual is accumulated in f32 over the
/// f32 value copy, the update is buffered in the caller's f64 scratch so the
/// sweep stays a true (simultaneous-update, hence symmetric) Jacobi step.
fn jacobi_sweep_f32(
    a: &CsrMatrix,
    values: &[f32],
    inv_diag: &[f32],
    weight: f32,
    b: &[f64],
    x: &mut [f64],
    tmp: &mut [f64],
) {
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    for i in 0..x.len() {
        let mut acc = 0.0f32;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += values[k] * (x[col_idx[k]] as f32);
        }
        let r = (b[i] as f32) - acc;
        tmp[i] = (weight * inv_diag[i] * r) as f64;
    }
    for (xi, &d) in x.iter_mut().zip(tmp.iter()) {
        *xi += d;
    }
}

/// One Gauss–Seidel sweep in the given direction.
fn gs_sweep(a: &CsrMatrix, inv_diag: &[f64], b: &[f64], x: &mut [f64], forward: bool) {
    let n = x.len();
    let row = |i: usize, x: &mut [f64]| {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            if c != i {
                acc += v * x[c];
            }
        }
        x[i] = inv_diag[i] * (b[i] - acc);
    };
    if forward {
        for i in 0..n {
            row(i, x);
        }
    } else {
        for i in (0..n).rev() {
            row(i, x);
        }
    }
}

fn build_smoother(a: &CsrMatrix, config: &MultilevelConfig) -> LevelSmoother {
    if config.pre_sweeps == 0 && config.post_sweeps == 0 {
        return LevelSmoother::None;
    }
    let diag = a.diagonal();
    match (config.smoother, config.smoother_precision) {
        (SmootherKind::WeightedJacobi, SmootherPrecision::F64) => LevelSmoother::Jacobi {
            inv_diag: diag.iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect(),
            weight: config.jacobi_weight,
        },
        (SmootherKind::WeightedJacobi, SmootherPrecision::F32) => LevelSmoother::JacobiF32 {
            values: a.values().iter().map(|&v| v as f32).collect(),
            inv_diag: diag.iter().map(|&d| if d != 0.0 { (1.0 / d) as f32 } else { 0.0 }).collect(),
            weight: config.jacobi_weight as f32,
        },
        (SmootherKind::GaussSeidel, _) => LevelSmoother::GaussSeidel {
            inv_diag: diag.iter().map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 }).collect(),
        },
    }
}

/// Greedy uncoupled aggregation over the strength-of-connection graph.
/// Returns the aggregate id of every node and the number of aggregates.
fn aggregate(a: &CsrMatrix, theta: f64) -> (Vec<usize>, usize) {
    let n = a.nrows();
    let diag = a.diagonal();
    const UNAGGREGATED: usize = usize::MAX;
    let mut agg = vec![UNAGGREGATED; n];
    let mut num_agg = 0usize;

    let is_strong = |i: usize, j: usize, v: f64| -> bool {
        j != i && v.abs() >= theta * (diag[i].abs() * diag[j].abs()).sqrt()
    };

    // Pass 1: seed an aggregate at every node whose strong neighbourhood is
    // non-empty and entirely untouched; the node and its strong neighbours
    // form it.  Nodes with no strong neighbour at all are left for pass 3 —
    // seeding them here would make every weakly-coupled node its own
    // aggregate and stall coarsening on the denser Galerkin operators.
    for i in 0..n {
        if agg[i] != UNAGGREGATED {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut free = true;
        let mut has_strong = false;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if is_strong(i, j, v) {
                has_strong = true;
                if agg[j] != UNAGGREGATED {
                    free = false;
                    break;
                }
            }
        }
        if !has_strong || !free {
            continue;
        }
        agg[i] = num_agg;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if is_strong(i, j, v) {
                agg[j] = num_agg;
            }
        }
        num_agg += 1;
    }

    // Pass 2: attach leftovers to the aggregate of their strongest
    // aggregated neighbour (deterministic tie-break: first in column order).
    let snapshot = agg.clone();
    for i in 0..n {
        if agg[i] != UNAGGREGATED {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut best: Option<(f64, usize)> = None;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if is_strong(i, j, v) && snapshot[j] != UNAGGREGATED {
                let s = v.abs();
                if best.map(|(bs, _)| s > bs).unwrap_or(true) {
                    best = Some((s, snapshot[j]));
                }
            }
        }
        if let Some((_, target)) = best {
            agg[i] = target;
        }
    }

    // Pass 3: nodes with only weak couplings attach to the aggregate of
    // their largest neighbour by |a_ij| — couplings below the strength
    // threshold still carry information, and leaving these nodes as
    // singletons would stall coarsening.  The attachment targets are frozen
    // at the start of the pass so the result is order-independent.
    let snapshot = agg.clone();
    for i in 0..n {
        if agg[i] != UNAGGREGATED {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut best: Option<(f64, usize)> = None;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j != i && v != 0.0 && snapshot[j] != UNAGGREGATED {
                let s = v.abs();
                if best.map(|(bs, _)| s > bs).unwrap_or(true) {
                    best = Some((s, snapshot[j]));
                }
            }
        }
        if let Some((_, target)) = best {
            agg[i] = target;
        }
    }

    // Pass 4: truly isolated rows (e.g. Dirichlet identity rows).  When the
    // passes above produced genuine aggregates, lump every isolated row into
    // one shared aggregate: the rows are mutually decoupled, so the lumped
    // degree of freedom stays decoupled through the Galerkin product and only
    // trades the exact per-row coarse correction for a least-squares one the
    // smoother mops up.  Per-row singletons would instead put a hard floor
    // under the coarse dimension (one dof per Dirichlet node at *every*
    // level) and stall coarsening.  When nothing aggregated at all (a
    // diagonal operator), fall back to singletons so the caller sees
    // `num_agg == n` and stops coarsening gracefully.
    if num_agg > 0 {
        let mut lumped = false;
        for a_i in agg.iter_mut() {
            if *a_i == UNAGGREGATED {
                *a_i = num_agg;
                lumped = true;
            }
        }
        if lumped {
            num_agg += 1;
        }
    } else {
        for a_i in agg.iter_mut() {
            if *a_i == UNAGGREGATED {
                *a_i = num_agg;
                num_agg += 1;
            }
        }
    }

    (agg, num_agg)
}

/// Build the smoothed restriction `R = Pᵀ` with
/// `P = (I − ω D⁻¹A) P_tent`, assembled row-by-row directly over the
/// aggregate ids (no explicit `P_tent`, no general CSR subtraction):
/// `P[i, c] = δ_{c, agg(i)} − (ω/d_i) Σ_{j: agg(j)=c} a_ij`.
fn smoothed_restriction(
    a: &CsrMatrix,
    agg: &[usize],
    num_agg: usize,
    omega_factor: f64,
) -> CsrMatrix {
    let n = a.nrows();
    let diag = a.diagonal();
    // Gershgorin bound on λ_max(D⁻¹A): max_i Σ_j |a_ij| / d_i.  Deterministic
    // and iteration-free; for the M-matrices produced by the FEM assembly it
    // overestimates by at most ~2×, which the ω_f numerator absorbs.
    let mut lam_max = 0.0f64;
    for i in 0..n {
        let (_, vals) = a.row(i);
        let s: f64 = vals.iter().map(|v| v.abs()).sum();
        if diag[i] != 0.0 {
            lam_max = lam_max.max(s / diag[i].abs());
        }
    }
    let omega = if lam_max > 0.0 { omega_factor / lam_max } else { 0.0 };

    // Assemble P row-by-row with the shared row-merge accumulator, then
    // transpose once to get the stored restriction.
    let mut acc = vec![0.0f64; num_agg];
    let mut marked = vec![false; num_agg];
    let mut touched: Vec<usize> = Vec::new();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let mut note = |c: usize, w: f64, acc: &mut [f64]| {
            if !marked[c] {
                marked[c] = true;
                touched.push(c);
                acc[c] = 0.0;
            }
            acc[c] += w;
        };
        note(agg[i], 1.0, &mut acc);
        if omega != 0.0 && diag[i] != 0.0 {
            let scale = omega / diag[i];
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if v != 0.0 {
                    note(agg[j], -scale * v, &mut acc);
                }
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            col_idx.push(c);
            values.push(acc[c]);
            marked[c] = false;
        }
        row_ptr.push(col_idx.len());
        touched.clear();
    }
    let p = CsrMatrix::from_raw_parts(n, num_agg, row_ptr, col_idx, values)
        // detlint::allow(panic-in-guarded): construction-time assembly of rows built sorted and in-bounds above; not on the apply path
        .expect("smoothed prolongator assembly produced an invalid matrix; this is a bug");
    p.transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::NicolaidesCoarseSpace;
    use crate::test_support::fixture;
    use crate::Decomposition;
    use sparse::CooMatrix;

    /// 2D Laplacian on an `nx × ny` grid (5-point stencil, Dirichlet shifted
    /// onto the diagonal).
    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = CooMatrix::new(nx * ny, nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                coo.push(idx(i, j), idx(i, j), 4.0).unwrap();
                if i + 1 < nx {
                    coo.push(idx(i, j), idx(i + 1, j), -1.0).unwrap();
                    coo.push(idx(i + 1, j), idx(i, j), -1.0).unwrap();
                }
                if j + 1 < ny {
                    coo.push(idx(i, j), idx(i, j + 1), -1.0).unwrap();
                    coo.push(idx(i, j + 1), idx(i, j), -1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn aggregation_covers_every_node() {
        let a = laplacian_2d(20, 20);
        let (agg, k) = aggregate(&a, 0.08);
        assert!(k > 0 && k < a.nrows(), "aggregation must coarsen: k = {k}");
        for &g in &agg {
            assert!(g < k);
        }
        // Every aggregate is used.
        let mut used = vec![false; k];
        for &g in &agg {
            used[g] = true;
        }
        assert!(used.into_iter().all(|u| u));
    }

    #[test]
    fn three_level_hierarchy_on_small_laplacian() {
        // Debug-fast 3-level check: a 40×40 grid Laplacian coarsens to 3+
        // levels with the default config, the V-cycle is SPD-compatible and
        // PCG with it converges quickly.
        let a = laplacian_2d(40, 40);
        let config = MultilevelConfig { coarsest_max_size: 120, ..MultilevelConfig::default() };
        let h = Hierarchy::build(&a, &config).unwrap();
        assert!(h.num_levels() >= 3, "expected 3+ levels, got dims {:?}", h.level_dims());
        assert!(!h.is_degenerate_two_level());
        assert_eq!(h.dim(), a.nrows());
        // Dims strictly decrease.
        for w in h.level_dims().windows(2) {
            assert!(w[1] < w[0], "level dims must shrink: {:?}", h.level_dims());
        }
        assert!(h.operator_complexity() >= 1.0 && h.operator_complexity() < 3.0);

        // Symmetry of the V-cycle operator (required by PCG).
        let n = a.nrows();
        let y: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) * 0.4).collect();
        let my = h.apply(&y);
        let mw = h.apply(&w);
        let lhs = sparse::vector::dot(&w, &my);
        let rhs = sparse::vector::dot(&y, &mw);
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0), "V-cycle not symmetric");
        // Positivity: yᵀ M⁻¹ y > 0.
        assert!(sparse::vector::dot(&y, &my) > 0.0, "V-cycle not positive definite");

        // As a standalone preconditioner it beats plain CG.
        let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.25 - 2.0).collect();
        let opts = krylov::SolverOptions::with_tolerance(1e-8);
        let plain = krylov::conjugate_gradient(&a, &b, None, &opts);
        struct H<'a>(&'a Hierarchy);
        impl krylov::Preconditioner for H<'_> {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                z.fill(0.0);
                self.0.apply_into(r, z);
            }
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn name(&self) -> &str {
                "sa-vcycle"
            }
        }
        let pcg = krylov::preconditioned_conjugate_gradient(&a, &b, None, &H(&h), &opts);
        assert!(plain.stats.converged() && pcg.stats.converged());
        assert!(
            pcg.stats.iterations * 2 < plain.stats.iterations,
            "V-cycle PCG {} vs CG {}",
            pcg.stats.iterations,
            plain.stats.iterations
        );
    }

    #[test]
    fn gauss_seidel_smoothing_also_converges_symmetrically() {
        let a = laplacian_2d(24, 24);
        let config = MultilevelConfig {
            smoother: SmootherKind::GaussSeidel,
            coarsest_max_size: 60,
            ..MultilevelConfig::default()
        };
        let h = Hierarchy::build(&a, &config).unwrap();
        assert!(h.num_levels() >= 2);
        let n = a.nrows();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5 % 19) as f64) - 9.0).collect();
        let w: Vec<f64> = (0..n).map(|i| ((i * 11 % 7) as f64) * 0.3).collect();
        let my = h.apply(&y);
        let mw = h.apply(&w);
        let lhs = sparse::vector::dot(&w, &my);
        let rhs = sparse::vector::dot(&y, &mw);
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "forward-pre/backward-post GS V-cycle must be symmetric"
        );
    }

    #[test]
    fn f32_smoothing_stays_close_to_f64() {
        let a = laplacian_2d(24, 24);
        let base = MultilevelConfig { coarsest_max_size: 60, ..MultilevelConfig::default() };
        let h64 = Hierarchy::build(&a, &base).unwrap();
        let h32 = Hierarchy::build(
            &a,
            &MultilevelConfig { smoother_precision: SmootherPrecision::F32, ..base },
        )
        .unwrap();
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 3 % 23) as f64) * 0.5 - 5.0).collect();
        let z64 = h64.apply(&r);
        let z32 = h32.apply(&r);
        let scale = sparse::vector::norm2(&z64).max(1.0);
        let mut diff = 0.0f64;
        for (x, y) in z32.iter().zip(z64.iter()) {
            diff = diff.max((x - y).abs());
        }
        assert!(diff / scale < 1e-4, "f32 smoothing deviates too much: {}", diff / scale);
        assert!(sparse::vector::dot(&z32, &r) > 0.0);
    }

    #[test]
    fn degenerate_two_level_is_bit_identical_to_nicolaides() {
        let fx = fixture(800, 200, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        let nico = NicolaidesCoarseSpace::new(&fx.problem.matrix, &decomp.restrictions).unwrap();
        let h = Hierarchy::two_level_nicolaides(&fx.problem.matrix, &decomp.restrictions).unwrap();
        assert!(h.is_degenerate_two_level());
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.level_dims(), &[fx.problem.num_unknowns(), decomp.num_subdomains()]);
        let n = fx.problem.num_unknowns();
        let r: Vec<f64> = (0..n).map(|i| ((i * 5 % 17) as f64) * 0.3 - 2.0).collect();
        // Fresh-vector applies agree bit for bit.
        assert_eq!(nico.apply(&r).unwrap(), h.apply(&r));
        // Accumulating applies starting from identical nonzero outputs agree
        // bit for bit (this is the exact call pattern inside ASM's glue).
        let mut out_n: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.7 - 4.0).collect();
        let mut out_h = out_n.clone();
        nico.apply_into(&r, &mut out_n).unwrap();
        h.apply_into(&r, &mut out_h);
        assert_eq!(out_n, out_h, "degenerate hierarchy must reproduce Nicolaides bit for bit");
    }

    #[test]
    fn apply_survives_poisoned_scratch_mutex() {
        let a = laplacian_2d(16, 16);
        let h = Hierarchy::build(
            &a,
            &MultilevelConfig { coarsest_max_size: 40, ..MultilevelConfig::default() },
        )
        .unwrap();
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 7 % 29) as f64) - 14.0).collect();
        let before = h.apply(&r);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = h.scratch.lock();
            panic!("deliberate poison");
        }));
        assert!(poison.is_err());
        assert!(h.scratch.is_poisoned());
        assert_eq!(before, h.apply(&r), "poison recovery changed the V-cycle result");
    }

    #[test]
    fn diagonal_matrix_stops_coarsening_gracefully() {
        // A diagonal operator has no strong couplings: aggregation produces
        // n singletons and must bail out instead of looping forever.
        let a = CsrMatrix::identity(600);
        let h = Hierarchy::build(&a, &MultilevelConfig::default()).unwrap();
        assert_eq!(h.num_levels(), 1, "no coarsening possible on a diagonal operator");
        let r = vec![1.0; 600];
        let z = h.apply(&r);
        for &v in &z {
            assert!((v - 1.0).abs() < 1e-12, "identity solve must return the rhs");
        }
    }
}
