//! The one- and two-level Additive Schwarz preconditioner (DDM-LU).
//!
//! `apply` implements Eq. (6) / (7) of the paper:
//!
//! ```text
//! z = [R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀ r]   (two-level only)
//!   + Σᵢ Rᵢᵀ (Rᵢ A Rᵢᵀ)⁻¹ Rᵢ r
//! ```
//!
//! The local solves are independent and run in parallel with rayon — the CPU
//! analogue of the paper's batched GPU inference.
//!
//! `apply` is allocation-free: every sub-domain owns a pre-sized scratch
//! buffer set (restricted residual, local solution, solver work vector)
//! behind an uncontended `Mutex`, so the per-Krylov-iteration path performs
//! no heap allocation at all.  The gather/solve phase runs in parallel; the
//! scatter (`Σ Rᵢᵀ vᵢ`) accumulates sequentially in sub-domain order so the
//! result is bit-identical at every thread count.

use sanitizer::TrackedMutex;
use std::sync::atomic::{AtomicU64, Ordering};

use krylov::resilience::{FaultEvent, FaultKind, FaultLog};
use krylov::Preconditioner;
use rayon::prelude::*;
use sparse::CsrMatrix;

use crate::coarse::NicolaidesCoarseSpace;
use crate::local::{factor_all_cholesky, CholeskyLocalSolver, LocalSolver};
use crate::multilevel::{Hierarchy, MultilevelConfig};
use crate::restriction::Restriction;
use crate::Decomposition;

/// The coarse component of a two-or-more-level Schwarz preconditioner:
/// either the classical single-shot Nicolaides solve or a recursive
/// smoothed-aggregation V-cycle.
pub enum CoarseSpace {
    /// One coarse degree of freedom per sub-domain, dense LU solve.
    Nicolaides(NicolaidesCoarseSpace),
    /// Smoothed-aggregation multi-level V-cycle over the global operator.
    Multilevel(Hierarchy),
}

impl CoarseSpace {
    /// Accumulate the coarse correction for residual `r` into `out`.
    ///
    /// The Nicolaides path reports mismatched dimensions as a classified
    /// error; the multilevel V-cycle is infallible once built.
    pub fn apply_into(&self, r: &[f64], out: &mut [f64]) -> sparse::Result<()> {
        match self {
            CoarseSpace::Nicolaides(c) => c.apply_into(r, out),
            CoarseSpace::Multilevel(h) => {
                h.apply_into(r, out);
                Ok(())
            }
        }
    }

    /// Accumulate the coarse correction for a batch of residuals into the
    /// matching outputs.
    ///
    /// The Nicolaides path runs its restriction/prolongation as blocked SpMM
    /// (one sweep over `R₀` per batch); the multilevel V-cycle has no panel
    /// form and falls back to a column loop.  Per-column results are
    /// bit-identical to [`CoarseSpace::apply_into`].
    pub fn apply_batch_into(&self, rs: &[&[f64]], outs: &mut [&mut [f64]]) -> sparse::Result<()> {
        match self {
            CoarseSpace::Nicolaides(c) => c.apply_batch_into(rs, outs),
            CoarseSpace::Multilevel(h) => {
                for (r, out) in rs.iter().zip(outs.iter_mut()) {
                    h.apply_into(r, out);
                }
                Ok(())
            }
        }
    }

    /// Number of levels the coarse component itself spans (1 for the
    /// Nicolaides direct solve).
    pub fn num_levels(&self) -> usize {
        match self {
            CoarseSpace::Nicolaides(_) => 1,
            CoarseSpace::Multilevel(h) => h.num_levels(),
        }
    }
}

/// Reusable per-sub-domain buffers for one preconditioner application.
struct LocalScratch {
    /// Restricted residual `Rᵢ r`.
    rhs: Vec<f64>,
    /// Local solution `(Rᵢ A Rᵢᵀ)⁻¹ Rᵢ r`.
    sol: Vec<f64>,
    /// Solver-internal work vector (permuted intermediate).
    work: Vec<f64>,
    /// Column-interleaved `num_local × b` solution panel of the batched
    /// apply (empty until the first `apply_batch`).
    sol_b: Vec<f64>,
}

impl LocalScratch {
    fn new(dim: usize) -> TrackedMutex<Self> {
        TrackedMutex::new(
            LocalScratch {
                rhs: vec![0.0; dim],
                sol: vec![0.0; dim],
                work: Vec::new(),
                sol_b: Vec::new(),
            },
            "ddm::asm::LocalScratch",
        )
    }
}

/// Whether the preconditioner includes the coarse-space correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmLevel {
    /// One-level method: local solves only.
    OneLevel,
    /// Two-level method: local solves plus the Nicolaides coarse correction.
    TwoLevel,
    /// Local solves plus a smoothed-aggregation multi-level V-cycle (with
    /// the default [`MultilevelConfig`]; use
    /// [`AdditiveSchwarz::with_multilevel`] for a custom one).
    Multilevel,
}

/// The Additive Schwarz preconditioner with exact local solvers.
pub struct AdditiveSchwarz {
    restrictions: Vec<Restriction>,
    local_solvers: Vec<CholeskyLocalSolver>,
    coarse: Option<CoarseSpace>,
    scratch: Vec<TrackedMutex<LocalScratch>>,
    /// Serialises whole `apply` calls: the scratch buffers span the parallel
    /// fill and the sequential glue, so two concurrent `apply`s on the same
    /// preconditioner would otherwise interleave and corrupt each other.
    apply_guard: TrackedMutex<()>,
    num_global: usize,
    /// Reported by `Preconditioner::name` ("ddm-lu-1level", "ddm-lu-2level"
    /// or "ddm-lu-ml<levels>").
    name: String,
    /// Number of `apply` calls so far (≈ the outer iteration index).
    applies: AtomicU64,
    /// Classified local-/coarse-solve errors, surfaced via `collect_faults`.
    faults: TrackedMutex<FaultLog>,
}

impl AdditiveSchwarz {
    /// Build the preconditioner from a global matrix and overlapping
    /// sub-domain index sets.
    pub fn new(
        matrix: &CsrMatrix,
        subdomains: Vec<Vec<usize>>,
        level: AsmLevel,
    ) -> sparse::Result<Self> {
        let decomp = Decomposition::new(matrix, subdomains);
        Self::from_decomposition(matrix, decomp, level)
    }

    /// Build with a smoothed-aggregation multi-level coarse component using
    /// an explicit [`MultilevelConfig`].
    pub fn with_multilevel(
        matrix: &CsrMatrix,
        subdomains: Vec<Vec<usize>>,
        config: &MultilevelConfig,
    ) -> sparse::Result<Self> {
        let decomp = Decomposition::new(matrix, subdomains);
        Self::from_decomposition_multilevel(matrix, decomp, config)
    }

    /// [`AdditiveSchwarz::from_decomposition`] with a multi-level coarse
    /// component built from `config`.
    pub fn from_decomposition_multilevel(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        config: &MultilevelConfig,
    ) -> sparse::Result<Self> {
        let hierarchy = Hierarchy::build(matrix, config)?;
        Self::assemble(matrix, decomposition, Some(CoarseSpace::Multilevel(hierarchy)))
    }

    /// Build from an existing decomposition with an explicitly constructed
    /// coarse component (or none).  This is the injection point for custom
    /// hierarchies — e.g. the bit-exact
    /// [`Hierarchy::two_level_nicolaides`] pinning configuration.
    pub fn from_decomposition_with_coarse(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        coarse: Option<CoarseSpace>,
    ) -> sparse::Result<Self> {
        Self::assemble(matrix, decomposition, coarse)
    }

    /// Build from an existing decomposition (lets callers reuse the local
    /// matrices, e.g. to also train a GNN on them).
    pub fn from_decomposition(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        level: AsmLevel,
    ) -> sparse::Result<Self> {
        let coarse = match level {
            AsmLevel::OneLevel => None,
            AsmLevel::TwoLevel => Some(CoarseSpace::Nicolaides(NicolaidesCoarseSpace::new(
                matrix,
                &decomposition.restrictions,
            )?)),
            AsmLevel::Multilevel => Some(CoarseSpace::Multilevel(Hierarchy::build(
                matrix,
                &MultilevelConfig::default(),
            )?)),
        };
        Self::assemble(matrix, decomposition, coarse)
    }

    fn assemble(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        coarse: Option<CoarseSpace>,
    ) -> sparse::Result<Self> {
        let Decomposition { restrictions, local_matrices, .. } = decomposition;
        let local_solvers = factor_all_cholesky(&local_matrices)?;
        let scratch = restrictions.iter().map(|r| LocalScratch::new(r.num_local())).collect();
        let name = match &coarse {
            None => "ddm-lu-1level".to_string(),
            Some(CoarseSpace::Nicolaides(_)) => "ddm-lu-2level".to_string(),
            Some(CoarseSpace::Multilevel(h)) => format!("ddm-lu-ml{}", h.num_levels()),
        };
        Ok(AdditiveSchwarz {
            restrictions,
            local_solvers,
            coarse,
            scratch,
            apply_guard: TrackedMutex::new((), "ddm::asm::AdditiveSchwarz::apply_guard"),
            num_global: matrix.nrows(),
            name,
            applies: AtomicU64::new(0),
            // Commutative: the fault log is append-only inside parallel
            // sections and every aggregation over it is order-insensitive.
            faults: TrackedMutex::new_commutative(
                FaultLog::new(),
                "ddm::asm::AdditiveSchwarz::faults",
                "append-only fault log; aggregation queries are order-insensitive",
            ),
        })
    }

    /// Number of sub-domains.
    pub fn num_subdomains(&self) -> usize {
        self.restrictions.len()
    }

    /// Whether the coarse correction is active.
    pub fn has_coarse_space(&self) -> bool {
        self.coarse.is_some()
    }

    /// The coarse component, if any.
    pub fn coarse_space(&self) -> Option<&CoarseSpace> {
        self.coarse.as_ref()
    }
}

impl Preconditioner for AdditiveSchwarz {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.num_global);
        debug_assert_eq!(z.len(), self.num_global);
        let _exclusive = self.apply_guard.lock();
        let apply_index = self.applies.fetch_add(1, Ordering::SeqCst);

        // Local corrections, computed in parallel into per-sub-domain scratch
        // buffers (never contended: each index is touched by exactly one
        // chunk, the Mutex only satisfies `&self`).  A failed local solve
        // zeroes its contribution and is recorded as a classified fault
        // instead of panicking the worker — the remaining sub-domains (and
        // the coarse correction) still produce a usable preconditioner.
        (0..self.restrictions.len()).into_par_iter().for_each(|i| {
            let mut guard = self.scratch[i].lock();
            let LocalScratch { rhs, sol, work, .. } = &mut *guard;
            self.restrictions[i].restrict_into(r, rhs);
            if let Err(e) = self.local_solvers[i].solve_into(rhs, work, sol) {
                for v in sol.iter_mut() {
                    *v = 0.0;
                }
                self.faults.lock().record(FaultEvent::new(
                    FaultKind::NumericalError,
                    apply_index,
                    &self.name,
                    format!("local solve on sub-domain {i} failed: {e}"),
                ));
            }
        });

        // Accumulate: z = Σ Rᵢᵀ vᵢ (+ coarse correction), sequentially in
        // sub-domain order for thread-count-independent rounding.
        for zi in z.iter_mut() {
            *zi = 0.0;
        }
        for (restriction, scratch) in self.restrictions.iter().zip(self.scratch.iter()) {
            restriction.extend_add(&scratch.lock().sol, z);
        }
        if let Some(coarse) = &self.coarse {
            if let Err(e) = coarse.apply_into(r, z) {
                // Skip the coarse contribution; the local corrections alone
                // are still a valid (one-level) preconditioner.
                self.faults.lock().record(FaultEvent::new(
                    FaultKind::NumericalError,
                    apply_index,
                    &self.name,
                    format!("coarse correction failed: {e}"),
                ));
            }
        }
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        let b = rs.len();
        debug_assert!(rs.iter().all(|r| r.len() == self.num_global));
        debug_assert!(zs.iter().all(|z| z.len() == self.num_global));
        let _exclusive = self.apply_guard.lock();
        let apply_index = self.applies.fetch_add(1, Ordering::SeqCst);

        // Batched local solves: each sub-domain factors stays cache-hot
        // across its b back-substitutions under a single lock acquisition.
        // Every column goes through the same contiguous rhs/sol buffers and
        // operation order as the unbatched apply, then scatters into the
        // column-interleaved panel.
        (0..self.restrictions.len()).into_par_iter().for_each(|i| {
            let mut guard = self.scratch[i].lock();
            let LocalScratch { rhs, sol, work, sol_b } = &mut *guard;
            let nl = rhs.len();
            sol_b.resize(nl * b, 0.0);
            for (c, r) in rs.iter().enumerate() {
                self.restrictions[i].restrict_into(r, rhs);
                if let Err(e) = self.local_solvers[i].solve_into(rhs, work, sol) {
                    for v in sol.iter_mut() {
                        *v = 0.0;
                    }
                    self.faults.lock().record(FaultEvent::new(
                        FaultKind::NumericalError,
                        apply_index,
                        &self.name,
                        format!("local solve on sub-domain {i} failed in batch column {c}: {e}"),
                    ));
                }
                for (j, &v) in sol.iter().enumerate() {
                    sol_b[j * b + c] = v;
                }
            }
        });

        // Per-column gluing in sub-domain order (thread-count independent),
        // then the coarse correction as one blocked SpMM over the batch.
        for z in zs.iter_mut() {
            for zi in z.iter_mut() {
                *zi = 0.0;
            }
        }
        for (restriction, scratch) in self.restrictions.iter().zip(self.scratch.iter()) {
            let guard = scratch.lock();
            for (c, z) in zs.iter_mut().enumerate() {
                restriction.extend_add_scaled_strided(1.0, &guard.sol_b, b, c, z);
            }
        }
        if let Some(coarse) = &self.coarse {
            if let Err(e) = coarse.apply_batch_into(rs, zs) {
                self.faults.lock().record(FaultEvent::new(
                    FaultKind::NumericalError,
                    apply_index,
                    &self.name,
                    format!("batched coarse correction failed: {e}"),
                ));
            }
        }
    }

    fn dim(&self) -> usize {
        self.num_global
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn collect_faults(&self, into: &mut FaultLog) {
        into.merge(self.faults.lock().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fixture;
    use krylov::{conjugate_gradient, preconditioned_conjugate_gradient, SolverOptions};

    #[test]
    fn batched_apply_is_bit_identical_per_column() {
        // Exercises the batched local solves and the blocked-SpMM Nicolaides
        // coarse path against the unbatched apply, column by column.
        let fx = fixture(900, 250, 2);
        let n = fx.problem.num_unknowns();
        for level in [AsmLevel::OneLevel, AsmLevel::TwoLevel] {
            let asm =
                AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), level).unwrap();
            for b in [1usize, 3, 4] {
                let rhs: Vec<Vec<f64>> = (0..b)
                    .map(|c| {
                        (0..n)
                            .map(|i| ((i * (c + 2)) % 9) as f64 * 0.4 - 1.3 + 0.05 * c as f64)
                            .collect()
                    })
                    .collect();
                let r_refs: Vec<&[f64]> = rhs.iter().map(|r| r.as_slice()).collect();
                let mut zs: Vec<Vec<f64>> = vec![vec![0.0; n]; b];
                {
                    let mut z_refs: Vec<&mut [f64]> =
                        zs.iter_mut().map(|z| z.as_mut_slice()).collect();
                    asm.apply_batch(&r_refs, &mut z_refs);
                }
                let mut expected = vec![0.0; n];
                for (c, r) in rhs.iter().enumerate() {
                    asm.apply(r, &mut expected);
                    assert_eq!(
                        zs[c], expected,
                        "{level:?} b={b} column {c}: batched ASM apply diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn asm_preconditioned_pcg_converges_and_beats_cg() {
        let fx = fixture(1500, 400, 2);
        let opts = SolverOptions::with_tolerance(1e-6);
        let plain = conjugate_gradient(&fx.problem.matrix, &fx.problem.rhs, None, &opts);
        let asm =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        let pcg = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &asm,
            &opts,
        );
        assert!(plain.stats.converged());
        assert!(pcg.stats.converged());
        assert!(
            pcg.stats.iterations < plain.stats.iterations / 2,
            "ASM {} vs CG {}",
            pcg.stats.iterations,
            plain.stats.iterations
        );
        // Both compute the same solution.
        assert!(sparse::vector::relative_error(&pcg.x, &plain.x) < 1e-4);
    }

    #[test]
    fn two_level_beats_or_matches_one_level() {
        // With many sub-domains the one-level method loses scalability and the
        // coarse correction pays off (the effect is weak for small K).
        let fx = fixture(2500, 150, 2);
        let opts = SolverOptions::with_tolerance(1e-6);
        let one =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::OneLevel)
                .unwrap();
        let two =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        assert!(!one.has_coarse_space());
        assert!(two.has_coarse_space());
        let r1 = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &one,
            &opts,
        );
        let r2 = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &two,
            &opts,
        );
        assert!(r1.stats.converged() && r2.stats.converged());
        assert!(
            r2.stats.iterations <= r1.stats.iterations,
            "two-level {} vs one-level {}",
            r2.stats.iterations,
            r1.stats.iterations
        );
    }

    #[test]
    fn asm_application_is_symmetric() {
        // The ASM operator with exact local solves is symmetric; PCG theory
        // relies on it.
        let fx = fixture(700, 250, 2);
        let asm =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        let n = fx.problem.num_unknowns();
        let y: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) * 0.4).collect();
        let mut my = vec![0.0; n];
        let mut mw = vec![0.0; n];
        asm.apply(&y, &mut my);
        asm.apply(&w, &mut mw);
        let lhs = sparse::vector::dot(&w, &my);
        let rhs = sparse::vector::dot(&y, &mw);
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn larger_overlap_reduces_iterations() {
        // Paper Table I: overlap 4 converges in fewer iterations than overlap 2.
        let fx2 = fixture(1500, 400, 2);
        let fx4_subdomains = {
            // Rebuild the same mesh partition with overlap 4 by regenerating
            // the fixture with identical seeds.
            let fx4 = fixture(1500, 400, 4);
            // Both fixtures are generated from the same deterministic seeds, so
            // the underlying problems match.
            assert_eq!(fx4.problem.num_unknowns(), fx2.problem.num_unknowns());
            fx4.subdomains
        };
        let opts = SolverOptions::with_tolerance(1e-6);
        let asm2 =
            AdditiveSchwarz::new(&fx2.problem.matrix, fx2.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        let asm4 =
            AdditiveSchwarz::new(&fx2.problem.matrix, fx4_subdomains, AsmLevel::TwoLevel).unwrap();
        let r2 = preconditioned_conjugate_gradient(
            &fx2.problem.matrix,
            &fx2.problem.rhs,
            None,
            &asm2,
            &opts,
        );
        let r4 = preconditioned_conjugate_gradient(
            &fx2.problem.matrix,
            &fx2.problem.rhs,
            None,
            &asm4,
            &opts,
        );
        assert!(r2.stats.converged() && r4.stats.converged());
        assert!(
            r4.stats.iterations <= r2.stats.iterations,
            "overlap 4: {} vs overlap 2: {}",
            r4.stats.iterations,
            r2.stats.iterations
        );
    }

    #[test]
    fn multilevel_coarse_component_converges_and_is_symmetric() {
        let fx = fixture(2500, 150, 2);
        let opts = SolverOptions::with_tolerance(1e-6);
        let ml = AdditiveSchwarz::with_multilevel(
            &fx.problem.matrix,
            fx.subdomains.clone(),
            &crate::MultilevelConfig { coarsest_max_size: 100, ..Default::default() },
        )
        .unwrap();
        assert!(ml.has_coarse_space());
        let levels = ml.coarse_space().unwrap().num_levels();
        assert!(levels >= 2, "hierarchy should have coarsened, got {levels} levels");
        assert_eq!(ml.name(), format!("ddm-lu-ml{levels}"));

        // Symmetry (PCG requirement).
        let n = fx.problem.num_unknowns();
        let y: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
        let w: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) * 0.4).collect();
        let mut my = vec![0.0; n];
        let mut mw = vec![0.0; n];
        ml.apply(&y, &mut my);
        ml.apply(&w, &mut mw);
        let lhs = sparse::vector::dot(&w, &my);
        let rhs = sparse::vector::dot(&y, &mw);
        assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));

        // Converges at least as fast as the Nicolaides two-level method.
        let two =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        let r_ml = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &ml,
            &opts,
        );
        let r_two = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &two,
            &opts,
        );
        assert!(r_ml.stats.converged() && r_two.stats.converged());
        assert!(
            r_ml.stats.iterations <= r_two.stats.iterations + 2,
            "multilevel {} vs two-level {}",
            r_ml.stats.iterations,
            r_two.stats.iterations
        );
        assert!(sparse::vector::relative_error(&r_ml.x, &r_two.x) < 1e-4);
    }

    #[test]
    fn asm_level_multilevel_uses_default_config() {
        let fx = fixture(1200, 300, 2);
        let ml =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::Multilevel)
                .unwrap();
        assert!(ml.has_coarse_space());
        assert!(ml.name().starts_with("ddm-lu-ml"));
        let opts = SolverOptions::with_tolerance(1e-6);
        let r = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &ml,
            &opts,
        );
        assert!(r.stats.converged());
    }

    #[test]
    fn preconditioner_name_reflects_level() {
        let fx = fixture(500, 200, 2);
        let one =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::OneLevel)
                .unwrap();
        let two =
            AdditiveSchwarz::new(&fx.problem.matrix, fx.subdomains.clone(), AsmLevel::TwoLevel)
                .unwrap();
        assert_eq!(one.name(), "ddm-lu-1level");
        assert_eq!(two.name(), "ddm-lu-2level");
        assert_eq!(one.dim(), fx.problem.num_unknowns());
        assert!(one.num_subdomains() >= 2);
    }
}
