//! Boolean restriction/extension operators `Rᵢ` and `Rᵢᵀ`.
//!
//! A restriction is fully described by the sorted list of global node indices
//! of its sub-domain; applying `Rᵢ` gathers those entries, applying `Rᵢᵀ`
//! scatters local values back (adding, because the Schwarz sum composes
//! contributions from overlapping sub-domains).

/// The restriction operator of one sub-domain.
#[derive(Debug, Clone)]
pub struct Restriction {
    indices: Vec<usize>,
    num_global: usize,
}

impl Restriction {
    /// Build from the (sorted, unique) global indices of the sub-domain.
    pub fn new(indices: Vec<usize>, num_global: usize) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must be sorted/unique");
        debug_assert!(indices.iter().all(|&i| i < num_global));
        Restriction { indices, num_global }
    }

    /// Number of local (sub-domain) degrees of freedom.
    pub fn num_local(&self) -> usize {
        self.indices.len()
    }

    /// Number of global degrees of freedom.
    pub fn num_global(&self) -> usize {
        self.num_global
    }

    /// The global indices of the sub-domain nodes.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Apply `Rᵢ`: gather the sub-domain entries of a global vector.
    pub fn restrict(&self, global: &[f64]) -> Vec<f64> {
        debug_assert_eq!(global.len(), self.num_global);
        self.indices.iter().map(|&g| global[g]).collect()
    }

    /// Apply `Rᵢ` into a preallocated local buffer.
    pub fn restrict_into(&self, global: &[f64], local: &mut [f64]) {
        debug_assert_eq!(global.len(), self.num_global);
        debug_assert_eq!(local.len(), self.indices.len());
        for (l, &g) in local.iter_mut().zip(self.indices.iter()) {
            *l = global[g];
        }
    }

    /// Apply `Rᵢᵀ` and accumulate: `global[gᵢ] += local[i]`.
    pub fn extend_add(&self, local: &[f64], global: &mut [f64]) {
        debug_assert_eq!(global.len(), self.num_global);
        debug_assert_eq!(local.len(), self.indices.len());
        for (l, &g) in local.iter().zip(self.indices.iter()) {
            global[g] += l;
        }
    }

    /// Apply `Rᵢᵀ` scaled by `alpha`: `global[gᵢ] += alpha * local[i]`.
    pub fn extend_add_scaled(&self, alpha: f64, local: &[f64], global: &mut [f64]) {
        debug_assert_eq!(global.len(), self.num_global);
        debug_assert_eq!(local.len(), self.indices.len());
        for (l, &g) in local.iter().zip(self.indices.iter()) {
            global[g] += alpha * l;
        }
    }

    /// Apply `Rᵢ` into column `c` of a column-interleaved `num_local × b`
    /// panel: `panel[j*b + c] = global[gⱼ]`.
    pub fn restrict_into_strided(&self, global: &[f64], panel: &mut [f64], b: usize, c: usize) {
        debug_assert_eq!(global.len(), self.num_global);
        debug_assert_eq!(panel.len(), self.indices.len() * b);
        debug_assert!(c < b);
        for (j, &g) in self.indices.iter().enumerate() {
            panel[j * b + c] = global[g];
        }
    }

    /// Apply `Rᵢᵀ` scaled by `alpha` from column `c` of a column-interleaved
    /// `num_local × b` panel: `global[gⱼ] += alpha * panel[j*b + c]`.
    ///
    /// Each accumulation is the same scalar mul+add as
    /// [`Restriction::extend_add_scaled`] on the gathered column, so the
    /// batched gluing stays bit-identical to the unbatched one.
    pub fn extend_add_scaled_strided(
        &self,
        alpha: f64,
        panel: &[f64],
        b: usize,
        c: usize,
        global: &mut [f64],
    ) {
        debug_assert_eq!(global.len(), self.num_global);
        debug_assert_eq!(panel.len(), self.indices.len() * b);
        debug_assert!(c < b);
        for (j, &g) in self.indices.iter().enumerate() {
            global[g] += alpha * panel[j * b + c];
        }
    }
}

/// Multiplicity of every global node across a set of restrictions (how many
/// sub-domains contain it).  Used to build partition-of-unity weights for the
/// coarse space.
pub fn node_multiplicity(restrictions: &[Restriction], num_global: usize) -> Vec<usize> {
    let mut mult = vec![0usize; num_global];
    for r in restrictions {
        for &g in r.indices() {
            mult[g] += 1;
        }
    }
    mult
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restrict_and_extend_roundtrip() {
        let r = Restriction::new(vec![1, 3, 4], 6);
        assert_eq!(r.num_local(), 3);
        assert_eq!(r.num_global(), 6);
        let global = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let local = r.restrict(&global);
        assert_eq!(local, vec![11.0, 13.0, 14.0]);
        let mut out = vec![0.0; 6];
        r.extend_add(&local, &mut out);
        assert_eq!(out, vec![0.0, 11.0, 0.0, 13.0, 14.0, 0.0]);
        let mut buffer = vec![0.0; 3];
        r.restrict_into(&global, &mut buffer);
        assert_eq!(buffer, local);
    }

    #[test]
    fn extend_add_accumulates_overlap() {
        let r1 = Restriction::new(vec![0, 1, 2], 4);
        let r2 = Restriction::new(vec![1, 2, 3], 4);
        let mut global = vec![0.0; 4];
        r1.extend_add(&[1.0, 1.0, 1.0], &mut global);
        r2.extend_add(&[1.0, 1.0, 1.0], &mut global);
        assert_eq!(global, vec![1.0, 2.0, 2.0, 1.0]);
        r1.extend_add_scaled(2.0, &[1.0, 1.0, 1.0], &mut global);
        assert_eq!(global, vec![3.0, 4.0, 4.0, 1.0]);
    }

    #[test]
    fn strided_panel_variants_match_contiguous_ones() {
        let r = Restriction::new(vec![1, 3, 4], 6);
        let global = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let b = 3;
        let mut panel = vec![0.0; r.num_local() * b];
        for c in 0..b {
            r.restrict_into_strided(&global, &mut panel, b, c);
        }
        let contiguous = r.restrict(&global);
        for c in 0..b {
            for j in 0..r.num_local() {
                assert_eq!(panel[j * b + c], contiguous[j]);
            }
        }
        let mut out_strided = vec![0.5; 6];
        let mut out_plain = vec![0.5; 6];
        r.extend_add_scaled_strided(1.75, &panel, b, 1, &mut out_strided);
        r.extend_add_scaled(1.75, &contiguous, &mut out_plain);
        assert_eq!(out_strided, out_plain);
    }

    #[test]
    fn multiplicity_counts_overlaps() {
        let r1 = Restriction::new(vec![0, 1, 2], 5);
        let r2 = Restriction::new(vec![2, 3], 5);
        let mult = node_multiplicity(&[r1, r2], 5);
        assert_eq!(mult, vec![1, 1, 2, 1, 0]);
    }

    #[test]
    fn restriction_matches_csr_submatrix_semantics() {
        // R A Rᵀ of the restriction must equal principal_submatrix on the CSR side:
        // verified through the action on vectors.
        use sparse::CooMatrix;
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..3 {
            coo.push(i, i + 1, -1.0).unwrap();
            coo.push(i + 1, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let idx = vec![1, 2];
        let r = Restriction::new(idx.clone(), 4);
        let a_local = a.principal_submatrix(&idx);
        // For any local x: a_local x == R A Rᵀ x
        let x_local = vec![1.0, -2.0];
        let mut x_global = vec![0.0; 4];
        r.extend_add(&x_local, &mut x_global);
        let ax = a.spmv(&x_global);
        let expected = r.restrict(&ax);
        // expected includes couplings to nodes outside the sub-domain, which are
        // zero in x_global, so it equals the local product.
        assert_eq!(a_local.spmv(&x_local), expected);
    }
}
