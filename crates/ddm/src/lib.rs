//! Additive Schwarz domain decomposition (Section II-A of the paper).
//!
//! The two-level Additive Schwarz Method (ASM) preconditioner is
//!
//! ```text
//! M⁻¹_{ASM,2} = R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀  +  Σᵢ Rᵢᵀ (Rᵢ A Rᵢᵀ)⁻¹ Rᵢ
//! ```
//!
//! where the `Rᵢ` are boolean restrictions onto overlapping sub-domains and
//! `R₀` spans the Nicolaides coarse space.  This crate provides:
//!
//! * [`restriction::Restriction`] — the `Rᵢ` operators (index lists),
//! * [`local::LocalSolver`] — the exact sub-domain solver abstraction (sparse
//!   Cholesky by default; this is the "LU" of the paper's DDM-LU baseline),
//! * [`coarse::NicolaidesCoarseSpace`] — the partition-of-unity coarse space
//!   and its dense LU factorisation,
//! * [`multilevel::Hierarchy`] — the recursive smoothed-aggregation AMG
//!   hierarchy whose V-cycle serves as a stronger (3+ level) coarse
//!   component,
//! * [`asm::AdditiveSchwarz`] — the one- and two-level preconditioner,
//!   implementing [`krylov::Preconditioner`] so it plugs straight into PCG.
//!
//! The GNN preconditioner of the paper (`ddm-gnn` crate) reuses everything
//! here except the local solver, which it replaces with DSS inference.

// Library code must not panic via unwrap — `GuardedPreconditioner` treats
// every Schwarz/coarse apply as panic-free (detlint enforces the wider
// contract; clippy carries this slice).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod asm;
pub mod coarse;
pub mod local;
pub mod multilevel;
pub mod restriction;

pub use asm::{AdditiveSchwarz, AsmLevel, CoarseSpace};
pub use coarse::NicolaidesCoarseSpace;
pub use local::{CholeskyLocalSolver, DenseLuLocalSolver, LocalSolver};
pub use multilevel::{Hierarchy, MultilevelConfig, SmootherKind, SmootherPrecision};
pub use restriction::Restriction;

use sparse::CsrMatrix;

/// The decomposition of a global problem: overlapping sub-domain index sets
/// plus the restriction operators and local matrices derived from them.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// One sorted global-node list per sub-domain.
    pub subdomains: Vec<Vec<usize>>,
    /// Restriction operators (one per sub-domain).
    pub restrictions: Vec<Restriction>,
    /// Local operators `Rᵢ A Rᵢᵀ`.
    pub local_matrices: Vec<CsrMatrix>,
}

impl Decomposition {
    /// Build a decomposition from the global matrix and overlapping
    /// sub-domain node sets (as produced by
    /// [`partition::partition_mesh_with_overlap`]).
    pub fn new(matrix: &CsrMatrix, subdomains: Vec<Vec<usize>>) -> Self {
        let n = matrix.nrows();
        let restrictions: Vec<Restriction> =
            subdomains.iter().map(|sd| Restriction::new(sd.clone(), n)).collect();
        let local_matrices: Vec<CsrMatrix> =
            subdomains.iter().map(|sd| matrix.principal_submatrix(sd)).collect();
        Decomposition { subdomains, restrictions, local_matrices }
    }

    /// Number of sub-domains.
    pub fn num_subdomains(&self) -> usize {
        self.subdomains.len()
    }

    /// Global problem size.
    pub fn num_global(&self) -> usize {
        self.restrictions.first().map(|r| r.num_global()).unwrap_or(0)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the ddm tests: a small Poisson problem with a
    //! partition into overlapping sub-domains.
    use fem::PoissonProblem;
    use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain};
    use partition::partition_mesh_with_overlap;

    pub struct Fixture {
        pub problem: PoissonProblem,
        pub subdomains: Vec<Vec<usize>>,
    }

    /// Build a ~`target_nodes` Poisson problem split into sub-domains of
    /// ~`target_sub` nodes with the given overlap.
    pub fn fixture(target_nodes: usize, target_sub: usize, overlap: usize) -> Fixture {
        let domain = RandomBlobDomain::generate(17, 20, 1.0);
        let h = meshgen::generator::element_size_for_target_nodes(&domain, target_nodes);
        let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h));
        let subdomains = partition_mesh_with_overlap(&mesh, target_sub, overlap, 0);
        let problem = PoissonProblem::with_random_data(mesh, 5);
        Fixture { problem, subdomains }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::fixture;

    #[test]
    fn decomposition_shapes_are_consistent() {
        let fx = fixture(900, 250, 2);
        let decomp = Decomposition::new(&fx.problem.matrix, fx.subdomains.clone());
        assert_eq!(decomp.num_subdomains(), fx.subdomains.len());
        assert_eq!(decomp.num_global(), fx.problem.num_unknowns());
        for (i, sd) in fx.subdomains.iter().enumerate() {
            assert_eq!(decomp.local_matrices[i].nrows(), sd.len());
            assert_eq!(decomp.restrictions[i].num_local(), sd.len());
            // Local matrices inherit symmetry from the global one.
            assert!(decomp.local_matrices[i].is_symmetric(1e-10));
        }
    }
}
