//! Exact local (sub-domain) solvers.
//!
//! The paper's DDM-LU baseline solves every local problem `Rᵢ A Rᵢᵀ vᵢ = Rᵢ r`
//! with a sparse direct factorisation (Eigen's sparse LU in the original C++
//! implementation).  The sub-domain matrices here are SPD Dirichlet
//! Laplacians, so the default exact solver is the RCM + skyline Cholesky from
//! the `sparse` crate, with a dense-LU variant kept for testing and for
//! matrices that are not numerically SPD.

use sparse::{CsrMatrix, LuFactor, SkylineCholesky, SparseError};

/// A factorised local operator that can solve `A_local x = rhs` repeatedly.
///
/// Both entry points return `sparse::Result` so a mismatched right-hand side
/// is a classified error the Schwarz glue can route into fault
/// classification — not a panic that takes the whole solve down.
pub trait LocalSolver: Send + Sync {
    /// Solve for one right-hand side.
    fn solve(&self, rhs: &[f64]) -> sparse::Result<Vec<f64>>;

    /// Allocation-free solve: `work` is a caller-owned scratch buffer that is
    /// resized on first use and reused across calls, `out` receives the
    /// solution.  The default implementation falls back to [`Self::solve`].
    fn solve_into(&self, rhs: &[f64], work: &mut Vec<f64>, out: &mut [f64]) -> sparse::Result<()> {
        let _ = work;
        let sol = self.solve(rhs)?;
        if sol.len() != out.len() {
            return Err(SparseError::DimensionMismatch {
                op: "local solve output",
                expected: (out.len(), 1),
                found: (sol.len(), 1),
            });
        }
        out.copy_from_slice(&sol);
        Ok(())
    }

    /// Dimension of the local problem.
    fn dim(&self) -> usize;
}

/// Sparse Cholesky local solver (the default exact solver).
pub struct CholeskyLocalSolver {
    factor: SkylineCholesky,
}

impl CholeskyLocalSolver {
    /// Factor a local SPD matrix.
    pub fn new(matrix: &CsrMatrix) -> sparse::Result<Self> {
        Ok(CholeskyLocalSolver { factor: SkylineCholesky::factor(matrix)? })
    }
}

impl LocalSolver for CholeskyLocalSolver {
    fn solve(&self, rhs: &[f64]) -> sparse::Result<Vec<f64>> {
        self.factor.solve(rhs)
    }

    fn solve_into(&self, rhs: &[f64], work: &mut Vec<f64>, out: &mut [f64]) -> sparse::Result<()> {
        self.factor.solve_scratch(rhs, work, out)
    }

    fn dim(&self) -> usize {
        self.factor.dim()
    }
}

/// Dense LU local solver (fallback / reference).
pub struct DenseLuLocalSolver {
    factor: LuFactor,
}

impl DenseLuLocalSolver {
    /// Factor a local matrix by densifying it.
    pub fn new(matrix: &CsrMatrix) -> sparse::Result<Self> {
        Ok(DenseLuLocalSolver { factor: LuFactor::factor_csr(matrix)? })
    }
}

impl LocalSolver for DenseLuLocalSolver {
    fn solve(&self, rhs: &[f64]) -> sparse::Result<Vec<f64>> {
        self.factor.solve(rhs)
    }

    fn dim(&self) -> usize {
        self.factor.dim()
    }
}

/// Factor every local matrix with the Cholesky solver, in parallel.
pub fn factor_all_cholesky(
    local_matrices: &[CsrMatrix],
) -> sparse::Result<Vec<CholeskyLocalSolver>> {
    use rayon::prelude::*;
    local_matrices.par_iter().map(CholeskyLocalSolver::new).collect::<Result<Vec<_>, _>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CooMatrix;

    fn small_spd(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                coo.push(i + 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solve_into_matches_solve_for_both_solvers() {
        let a = small_spd(30);
        let rhs: Vec<f64> = (0..30).map(|i| ((i * 11) % 7) as f64 - 3.0).collect();
        let chol = CholeskyLocalSolver::new(&a).unwrap();
        let lu = DenseLuLocalSolver::new(&a).unwrap();
        let mut work = Vec::new();
        let mut out = vec![0.0; 30];
        chol.solve_into(&rhs, &mut work, &mut out).unwrap();
        assert_eq!(out, chol.solve(&rhs).unwrap());
        // The default trait implementation (dense LU) also matches.
        lu.solve_into(&rhs, &mut work, &mut out).unwrap();
        assert_eq!(out, lu.solve(&rhs).unwrap());
    }

    #[test]
    fn mismatched_rhs_is_a_classified_error_not_a_panic() {
        let a = small_spd(10);
        let chol = CholeskyLocalSolver::new(&a).unwrap();
        let lu = DenseLuLocalSolver::new(&a).unwrap();
        let bad = vec![1.0; 7];
        assert!(chol.solve(&bad).is_err());
        assert!(lu.solve(&bad).is_err());
        let mut work = Vec::new();
        let mut out = vec![0.0; 10];
        assert!(chol.solve_into(&bad, &mut work, &mut out).is_err());
        assert!(lu.solve_into(&bad, &mut work, &mut out).is_err());
    }

    #[test]
    fn cholesky_and_lu_agree() {
        let a = small_spd(25);
        let chol = CholeskyLocalSolver::new(&a).unwrap();
        let lu = DenseLuLocalSolver::new(&a).unwrap();
        assert_eq!(chol.dim(), 25);
        assert_eq!(lu.dim(), 25);
        let rhs: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let x1 = chol.solve(&rhs).unwrap();
        let x2 = lu.solve(&rhs).unwrap();
        assert!(sparse::vector::relative_error(&x1, &x2) < 1e-10);
        // Verify it is actually a solution.
        let r: Vec<f64> = a.spmv(&x1).iter().zip(rhs.iter()).map(|(ax, b)| b - ax).collect();
        assert!(sparse::vector::norm2(&r) < 1e-10);
    }

    #[test]
    fn parallel_factorization_of_many_locals() {
        let mats: Vec<CsrMatrix> = (5..25).map(small_spd).collect();
        let solvers = factor_all_cholesky(&mats).unwrap();
        assert_eq!(solvers.len(), 20);
        for (solver, mat) in solvers.iter().zip(mats.iter()) {
            let rhs = vec![1.0; mat.nrows()];
            let x = solver.solve(&rhs).unwrap();
            let r: Vec<f64> = mat.spmv(&x).iter().zip(rhs.iter()).map(|(ax, b)| b - ax).collect();
            assert!(sparse::vector::norm2(&r) < 1e-9);
        }
    }

    #[test]
    fn non_spd_local_matrix_is_rejected_by_cholesky() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        assert!(CholeskyLocalSolver::new(&a).is_err());
        // ...but the dense LU fallback handles it.
        let lu = DenseLuLocalSolver::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![2.0, -3.0]);
    }
}
