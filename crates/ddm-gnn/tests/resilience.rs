//! End-to-end fault-injection suite for the fault-tolerant solve supervisor.
//!
//! Every test here uses the *same* problem recipe as the `perf_suite`
//! benchmark harness (`generate_problem(1 + idx, target)`, sub-domains of
//! ~300 nodes with overlap 2, tolerance 1e-6) so the fault-free
//! residual-history hash can be pinned against the committed
//! `BENCH_parallel.json` baselines — the proof that the resilience layer is
//! bit-transparent when nothing goes wrong.
//!
//! The heavy tests are `#[ignore]`d: CI runs them in release via
//! `cargo test --release -- --include-ignored` (the `resilience` job).

use std::sync::Arc;
use std::time::Duration;

use ddm_gnn::{
    build_resilience_tiers, generate_problem, load_pretrained, solve_with_ladder,
    DdmGnnPreconditioner, DegradationLadder, FaultInjectingPreconditioner, FaultKind,
    HybridSolverConfig, InjectedFault, Precision, ResiliencePolicy,
};
use fem::PoissonProblem;
use gnn::DssModel;
use krylov::{preconditioned_conjugate_gradient, Preconditioner, SolveResult, SolverOptions};
use partition::partition_mesh_with_overlap;

/// FNV-1a over the bit patterns of a float sequence — identical to the
/// determinism witness in `perf_suite`, so hashes are comparable with the
/// committed `BENCH_parallel.json`.
fn hash_f64s(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn solve_hash(result: &SolveResult) -> u64 {
    hash_f64s(result.stats.history.norms().iter().copied().chain(result.x.iter().copied()))
}

fn model() -> Arc<DssModel> {
    Arc::new(
        load_pretrained()
            .expect("the pretrained model in assets/ is required for the resilience e2e suite"),
    )
}

/// The perf_suite problem recipe: `idx` 0 is n≈3k, `idx` 1 is n≈9k.
fn problem_and_subdomains(idx: usize, target: usize) -> (PoissonProblem, Vec<Vec<usize>>) {
    let problem = generate_problem(1 + idx as u64, target);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
    (problem, subdomains)
}

fn opts() -> SolverOptions {
    SolverOptions::with_tolerance(1e-6).max_iterations(4000)
}

/// Fault-free reference: plain (unsupervised) DDM-GNN PCG, f64 inference.
fn fault_free(
    problem: &PoissonProblem,
    subdomains: &[Vec<usize>],
    model: &Arc<DssModel>,
) -> SolveResult {
    let precond = DdmGnnPreconditioner::with_precision(
        problem,
        subdomains.to_vec(),
        Arc::clone(model),
        true,
        Precision::F64,
    )
    .expect("DDM-GNN setup failed");
    preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, &opts())
}

/// Inject one fault of each class at apply 10 into the GNN tier of the
/// degradation ladder and require: convergence to tolerance, at most 2× the
/// fault-free iteration count, and a fault log naming the fault kind and the
/// faulted tier.  The process must never abort — a panic escaping the
/// supervisor fails the whole test binary.
fn exercise_all_fault_classes(target: usize, idx: usize) {
    let (problem, subdomains) = problem_and_subdomains(idx, target);
    let model = model();
    let reference = fault_free(&problem, &subdomains, &model);
    assert!(reference.stats.converged(), "fault-free reference did not converge");
    let budget = reference.stats.iterations * 2;

    let stall = Duration::from_millis(1500);
    let cases: [(InjectedFault, FaultKind); 5] = [
        (InjectedFault::Panic, FaultKind::Panic),
        (InjectedFault::NanOutput, FaultKind::NonFinite),
        (InjectedFault::InfOutput, FaultKind::NonFinite),
        (InjectedFault::ZeroOutput, FaultKind::ZeroOutput),
        (InjectedFault::Stall(stall), FaultKind::TimeBudget),
    ];
    let config = HybridSolverConfig::default();
    for (fault, expected_kind) in cases {
        let mut tiers = build_resilience_tiers(&problem, &subdomains, &model, &config)
            .expect("tier setup failed");
        // Wrap the preferred (GNN) tier in the deterministic injector.
        let gnn = tiers.remove(0);
        let faulted_tier_name = format!("inject({})", gnn.name());
        tiers.insert(0, Box::new(FaultInjectingPreconditioner::scheduled(gnn, [(10u64, fault)])));
        let mut policy = ResiliencePolicy::default();
        if matches!(fault, InjectedFault::Stall(_)) {
            // Generous budget: an honest apply at these sizes is well under
            // 250 ms even on a loaded machine; the injected stall is 1.5 s.
            policy.apply_time_budget = Some(Duration::from_millis(250));
        }
        let ladder = DegradationLadder::new(tiers, policy);
        let outcome = solve_with_ladder(&problem, subdomains.len(), ladder, 0.0, &opts());

        assert!(
            outcome.stats.converged(),
            "{fault:?} at n={}: solve did not converge",
            problem.num_unknowns()
        );
        assert!(
            outcome.stats.iterations <= budget,
            "{fault:?} at n={}: {} iterations exceed 2x fault-free ({})",
            problem.num_unknowns(),
            outcome.stats.iterations,
            budget
        );
        let faults = &outcome.stats.faults;
        assert!(
            faults.has_kind(expected_kind),
            "{fault:?}: expected {expected_kind:?} in the log, got {faults:?}"
        );
        let event = faults
            .events()
            .iter()
            .find(|e| e.kind == expected_kind)
            .expect("event present per has_kind");
        assert_eq!(event.tier, faulted_tier_name, "fault attributed to the wrong tier");
        assert_eq!(event.apply_index, 10, "fault attributed to the wrong apply");
        // Every class downgrades off the GNN tier (the stall keeps its valid
        // output but degrades subsequent applies).
        assert!(!faults.degradations().is_empty(), "{fault:?}: no downgrade recorded");
        assert_eq!(faults.final_tier(), Some("ddm-lu-2level"), "{fault:?}: unexpected final tier");
        // The solution still solves the system.
        assert!(
            krylov::true_relative_residual(&problem.matrix, &outcome.x, &problem.rhs) < 1e-5,
            "{fault:?}: true residual too large"
        );
    }
}

#[test]
#[ignore = "heavy e2e (full PCG solves): run in release via --include-ignored"]
fn all_fault_classes_recover_at_n3k() {
    exercise_all_fault_classes(3000, 0);
}

#[test]
#[ignore = "heavy e2e (full PCG solves): run in release via --include-ignored"]
fn all_fault_classes_recover_at_n9k() {
    exercise_all_fault_classes(9000, 1);
}

/// Extract the pinned `pcg-ddm-gnn-2level` hash for problem `idx` from the
/// committed `BENCH_parallel.json` (the determinism gate guarantees the hash
/// is identical at every recorded thread count, so the first entry suffices).
fn pinned_hash(idx: usize) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let json = std::fs::read_to_string(path).expect("committed BENCH_parallel.json missing");
    let needle = format!("\"solver\": \"pcg-ddm-gnn-2level\", \"idx\": {idx},");
    let at = json.find(&needle).expect("baseline entry missing from BENCH_parallel.json");
    let rest = &json[at..];
    let h = rest.find("\"hash\": \"").expect("hash field missing") + "\"hash\": \"".len();
    rest[h..h + 16].to_string()
}

/// The fault-free residual-history hash must be bit-identical to the
/// committed PR-6 baseline — both for the plain preconditioner and for the
/// full degradation ladder (the supervisor's guards only *read* `r`/`z`, so
/// a healthy solve must be untouched).  CI runs this at 1 and 4 rayon
/// threads; the committed baseline was verified at 1/2/4.
#[test]
#[ignore = "heavy e2e (full PCG solves): run in release via --include-ignored"]
fn fault_free_hash_matches_committed_baseline() {
    let model = model();
    for (idx, target) in [(0usize, 3000usize), (1, 9000)] {
        let (problem, subdomains) = problem_and_subdomains(idx, target);
        let plain = fault_free(&problem, &subdomains, &model);
        assert!(plain.stats.converged());
        let expected = pinned_hash(idx);
        assert_eq!(
            format!("{:016x}", solve_hash(&plain)),
            expected,
            "plain DDM-GNN hash drifted from the committed baseline (idx {idx})"
        );

        let config = HybridSolverConfig::default();
        let tiers = build_resilience_tiers(&problem, &subdomains, &model, &config)
            .expect("tier setup failed");
        let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
        let supervised = solve_with_ladder(&problem, subdomains.len(), ladder, 0.0, &opts());
        assert!(supervised.stats.converged());
        assert!(!supervised.stats.degraded(), "fault-free supervised solve logged faults");
        assert_eq!(
            format!(
                "{:016x}",
                hash_f64s(
                    supervised
                        .stats
                        .history
                        .norms()
                        .iter()
                        .copied()
                        .chain(supervised.x.iter().copied())
                )
            ),
            expected,
            "supervised fault-free hash drifted from the committed baseline (idx {idx})"
        );
    }
}

/// A seeded random schedule is bit-reproducible: two ladders built from the
/// same seed produce identical fault logs and identical solves.
#[test]
#[ignore = "heavy e2e (full PCG solves): run in release via --include-ignored"]
fn seeded_random_fault_schedule_reproduces() {
    let (problem, subdomains) = problem_and_subdomains(0, 3000);
    let model = model();
    let config = HybridSolverConfig::default();
    let menu = [InjectedFault::Panic, InjectedFault::NanOutput, InjectedFault::ZeroOutput];
    let run = || {
        let mut tiers = build_resilience_tiers(&problem, &subdomains, &model, &config)
            .expect("tier setup failed");
        let gnn = tiers.remove(0);
        let injector = FaultInjectingPreconditioner::random(gnn, 42, 2, 30, &menu);
        let schedule: Vec<_> = injector.schedule().iter().map(|(k, v)| (*k, *v)).collect();
        tiers.insert(0, Box::new(injector));
        let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
        let outcome = solve_with_ladder(&problem, subdomains.len(), ladder, 0.0, &opts());
        (schedule, outcome)
    };
    let (schedule_a, a) = run();
    let (schedule_b, b) = run();
    assert_eq!(schedule_a, schedule_b, "seeded schedule is not reproducible");
    assert!(a.stats.converged() && b.stats.converged());
    assert_eq!(a.x, b.x, "seeded faulted solves diverged");
    assert_eq!(a.stats.iterations, b.stats.iterations);
    assert_eq!(a.stats.faults.events().len(), b.stats.faults.events().len());
}
