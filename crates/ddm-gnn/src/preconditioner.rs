//! The DDM-GNN preconditioner (Section III-A of the paper).
//!
//! One application proceeds in the three steps of the paper:
//!
//! 1. **Coarse problem** — `r_c = R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀ r` by dense LU on the
//!    Nicolaides coarse space (Eq. 13),
//! 2. **Local problems** — every sub-domain residual is restricted,
//!    normalised to unit norm and solved by one DSS inference; all sub-domains
//!    are processed concurrently (Eq. 14–15).  The normalisation is the
//!    paper's answer to vanishing residual magnitudes late in the PCG
//!    iteration: the network always sees unit-norm inputs,
//! 3. **Gluing** — `z = r_c + Σᵢ Rᵢᵀ ‖Rᵢ r‖ r̃ᵢ` (Eq. 16).

use ddm::{
    CoarseSpace, Decomposition, Hierarchy, MultilevelConfig, NicolaidesCoarseSpace, Restriction,
    SmootherPrecision,
};
use fem::PoissonProblem;
use gnn::{
    dataset::build_local_graphs, DssModel, InferScratch, InferScratchF32, InferScratchQ,
    InferencePlan, InferencePlanF32, InferencePlanQ, InferenceTimings, LocalGraph, Precision,
};
use krylov::resilience::{FaultEvent, FaultKind, FaultLog};
use krylov::Preconditioner;
use rayon::prelude::*;
use sparse::CsrMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sanitizer::TrackedMutex;

/// Reusable per-sub-domain buffers for one preconditioner application: the
/// restricted (then normalised in place) residual, the DSS output, the norm
/// used to undo the normalisation at gluing time, and the full GNN inference
/// scratch (f64, f32 and quantised — only the active precision's buffers
/// ever grow).  Pre-sizing these makes `apply` allocation-free per iteration.
struct SubdomainScratch {
    local_r: Vec<f64>,
    correction: Vec<f64>,
    norm: f64,
    /// Column-interleaved `num_local × b` residual panel of the batched
    /// apply (batch width tracked by `norms_b.len()`).
    local_rb: Vec<f64>,
    /// Column-interleaved `num_local × b` correction panel.
    correction_b: Vec<f64>,
    /// Per-column restriction norms of the batched apply (`0.0` marks a
    /// vanishing column that skips both inference output and gluing).
    norms_b: Vec<f64>,
    infer: InferScratch,
    infer32: InferScratchF32,
    inferq: InferScratchQ,
}

impl SubdomainScratch {
    fn new(dim: usize) -> TrackedMutex<Self> {
        TrackedMutex::new(
            SubdomainScratch {
                local_r: vec![0.0; dim],
                correction: vec![0.0; dim],
                norm: 0.0,
                local_rb: Vec::new(),
                correction_b: Vec::new(),
                norms_b: Vec::new(),
                infer: InferScratch::new(),
                infer32: InferScratchF32::new(),
                inferq: InferScratchQ::new(),
            },
            "ddm_gnn::preconditioner::SubdomainScratch",
        )
    }
}

/// Per-sub-domain inference plans at the configured precision.
enum PlanSet {
    F64(Vec<InferencePlan>),
    F32(Vec<InferencePlanF32>),
    Int8(Vec<InferencePlanQ>),
}

/// The multi-level GNN preconditioner.
pub struct DdmGnnPreconditioner {
    restrictions: Vec<Restriction>,
    graphs: Vec<LocalGraph>,
    /// Per-sub-domain inference plans, built once at construction (the setup
    /// phase): split first-layer weights, precomputed static edge terms and
    /// destination-sorted incidence — in f64 or f32 depending on the
    /// configured [`Precision`].  `apply` only runs the cheap
    /// residual-dependent half of the forward pass.
    plans: PlanSet,
    coarse: Option<CoarseSpace>,
    model: Arc<DssModel>,
    scratch: Vec<TrackedMutex<SubdomainScratch>>,
    /// Serialises whole `apply` calls: the scratch buffers span the parallel
    /// inference and the sequential gluing, so two concurrent `apply`s on the
    /// same preconditioner would otherwise interleave and corrupt each other.
    apply_guard: TrackedMutex<()>,
    num_global: usize,
    /// Reported by `Preconditioner::name` ("ddm-gnn-{1,2}level[-f32|-int8]"
    /// or "ddm-gnn-ml<levels>[-f32|-int8]").
    name: String,
    /// Number of `apply` calls so far (≈ the outer iteration index).
    applies: AtomicU64,
    /// Classified coarse-solve errors, surfaced via `collect_faults`.
    faults: TrackedMutex<FaultLog>,
}

impl DdmGnnPreconditioner {
    /// Build the preconditioner for an assembled Poisson problem.
    ///
    /// `subdomains` are the overlapping node sets (e.g. from
    /// [`partition::partition_mesh_with_overlap`]); `two_level` toggles the
    /// Nicolaides coarse correction.
    pub fn new(
        problem: &PoissonProblem,
        subdomains: Vec<Vec<usize>>,
        model: Arc<DssModel>,
        two_level: bool,
    ) -> sparse::Result<Self> {
        Self::with_precision(problem, subdomains, model, two_level, Precision::F64)
    }

    /// [`DdmGnnPreconditioner::new`] with an explicit inference precision.
    ///
    /// `Precision::F32` runs every sub-domain DSS inference through the
    /// single-precision SIMD engine: the restricted residual is normalised in
    /// f64, converted to f32 on entry to the network, and the decoded output
    /// is widened back to f64 before the (entirely double-precision) gluing
    /// step.  Because the preconditioner only feeds a *flexible* outer
    /// Krylov method, the ~1e-6 relative perturbation cannot break
    /// convergence — it typically leaves iteration counts unchanged.
    ///
    /// `Precision::Int8` goes one step further: the weights are quantised
    /// **once at setup** from the f64 model (int8 with per-output f32
    /// scales) and the static edge/bias streams are stored bf16, with every
    /// accumulation still in f32.  The residual conversion and the gluing
    /// are identical to the f32 mode; the quantised plan needs roughly half
    /// the f32 plan's memory.
    pub fn with_precision(
        problem: &PoissonProblem,
        subdomains: Vec<Vec<usize>>,
        model: Arc<DssModel>,
        two_level: bool,
        precision: Precision,
    ) -> sparse::Result<Self> {
        let decomposition = Decomposition::new(&problem.matrix, subdomains);
        let graphs = build_local_graphs(problem, &decomposition);
        Self::from_parts_with_precision(
            &problem.matrix,
            decomposition,
            graphs,
            model,
            two_level,
            precision,
        )
    }

    /// Build from an existing decomposition and pre-built local graphs.
    pub fn from_parts(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        graphs: Vec<LocalGraph>,
        model: Arc<DssModel>,
        two_level: bool,
    ) -> sparse::Result<Self> {
        Self::from_parts_with_precision(
            matrix,
            decomposition,
            graphs,
            model,
            two_level,
            Precision::F64,
        )
    }

    /// [`DdmGnnPreconditioner::from_parts`] with an explicit inference
    /// precision.
    pub fn from_parts_with_precision(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        graphs: Vec<LocalGraph>,
        model: Arc<DssModel>,
        two_level: bool,
        precision: Precision,
    ) -> sparse::Result<Self> {
        let coarse = if two_level {
            Some(CoarseSpace::Nicolaides(NicolaidesCoarseSpace::new(
                matrix,
                &decomposition.restrictions,
            )?))
        } else {
            None
        };
        Self::assemble(matrix, decomposition, graphs, model, coarse, precision)
    }

    /// Build with a smoothed-aggregation multi-level coarse component
    /// instead of the single-shot Nicolaides solve.
    ///
    /// The hierarchy's smoother precision follows the inference precision
    /// (`Precision::F64` keeps f64 sweeps; `F32` and `Int8` drop the sweeps
    /// to the f32 engine — the V-cycle glue stays f64 either way), so
    /// reduced-precision deployments get a matching reduced-precision coarse
    /// path without extra configuration.
    pub fn with_multilevel_coarse(
        problem: &PoissonProblem,
        subdomains: Vec<Vec<usize>>,
        model: Arc<DssModel>,
        config: &MultilevelConfig,
        precision: Precision,
    ) -> sparse::Result<Self> {
        let decomposition = Decomposition::new(&problem.matrix, subdomains);
        let graphs = build_local_graphs(problem, &decomposition);
        Self::from_parts_with_multilevel(
            &problem.matrix,
            decomposition,
            graphs,
            model,
            config,
            precision,
        )
    }

    /// [`DdmGnnPreconditioner::with_multilevel_coarse`] from pre-built parts.
    pub fn from_parts_with_multilevel(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        graphs: Vec<LocalGraph>,
        model: Arc<DssModel>,
        config: &MultilevelConfig,
        precision: Precision,
    ) -> sparse::Result<Self> {
        let config = MultilevelConfig {
            smoother_precision: Self::smoother_precision_for(precision),
            ..config.clone()
        };
        let hierarchy = Hierarchy::build(matrix, &config)?;
        let coarse = Some(CoarseSpace::Multilevel(hierarchy));
        Self::assemble(matrix, decomposition, graphs, model, coarse, precision)
    }

    /// The smoother precision matching an inference precision.
    fn smoother_precision_for(precision: Precision) -> SmootherPrecision {
        match precision {
            Precision::F64 => SmootherPrecision::F64,
            Precision::F32 | Precision::Int8 => SmootherPrecision::F32,
        }
    }

    fn assemble(
        matrix: &CsrMatrix,
        decomposition: Decomposition,
        graphs: Vec<LocalGraph>,
        model: Arc<DssModel>,
        coarse: Option<CoarseSpace>,
        precision: Precision,
    ) -> sparse::Result<Self> {
        assert_eq!(
            decomposition.restrictions.len(),
            graphs.len(),
            "one local graph per sub-domain required"
        );
        let scratch = decomposition
            .restrictions
            .iter()
            .map(|r| SubdomainScratch::new(r.num_local()))
            .collect();
        let plans = match precision {
            Precision::F64 => PlanSet::F64(graphs.iter().map(|g| model.build_plan(g)).collect()),
            Precision::F32 => {
                PlanSet::F32(graphs.iter().map(|g| model.build_plan_f32(g)).collect())
            }
            Precision::Int8 => {
                PlanSet::Int8(graphs.iter().map(|g| model.build_plan_q(g)).collect())
            }
        };
        let suffix = match precision {
            Precision::F64 => "",
            Precision::F32 => "-f32",
            Precision::Int8 => "-int8",
        };
        let name = match &coarse {
            None => format!("ddm-gnn-1level{suffix}"),
            Some(CoarseSpace::Nicolaides(_)) => format!("ddm-gnn-2level{suffix}"),
            Some(CoarseSpace::Multilevel(h)) => {
                format!("ddm-gnn-ml{}{suffix}", h.num_levels())
            }
        };
        Ok(DdmGnnPreconditioner {
            restrictions: decomposition.restrictions,
            graphs,
            plans,
            coarse,
            model,
            scratch,
            apply_guard: TrackedMutex::new(
                (),
                "ddm_gnn::preconditioner::DdmGnnPreconditioner::apply_guard",
            ),
            num_global: matrix.nrows(),
            name,
            applies: AtomicU64::new(0),
            // Commutative: the fault log is append-only inside parallel
            // sections and every aggregation over it is order-insensitive.
            faults: TrackedMutex::new_commutative(
                FaultLog::new(),
                "ddm_gnn::preconditioner::DdmGnnPreconditioner::faults",
                "append-only fault log; aggregation queries are order-insensitive",
            ),
        })
    }

    /// Number of sub-domains handled by the preconditioner.
    pub fn num_subdomains(&self) -> usize {
        self.restrictions.len()
    }

    /// Whether the coarse-space correction is active.
    pub fn has_coarse_space(&self) -> bool {
        self.coarse.is_some()
    }

    /// The coarse component, if any.
    pub fn coarse_space(&self) -> Option<&CoarseSpace> {
        self.coarse.as_ref()
    }

    /// The underlying DSS model.
    pub fn model(&self) -> &DssModel {
        &self.model
    }

    /// The per-sub-domain local graphs.
    pub fn graphs(&self) -> &[LocalGraph] {
        &self.graphs
    }

    /// The inference precision the plans were built at.
    pub fn precision(&self) -> Precision {
        match &self.plans {
            PlanSet::F64(_) => Precision::F64,
            PlanSet::F32(_) => Precision::F32,
            PlanSet::Int8(_) => Precision::Int8,
        }
    }

    /// Total heap footprint of the cached inference plans in bytes.
    pub fn plan_memory_bytes(&self) -> usize {
        match &self.plans {
            PlanSet::F64(plans) => plans.iter().map(InferencePlan::memory_bytes).sum(),
            PlanSet::F32(plans) => plans.iter().map(InferencePlanF32::memory_bytes).sum(),
            PlanSet::Int8(plans) => plans.iter().map(InferencePlanQ::memory_bytes).sum(),
        }
    }

    /// Restrict, normalise and infer one sub-domain into its scratch slot,
    /// optionally accumulating per-stage timings.
    fn solve_local(&self, i: usize, r: &[f64], timings: Option<&mut InferenceTimings>) {
        let mut guard = self.scratch[i].lock();
        let SubdomainScratch { local_r, correction, norm, infer, infer32, inferq, .. } =
            &mut *guard;
        self.restrictions[i].restrict_into(r, local_r);
        *norm = sparse::vector::norm2(local_r);
        if *norm <= f64::MIN_POSITIVE {
            *norm = 0.0;
            return;
        }
        for v in local_r.iter_mut() {
            *v /= *norm;
        }
        match (&self.plans, timings) {
            (PlanSet::F64(plans), Some(t)) => {
                self.model.infer_with_plan_timed(&plans[i], local_r, infer, correction, t)
            }
            (PlanSet::F64(plans), None) => {
                self.model.infer_with_plan_into(&plans[i], local_r, infer, correction)
            }
            (PlanSet::F32(plans), Some(t)) => {
                self.model.infer_with_plan_f32_timed(&plans[i], local_r, infer32, correction, t)
            }
            (PlanSet::F32(plans), None) => {
                self.model.infer_with_plan_f32_into(&plans[i], local_r, infer32, correction)
            }
            (PlanSet::Int8(plans), Some(t)) => {
                self.model.infer_with_plan_q_timed(&plans[i], local_r, inferq, correction, t)
            }
            (PlanSet::Int8(plans), None) => {
                self.model.infer_with_plan_q_into(&plans[i], local_r, inferq, correction)
            }
        }
    }

    /// Batched [`DdmGnnPreconditioner::solve_local`]: restrict, normalise
    /// and infer all `b` residuals of one sub-domain through **one** panel
    /// inference, so the plan streams (weights, static geo terms) are read
    /// once for the whole batch.
    ///
    /// Each column is restricted and normalised through the same contiguous
    /// buffer and operation order as the unbatched path, then scattered into
    /// the column-interleaved panel — so together with the per-column
    /// bit-identity of the batched inference engines, column `c`'s correction
    /// is bit-identical to an unbatched `solve_local` on `rs[c]`.
    fn solve_local_batch(&self, i: usize, rs: &[&[f64]], timings: Option<&mut InferenceTimings>) {
        let b = rs.len();
        let mut guard = self.scratch[i].lock();
        let SubdomainScratch {
            local_r,
            local_rb,
            correction_b,
            norms_b,
            infer,
            infer32,
            inferq,
            ..
        } = &mut *guard;
        let nl = local_r.len();
        local_rb.resize(nl * b, 0.0);
        correction_b.resize(nl * b, 0.0);
        norms_b.clear();
        let mut any_live = false;
        for (c, r) in rs.iter().enumerate() {
            self.restrictions[i].restrict_into(r, local_r);
            let mut norm = sparse::vector::norm2(local_r);
            if norm <= f64::MIN_POSITIVE {
                norm = 0.0;
                for j in 0..nl {
                    local_rb[j * b + c] = 0.0;
                }
            } else {
                for v in local_r.iter_mut() {
                    *v /= norm;
                }
                for (j, &v) in local_r.iter().enumerate() {
                    local_rb[j * b + c] = v;
                }
                any_live = true;
            }
            norms_b.push(norm);
        }
        if !any_live {
            return;
        }
        match (&self.plans, timings) {
            (PlanSet::F64(plans), Some(t)) => self.model.infer_with_plan_batched_timed(
                &plans[i],
                local_rb,
                b,
                infer,
                correction_b,
                t,
            ),
            (PlanSet::F64(plans), None) => {
                self.model.infer_with_plan_batched_into(&plans[i], local_rb, b, infer, correction_b)
            }
            (PlanSet::F32(plans), Some(t)) => self.model.infer_with_plan_f32_batched_timed(
                &plans[i],
                local_rb,
                b,
                infer32,
                correction_b,
                t,
            ),
            (PlanSet::F32(plans), None) => self.model.infer_with_plan_f32_batched_into(
                &plans[i],
                local_rb,
                b,
                infer32,
                correction_b,
            ),
            (PlanSet::Int8(plans), Some(t)) => self.model.infer_with_plan_q_batched_timed(
                &plans[i],
                local_rb,
                b,
                inferq,
                correction_b,
                t,
            ),
            (PlanSet::Int8(plans), None) => self.model.infer_with_plan_q_batched_into(
                &plans[i],
                local_rb,
                b,
                inferq,
                correction_b,
            ),
        }
    }

    /// Gluing (Eq. 16): `z = Σ Rᵢᵀ ‖Rᵢ r‖ r̃ᵢ (+ coarse correction)`,
    /// accumulated sequentially in sub-domain order so the result does not
    /// depend on the thread count.
    fn glue(&self, r: &[f64], z: &mut [f64]) {
        for zi in z.iter_mut() {
            *zi = 0.0;
        }
        for (restriction, scratch) in self.restrictions.iter().zip(self.scratch.iter()) {
            let guard = scratch.lock();
            if guard.norm > 0.0 {
                restriction.extend_add_scaled(guard.norm, &guard.correction, z);
            }
        }
        if let Some(coarse) = &self.coarse {
            if let Err(e) = coarse.apply_into(r, z) {
                // Skip the coarse contribution; the glued local corrections
                // alone are still a valid (one-level) preconditioner.
                self.faults.lock().record(FaultEvent::new(
                    FaultKind::NumericalError,
                    self.applies.load(Ordering::SeqCst).saturating_sub(1),
                    &self.name,
                    format!("coarse correction failed: {e}"),
                ));
            }
        }
    }

    /// [`Preconditioner::apply`] with a per-stage wall-clock breakdown of the
    /// GNN inference accumulated into `timings`.
    ///
    /// The sub-domains are processed **sequentially** so the stage buckets
    /// measure kernel time rather than scheduler contention; the result
    /// written to `z` is bit-identical to [`Preconditioner::apply`] (which
    /// glues in sub-domain order for exactly that reason).
    pub fn apply_timed(&self, r: &[f64], z: &mut [f64], timings: &mut InferenceTimings) {
        debug_assert_eq!(r.len(), self.num_global);
        debug_assert_eq!(z.len(), self.num_global);
        let _exclusive = self.apply_guard.lock();
        self.applies.fetch_add(1, Ordering::SeqCst);
        for i in 0..self.restrictions.len() {
            self.solve_local(i, r, Some(&mut *timings));
        }
        self.glue(r, z);
    }

    /// Batched gluing: per column, same sub-domain order and the same
    /// scaled scatter-add as [`DdmGnnPreconditioner::glue`], then the coarse
    /// correction applied column by column.
    fn glue_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        let b = rs.len();
        for z in zs.iter_mut() {
            for zi in z.iter_mut() {
                *zi = 0.0;
            }
        }
        for (restriction, scratch) in self.restrictions.iter().zip(self.scratch.iter()) {
            let guard = scratch.lock();
            for (c, z) in zs.iter_mut().enumerate() {
                if guard.norms_b[c] > 0.0 {
                    restriction.extend_add_scaled_strided(
                        guard.norms_b[c],
                        &guard.correction_b,
                        b,
                        c,
                        z,
                    );
                }
            }
        }
        if let Some(coarse) = &self.coarse {
            for (c, (r, z)) in rs.iter().zip(zs.iter_mut()).enumerate() {
                if let Err(e) = coarse.apply_into(r, z) {
                    self.faults.lock().record(FaultEvent::new(
                        FaultKind::NumericalError,
                        self.applies.load(Ordering::SeqCst).saturating_sub(1),
                        &self.name,
                        format!("coarse correction failed in batch column {c}: {e}"),
                    ));
                }
            }
        }
    }

    /// [`Preconditioner::apply_batch`] with the per-stage inference breakdown
    /// accumulated into `timings` — the batched sibling of
    /// [`DdmGnnPreconditioner::apply_timed`], sub-domains processed
    /// sequentially so the stage buckets measure kernel time.  Bit-identical
    /// to the parallel batched apply.
    pub fn apply_batch_timed(
        &self,
        rs: &[&[f64]],
        zs: &mut [&mut [f64]],
        timings: &mut InferenceTimings,
    ) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        let _exclusive = self.apply_guard.lock();
        self.applies.fetch_add(1, Ordering::SeqCst);
        for i in 0..self.restrictions.len() {
            self.solve_local_batch(i, rs, Some(&mut *timings));
        }
        self.glue_batch(rs, zs);
    }
}

impl Preconditioner for DdmGnnPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.num_global);
        debug_assert_eq!(z.len(), self.num_global);
        let _exclusive = self.apply_guard.lock();
        self.applies.fetch_add(1, Ordering::SeqCst);

        // Local problems: restrict, normalise, infer — all sub-domains in
        // parallel (the batched GPU inference of Eq. 14 mapped onto rayon),
        // each writing into its own pre-sized scratch so the steady state
        // allocates nothing.
        (0..self.restrictions.len()).into_par_iter().for_each(|i| self.solve_local(i, r, None));
        self.glue(r, z);
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        assert_eq!(rs.len(), zs.len(), "batched apply: rs/zs column count mismatch");
        debug_assert!(rs.iter().all(|r| r.len() == self.num_global));
        debug_assert!(zs.iter().all(|z| z.len() == self.num_global));
        let _exclusive = self.apply_guard.lock();
        self.applies.fetch_add(1, Ordering::SeqCst);
        // Each sub-domain gathers its b local residuals into one panel and
        // runs a single batched inference — the plan streams are read once
        // per batch instead of once per column.
        (0..self.restrictions.len())
            .into_par_iter()
            .for_each(|i| self.solve_local_batch(i, rs, None));
        self.glue_batch(rs, zs);
    }

    fn dim(&self) -> usize {
        self.num_global
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn collect_faults(&self, log: &mut FaultLog) {
        log.merge(self.faults.lock().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fixture;
    use krylov::{preconditioned_conjugate_gradient, SolverOptions};

    #[test]
    fn construction_and_metadata() {
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        assert_eq!(precond.num_subdomains(), fx.subdomains.len());
        assert!(precond.has_coarse_space());
        assert_eq!(precond.dim(), fx.problem.num_unknowns());
        assert_eq!(precond.name(), "ddm-gnn-2level");
        assert_eq!(precond.model().config().latent_dim, fx.model.config().latent_dim);
        let one_level = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            false,
        )
        .unwrap();
        assert!(!one_level.has_coarse_space());
        assert_eq!(one_level.name(), "ddm-gnn-1level");
    }

    #[test]
    fn application_produces_descent_direction() {
        // zᵀ r > 0 is required for PCG to accept the preconditioned residual
        // as a descent direction; a trained DSS model must provide that.
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let r = fx.problem.rhs.clone();
        let mut z = vec![0.0; r.len()];
        precond.apply(&r, &mut z);
        assert!(sparse::vector::norm2(&z) > 0.0);
        assert!(sparse::vector::dot(&z, &r) > 0.0, "preconditioner must stay positive");
    }

    #[test]
    fn zero_residual_maps_to_coarse_only_correction() {
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            false,
        )
        .unwrap();
        let r = vec![0.0; fx.problem.num_unknowns()];
        let mut z = vec![1.0; r.len()];
        precond.apply(&r, &mut z);
        assert!(z.iter().all(|&v| v == 0.0), "zero residual must give zero correction");
    }

    #[test]
    fn timed_apply_is_bit_identical_to_apply() {
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        assert!(precond.plan_memory_bytes() > 0);
        assert_eq!(precond.graphs().len(), precond.num_subdomains());
        let r = fx.problem.rhs.clone();
        let mut z = vec![0.0; r.len()];
        let mut z_timed = vec![0.0; r.len()];
        precond.apply(&r, &mut z);
        let mut timings = gnn::InferenceTimings::default();
        precond.apply_timed(&r, &mut z_timed, &mut timings);
        assert_eq!(z, z_timed, "timed apply must not change the correction");
        assert_eq!(timings.calls as usize, precond.num_subdomains());
    }

    #[test]
    fn apply_survives_poisoned_scratch_bit_identically() {
        // A worker panic while holding a scratch (or the batch serialisation)
        // mutex poisons it.  The preconditioner must recover on the next
        // apply — same guarantee `GuardedPreconditioner` relies on — and the
        // recovered correction must be bit-identical, since every reachable
        // scratch state is valid (scratch is fully overwritten per apply).
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let r = fx.problem.rhs.clone();
        let mut baseline = vec![0.0; r.len()];
        precond.apply(&r, &mut baseline);

        fn poison<T>(mutex: &TrackedMutex<T>) {
            let p = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = mutex.lock();
                panic!("injected worker panic while holding the lock");
            }));
            assert!(p.is_err());
            assert!(mutex.is_poisoned(), "test setup failed to poison the mutex");
        }
        poison(&precond.scratch[0]);
        poison(&precond.apply_guard);

        let mut recovered = vec![1.0; r.len()];
        precond.apply(&r, &mut recovered);
        assert_eq!(baseline, recovered, "poison recovery changed the correction");

        let mut batch_out = vec![0.0; r.len()];
        precond.apply_batch(&[r.as_slice()], &mut [batch_out.as_mut_slice()]);
        assert_eq!(baseline, batch_out, "batched apply must also recover bit-identically");
    }

    #[test]
    fn batched_apply_is_bit_identical_per_column_for_all_precisions() {
        let fx = fixture();
        let n = fx.problem.num_unknowns();
        for precision in [gnn::Precision::F64, gnn::Precision::F32, gnn::Precision::Int8] {
            let precond = DdmGnnPreconditioner::with_precision(
                &fx.problem,
                fx.subdomains.clone(),
                Arc::new(fx.model.clone()),
                true,
                precision,
            )
            .unwrap();
            for b in [1usize, 3, 4] {
                let rhs: Vec<Vec<f64>> = (0..b)
                    .map(|c| {
                        fx.problem
                            .rhs
                            .iter()
                            .enumerate()
                            .map(|(i, v)| v * (1.0 - 0.21 * c as f64) + 0.01 * ((i + c) % 7) as f64)
                            .collect()
                    })
                    .collect();
                let r_refs: Vec<&[f64]> = rhs.iter().map(|r| r.as_slice()).collect();
                let mut zs: Vec<Vec<f64>> = vec![vec![0.0; n]; b];
                {
                    let mut z_refs: Vec<&mut [f64]> =
                        zs.iter_mut().map(|z| z.as_mut_slice()).collect();
                    precond.apply_batch(&r_refs, &mut z_refs);
                }
                let mut expected = vec![0.0; n];
                for (c, r) in rhs.iter().enumerate() {
                    precond.apply(r, &mut expected);
                    assert_eq!(
                        zs[c], expected,
                        "{precision:?} b={b} column {c}: batched apply diverged"
                    );
                }
                // The timed batched apply is bit-identical too and counts one
                // inference call per (sub-domain, batch).
                let mut timings = gnn::InferenceTimings::default();
                let mut zs_timed: Vec<Vec<f64>> = vec![vec![0.0; n]; b];
                {
                    let mut z_refs: Vec<&mut [f64]> =
                        zs_timed.iter_mut().map(|z| z.as_mut_slice()).collect();
                    precond.apply_batch_timed(&r_refs, &mut z_refs, &mut timings);
                }
                assert_eq!(zs, zs_timed, "{precision:?} b={b}: timed batched apply diverged");
                assert_eq!(timings.calls as usize, precond.num_subdomains());
            }
        }
    }

    #[test]
    fn f32_precision_metadata_and_closeness_to_f64() {
        let fx = fixture();
        let p64 = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let p32 = DdmGnnPreconditioner::with_precision(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
            gnn::Precision::F32,
        )
        .unwrap();
        assert_eq!(p64.precision(), gnn::Precision::F64);
        assert_eq!(p32.precision(), gnn::Precision::F32);
        assert_eq!(p32.name(), "ddm-gnn-2level-f32");
        assert!(
            p32.plan_memory_bytes() < p64.plan_memory_bytes(),
            "f32 plans must use less memory: {} vs {}",
            p32.plan_memory_bytes(),
            p64.plan_memory_bytes()
        );
        let r = fx.problem.rhs.clone();
        let mut z64 = vec![0.0; r.len()];
        let mut z32 = vec![0.0; r.len()];
        p64.apply(&r, &mut z64);
        p32.apply(&r, &mut z32);
        // Same operator up to single-precision rounding of the local solves.
        let scale = sparse::vector::norm2(&z64).max(1.0);
        let mut diff = 0.0f64;
        for (a, b) in z32.iter().zip(z64.iter()) {
            diff = diff.max((a - b).abs());
        }
        assert!(diff / scale < 1e-4, "f32 apply deviates too much: {}", diff / scale);
        assert!(sparse::vector::dot(&z32, &r) > 0.0, "f32 preconditioner must stay positive");
        // Timed apply matches the parallel apply bit-for-bit in f32 mode too.
        let mut z32_timed = vec![0.0; r.len()];
        let mut timings = gnn::InferenceTimings::default();
        p32.apply_timed(&r, &mut z32_timed, &mut timings);
        assert_eq!(z32, z32_timed);
        assert_eq!(timings.calls as usize, p32.num_subdomains());
    }

    #[test]
    fn f32_one_level_name_and_zero_residual() {
        let fx = fixture();
        let p32 = DdmGnnPreconditioner::with_precision(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            false,
            gnn::Precision::F32,
        )
        .unwrap();
        assert_eq!(p32.name(), "ddm-gnn-1level-f32");
        let r = vec![0.0; fx.problem.num_unknowns()];
        let mut z = vec![1.0; r.len()];
        p32.apply(&r, &mut z);
        assert!(z.iter().all(|&v| v == 0.0), "zero residual must give zero correction");
    }

    #[test]
    fn int8_precision_metadata_and_closeness_to_f64() {
        let fx = fixture();
        let p64 = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let p32 = DdmGnnPreconditioner::with_precision(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
            gnn::Precision::F32,
        )
        .unwrap();
        let pq = DdmGnnPreconditioner::with_precision(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
            gnn::Precision::Int8,
        )
        .unwrap();
        assert_eq!(pq.precision(), gnn::Precision::Int8);
        assert_eq!(pq.name(), "ddm-gnn-2level-int8");
        assert!(
            pq.plan_memory_bytes() < p32.plan_memory_bytes(),
            "int8 plans must use less memory than f32: {} vs {}",
            pq.plan_memory_bytes(),
            p32.plan_memory_bytes()
        );
        let r = fx.problem.rhs.clone();
        let mut z64 = vec![0.0; r.len()];
        let mut zq = vec![0.0; r.len()];
        p64.apply(&r, &mut z64);
        pq.apply(&r, &mut zq);
        // Same operator up to the quantisation error of the local solves.
        let scale = sparse::vector::norm2(&z64).max(1.0);
        let mut diff = 0.0f64;
        for (a, b) in zq.iter().zip(z64.iter()) {
            diff = diff.max((a - b).abs());
        }
        assert!(diff / scale < 5e-2, "int8 apply deviates too much: {}", diff / scale);
        assert!(sparse::vector::dot(&zq, &r) > 0.0, "int8 preconditioner must stay positive");
        // Timed apply matches the parallel apply bit-for-bit in int8 mode too.
        let mut zq_timed = vec![0.0; r.len()];
        let mut timings = gnn::InferenceTimings::default();
        pq.apply_timed(&r, &mut zq_timed, &mut timings);
        assert_eq!(zq, zq_timed);
        assert_eq!(timings.calls as usize, pq.num_subdomains());
    }

    #[test]
    fn int8_one_level_name_and_zero_residual() {
        let fx = fixture();
        let pq = DdmGnnPreconditioner::with_precision(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            false,
            gnn::Precision::Int8,
        )
        .unwrap();
        assert_eq!(pq.name(), "ddm-gnn-1level-int8");
        let r = vec![0.0; fx.problem.num_unknowns()];
        let mut z = vec![1.0; r.len()];
        pq.apply(&r, &mut z);
        assert!(z.iter().all(|&v| v == 0.0), "zero residual must give zero correction");
    }

    #[test]
    fn pcg_with_int8_ddm_gnn_converges_like_f64() {
        let fx = fixture();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let solve = |precision| {
            let precond = DdmGnnPreconditioner::with_precision(
                &fx.problem,
                fx.subdomains.clone(),
                Arc::new(fx.model.clone()),
                true,
                precision,
            )
            .unwrap();
            preconditioned_conjugate_gradient(
                &fx.problem.matrix,
                &fx.problem.rhs,
                None,
                &precond,
                &opts,
            )
        };
        let r64 = solve(gnn::Precision::F64);
        let rq = solve(gnn::Precision::Int8);
        assert!(r64.stats.converged() && rq.stats.converged());
        assert!(krylov::true_relative_residual(&fx.problem.matrix, &rq.x, &fx.problem.rhs) < 1e-5);
        // The flexible outer Krylov method absorbs the quantisation
        // perturbation: iteration counts stay within +15% of f64.
        let cap = r64.stats.iterations + (15 * r64.stats.iterations).div_ceil(100);
        assert!(
            rq.stats.iterations <= cap,
            "int8 iterations {} exceed f64 {} + 15%",
            rq.stats.iterations,
            r64.stats.iterations
        );
    }

    #[test]
    fn pcg_with_f32_ddm_gnn_converges_like_f64() {
        let fx = fixture();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let solve = |precision| {
            let precond = DdmGnnPreconditioner::with_precision(
                &fx.problem,
                fx.subdomains.clone(),
                Arc::new(fx.model.clone()),
                true,
                precision,
            )
            .unwrap();
            preconditioned_conjugate_gradient(
                &fx.problem.matrix,
                &fx.problem.rhs,
                None,
                &precond,
                &opts,
            )
        };
        let r64 = solve(gnn::Precision::F64);
        let r32 = solve(gnn::Precision::F32);
        assert!(r64.stats.converged() && r32.stats.converged());
        assert!(krylov::true_relative_residual(&fx.problem.matrix, &r32.x, &fx.problem.rhs) < 1e-5);
        // The flexible outer Krylov method absorbs the f32 perturbation:
        // iteration counts stay within +10% of the f64 baseline.
        let cap = r64.stats.iterations + r64.stats.iterations.div_ceil(10);
        assert!(
            r32.stats.iterations <= cap,
            "f32 iterations {} exceed f64 {} + 10%",
            r32.stats.iterations,
            r64.stats.iterations
        );
    }

    #[test]
    fn multilevel_coarse_component_converges_and_names_itself() {
        let fx = fixture();
        let ml = DdmGnnPreconditioner::with_multilevel_coarse(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            &MultilevelConfig { coarsest_max_size: 60, ..Default::default() },
            gnn::Precision::F64,
        )
        .unwrap();
        assert!(ml.has_coarse_space());
        let levels = match ml.coarse_space().unwrap() {
            CoarseSpace::Multilevel(h) => h.num_levels(),
            CoarseSpace::Nicolaides(_) => panic!("expected a multilevel coarse space"),
        };
        assert!(levels >= 2);
        assert_eq!(ml.name(), format!("ddm-gnn-ml{levels}"));
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let result = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &ml,
            &opts,
        );
        assert!(result.stats.converged(), "{:?}", result.stats.stop_reason);
        assert!(
            krylov::true_relative_residual(&fx.problem.matrix, &result.x, &fx.problem.rhs) < 1e-5
        );
    }

    #[test]
    fn multilevel_coarse_follows_inference_precision() {
        // The f32/int8 inference modes drop the hierarchy's smoother to f32
        // sweeps; the solve must still converge with iteration counts close
        // to the f64 configuration.
        let fx = fixture();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let solve = |precision| {
            let precond = DdmGnnPreconditioner::with_multilevel_coarse(
                &fx.problem,
                fx.subdomains.clone(),
                Arc::new(fx.model.clone()),
                &MultilevelConfig { coarsest_max_size: 60, ..Default::default() },
                precision,
            )
            .unwrap();
            let name = precond.name().to_string();
            (
                preconditioned_conjugate_gradient(
                    &fx.problem.matrix,
                    &fx.problem.rhs,
                    None,
                    &precond,
                    &opts,
                ),
                name,
            )
        };
        let (r64, _) = solve(gnn::Precision::F64);
        let (r32, name32) = solve(gnn::Precision::F32);
        assert!(name32.starts_with("ddm-gnn-ml") && name32.ends_with("-f32"), "{name32}");
        assert!(r64.stats.converged() && r32.stats.converged());
        let cap = r64.stats.iterations + r64.stats.iterations.div_ceil(10);
        assert!(
            r32.stats.iterations <= cap,
            "f32-smoothed multilevel iterations {} exceed f64 {} + 10%",
            r32.stats.iterations,
            r64.stats.iterations
        );
    }

    #[test]
    fn pcg_with_ddm_gnn_converges() {
        // The headline property of the paper: the hybrid solver converges to
        // the requested tolerance even though the preconditioner is learned.
        let fx = fixture();
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let result = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &precond,
            &opts,
        );
        assert!(
            result.stats.converged(),
            "hybrid solver must converge: {:?}",
            result.stats.stop_reason
        );
        assert!(
            krylov::true_relative_residual(&fx.problem.matrix, &result.x, &fx.problem.rhs) < 1e-5
        );
    }

    #[test]
    fn trained_gnn_preconditioner_beats_plain_cg() {
        let fx = fixture();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(2000);
        let plain = krylov::conjugate_gradient(&fx.problem.matrix, &fx.problem.rhs, None, &opts);
        let precond = DdmGnnPreconditioner::new(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
        )
        .unwrap();
        let hybrid = preconditioned_conjugate_gradient(
            &fx.problem.matrix,
            &fx.problem.rhs,
            None,
            &precond,
            &opts,
        );
        assert!(plain.stats.converged() && hybrid.stats.converged());
        assert!(
            hybrid.stats.iterations < plain.stats.iterations,
            "DDM-GNN {} vs CG {}",
            hybrid.stats.iterations,
            plain.stats.iterations
        );
    }
}
