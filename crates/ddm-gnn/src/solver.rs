//! The hybrid solver public API and the baseline drivers of the evaluation.
//!
//! [`HybridSolver`] is the interface a downstream user would adopt: configure
//! sub-domain size, overlap and tolerance once, hand it a trained DSS model,
//! and call [`HybridSolver::solve`] on assembled Poisson problems.  The free
//! functions ([`solve_cg`], [`solve_ic0`], [`solve_ddm_lu`], [`solve_ddm_gnn`])
//! are the four columns of the paper's Tables I and III; all of them report
//! wall-clock timings split into total time and time spent inside the
//! preconditioner (the `T`, `T_lu`, `T_gnn` columns of Table III).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ddm::{AdditiveSchwarz, AsmLevel, MultilevelConfig};
use fem::PoissonProblem;
use gnn::{DssModel, Precision};
use krylov::{
    conjugate_gradient, preconditioned_conjugate_gradient, DegradationLadder, FaultLog,
    Ic0Preconditioner, JacobiPreconditioner, Preconditioner, ResiliencePolicy, SolveStats,
    SolverOptions,
};
use partition::partition_mesh_with_overlap;

use crate::preconditioner::DdmGnnPreconditioner;

/// The solver variants benchmarked in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Unpreconditioned Conjugate Gradient.
    Cg,
    /// PCG with zero-fill incomplete Cholesky.
    Ic0,
    /// PCG with the two-level Additive Schwarz method and exact local solves.
    DdmLu,
    /// PCG with the DDM-GNN preconditioner.
    DdmGnn,
}

impl Method {
    /// Human-readable name used in harness tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cg => "CG",
            Method::Ic0 => "IC(0)",
            Method::DdmLu => "DDM-LU",
            Method::DdmGnn => "DDM-GNN",
        }
    }
}

/// Result of one solve, with the timing breakdown of Table III.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Which method produced this outcome.
    pub method: Method,
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iteration counts, residuals, convergence history.
    pub stats: SolveStats,
    /// Total wall-clock time of the solve (excluding setup/factorisation).
    pub total_seconds: f64,
    /// Wall-clock time of preconditioner setup (factorisations, coarse space,
    /// graph construction).
    pub setup_seconds: f64,
    /// Wall-clock time spent applying the preconditioner.
    pub preconditioner_seconds: f64,
    /// Number of sub-domains (0 for CG / IC(0)).
    pub num_subdomains: usize,
}

/// Wraps any preconditioner and accumulates the wall-clock time spent in
/// `apply` — used to report the `T_lu` / `T_gnn` columns of Table III.
pub struct TimedPreconditioner<P> {
    inner: P,
    nanos: AtomicU64,
}

impl<P: Preconditioner> TimedPreconditioner<P> {
    /// Wrap a preconditioner.
    pub fn new(inner: P) -> Self {
        TimedPreconditioner { inner, nanos: AtomicU64::new(0) }
    }

    /// Seconds spent inside `apply` so far.
    pub fn seconds(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Access the wrapped preconditioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Preconditioner> Preconditioner for TimedPreconditioner<P> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let start = Instant::now();
        self.inner.apply(r, z);
        self.nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn apply_checked(&self, r: &[f64], z: &mut [f64]) -> sparse::Result<()> {
        let start = Instant::now();
        let result = self.inner.apply_checked(r, z);
        self.nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    fn apply_batch(&self, rs: &[&[f64]], zs: &mut [&mut [f64]]) {
        let start = Instant::now();
        self.inner.apply_batch(rs, zs);
        self.nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn collect_faults(&self, log: &mut FaultLog) {
        self.inner.collect_faults(log);
    }
}

/// Solve with unpreconditioned CG.
pub fn solve_cg(problem: &PoissonProblem, opts: &SolverOptions) -> SolveOutcome {
    let start = Instant::now();
    let result = conjugate_gradient(&problem.matrix, &problem.rhs, None, opts);
    SolveOutcome {
        method: Method::Cg,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds: 0.0,
        preconditioner_seconds: 0.0,
        num_subdomains: 0,
    }
}

/// Solve with IC(0)-preconditioned CG (the "legacy optimised preconditioner").
pub fn solve_ic0(problem: &PoissonProblem, opts: &SolverOptions) -> sparse::Result<SolveOutcome> {
    let setup_start = Instant::now();
    let precond = TimedPreconditioner::new(Ic0Preconditioner::new(&problem.matrix)?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    Ok(SolveOutcome {
        method: Method::Ic0,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains: 0,
    })
}

/// Solve with PCG preconditioned by the two-level ASM with exact local solves
/// (the paper's DDM-LU).
pub fn solve_ddm_lu(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    two_level: bool,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    let num_subdomains = subdomains.len();
    let level = if two_level { AsmLevel::TwoLevel } else { AsmLevel::OneLevel };
    let setup_start = Instant::now();
    let precond =
        TimedPreconditioner::new(AdditiveSchwarz::new(&problem.matrix, subdomains, level)?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    Ok(SolveOutcome {
        method: Method::DdmLu,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    })
}

/// [`solve_ddm_lu`] with the smoothed-aggregation multi-level hierarchy as
/// the coarse component instead of the Nicolaides space.
pub fn solve_ddm_lu_multilevel(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    config: &MultilevelConfig,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    let num_subdomains = subdomains.len();
    let setup_start = Instant::now();
    let precond = TimedPreconditioner::new(AdditiveSchwarz::with_multilevel(
        &problem.matrix,
        subdomains,
        config,
    )?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    Ok(SolveOutcome {
        method: Method::DdmLu,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    })
}

/// [`solve_ddm_gnn_with_precision`] with the multi-level hierarchy as the
/// coarse component (the hierarchy's smoother precision follows
/// `precision`).
pub fn solve_ddm_gnn_multilevel(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    model: Arc<DssModel>,
    config: &MultilevelConfig,
    precision: Precision,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    let num_subdomains = subdomains.len();
    let setup_start = Instant::now();
    let precond = TimedPreconditioner::new(DdmGnnPreconditioner::with_multilevel_coarse(
        problem, subdomains, model, config, precision,
    )?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    Ok(SolveOutcome {
        method: Method::DdmGnn,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    })
}

/// Solve with PCG preconditioned by DDM-GNN (double-precision inference).
pub fn solve_ddm_gnn(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    model: Arc<DssModel>,
    two_level: bool,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    solve_ddm_gnn_with_precision(problem, subdomains, model, two_level, Precision::F64, opts)
}

/// [`solve_ddm_gnn`] with an explicit inference precision for the local DSS
/// solves (`Precision::F32` runs the single-precision SIMD engine,
/// `Precision::Int8` the quantised int8-weight / bf16-stream engine).
pub fn solve_ddm_gnn_with_precision(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    model: Arc<DssModel>,
    two_level: bool,
    precision: Precision,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    let num_subdomains = subdomains.len();
    let setup_start = Instant::now();
    let precond = TimedPreconditioner::new(DdmGnnPreconditioner::with_precision(
        problem, subdomains, model, two_level, precision,
    )?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    Ok(SolveOutcome {
        method: Method::DdmGnn,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    })
}

/// Result of a multi-right-hand-side DDM-GNN solve: one [`SolveResult`] per
/// column plus the shared timing breakdown (setup and preconditioner time are
/// amortised across the whole batch, so they are reported once).
#[derive(Debug, Clone)]
pub struct BatchSolveOutcome {
    /// Per-column solutions and statistics, in right-hand-side order.
    pub results: Vec<krylov::SolveResult>,
    /// Total wall-clock time of the batched solve (excluding setup).
    pub total_seconds: f64,
    /// Wall-clock time of preconditioner setup.
    pub setup_seconds: f64,
    /// Wall-clock time spent applying the preconditioner (all columns).
    pub preconditioner_seconds: f64,
    /// Number of sub-domains.
    pub num_subdomains: usize,
}

/// Solve the same operator against `bs.len()` right-hand sides with the
/// DDM-GNN preconditioner, batching the preconditioner application across
/// all still-active columns each outer iteration (one blocked GNN inference
/// per sub-domain instead of one per column).
///
/// Column `c` of the result is bit-identical to a [`solve_ddm_gnn_with_precision`]
/// run on `bs[c]` alone: the batched engines accumulate each column in the
/// same order as the unbatched ones.
pub fn solve_ddm_gnn_batch(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    model: Arc<DssModel>,
    two_level: bool,
    precision: Precision,
    bs: &[&[f64]],
    opts: &SolverOptions,
) -> sparse::Result<BatchSolveOutcome> {
    let num_subdomains = subdomains.len();
    let setup_start = Instant::now();
    let precond = TimedPreconditioner::new(DdmGnnPreconditioner::with_precision(
        problem, subdomains, model, two_level, precision,
    )?);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let results = krylov::solve_batch(&problem.matrix, bs, None, &precond, opts);
    Ok(BatchSolveOutcome {
        results,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    })
}

/// Build the ordered tier stack for a fault-tolerant DDM-GNN solve: the GNN
/// preconditioner at the configured precision, then every *higher*-precision
/// GNN engine it can fall back to (int8 → f32 → f64), then the exact Schwarz
/// method (two-level or multi-level, following `config`), then diagonal
/// Jacobi as the most conservative tier.
///
/// Exposed so tests and the benchmark harness can wrap individual tiers
/// (e.g. in a [`krylov::FaultInjectingPreconditioner`]) before assembling
/// the [`DegradationLadder`] themselves.
pub fn build_resilience_tiers(
    problem: &PoissonProblem,
    subdomains: &[Vec<usize>],
    model: &Arc<DssModel>,
    config: &HybridSolverConfig,
) -> sparse::Result<Vec<Box<dyn Preconditioner>>> {
    let chain: &[Precision] = match config.precision {
        Precision::Int8 => &[Precision::Int8, Precision::F32, Precision::F64],
        Precision::F32 => &[Precision::F32, Precision::F64],
        Precision::F64 => &[Precision::F64],
    };
    let mut tiers: Vec<Box<dyn Preconditioner>> = Vec::with_capacity(chain.len() + 2);
    for &precision in chain {
        let tier = if let Some(ml) = &config.multilevel {
            DdmGnnPreconditioner::with_multilevel_coarse(
                problem,
                subdomains.to_vec(),
                Arc::clone(model),
                ml,
                precision,
            )?
        } else {
            DdmGnnPreconditioner::with_precision(
                problem,
                subdomains.to_vec(),
                Arc::clone(model),
                config.two_level,
                precision,
            )?
        };
        tiers.push(Box::new(tier));
    }
    let asm = if let Some(ml) = &config.multilevel {
        AdditiveSchwarz::with_multilevel(&problem.matrix, subdomains.to_vec(), ml)?
    } else {
        let level = if config.two_level { AsmLevel::TwoLevel } else { AsmLevel::OneLevel };
        AdditiveSchwarz::new(&problem.matrix, subdomains.to_vec(), level)?
    };
    tiers.push(Box::new(asm));
    tiers.push(Box::new(JacobiPreconditioner::new(&problem.matrix)));
    Ok(tiers)
}

/// Run the supervised PCG over an already-assembled [`DegradationLadder`]
/// (whose tiers the caller may have wrapped, e.g. with fault injectors).
///
/// Contained faults, downgrades, and the final active tier end up on
/// `SolveOutcome::stats.faults`; the flexible (Polak–Ribière) PCG tolerates
/// the preconditioner changing mid-solve, so a downgrade never restarts the
/// outer iteration.
pub fn solve_with_ladder(
    problem: &PoissonProblem,
    num_subdomains: usize,
    ladder: DegradationLadder,
    setup_seconds: f64,
    opts: &SolverOptions,
) -> SolveOutcome {
    let precond = TimedPreconditioner::new(ladder);
    let start = Instant::now();
    let result =
        preconditioned_conjugate_gradient(&problem.matrix, &problem.rhs, None, &precond, opts);
    SolveOutcome {
        method: Method::DdmGnn,
        x: result.x,
        stats: result.stats,
        total_seconds: start.elapsed().as_secs_f64(),
        setup_seconds,
        preconditioner_seconds: precond.seconds(),
        num_subdomains,
    }
}

/// [`solve_ddm_gnn`] under the fault-tolerant supervisor: the preconditioner
/// is the full degradation ladder of [`build_resilience_tiers`] and faults
/// are contained, classified and reported instead of aborting the process.
pub fn solve_ddm_gnn_resilient(
    problem: &PoissonProblem,
    subdomains: Vec<Vec<usize>>,
    model: Arc<DssModel>,
    config: &HybridSolverConfig,
    policy: ResiliencePolicy,
    opts: &SolverOptions,
) -> sparse::Result<SolveOutcome> {
    let num_subdomains = subdomains.len();
    let setup_start = Instant::now();
    let tiers = build_resilience_tiers(problem, &subdomains, &model, config)?;
    let ladder = DegradationLadder::new(tiers, policy);
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    Ok(solve_with_ladder(problem, num_subdomains, ladder, setup_seconds, opts))
}

/// Configuration of the high-level [`HybridSolver`].
#[derive(Debug, Clone)]
pub struct HybridSolverConfig {
    /// Target sub-domain size in nodes (the paper trains on ~1000).
    pub subdomain_size: usize,
    /// Overlap layers.
    pub overlap: usize,
    /// Use the two-level method (Nicolaides coarse correction).
    pub two_level: bool,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Seed for the partitioner.
    pub partition_seed: u64,
    /// Scalar precision of the DSS inference inside the preconditioner
    /// (`Precision::F32` opts into the single-precision SIMD engine,
    /// `Precision::Int8` into the quantised int8/bf16 engine — weights are
    /// quantised once at setup from the f64 model; the flexible outer PCG
    /// keeps its convergence guarantee in every mode).
    pub precision: Precision,
    /// When set, replace the Nicolaides coarse solve with a
    /// smoothed-aggregation multi-level V-cycle built from this
    /// configuration (overrides `two_level`; the hierarchy's smoother
    /// precision follows `precision`).
    pub multilevel: Option<MultilevelConfig>,
    /// When set, run the solve under the fault-tolerant supervisor: the
    /// preconditioner becomes a [`DegradationLadder`] (GNN at the configured
    /// precision, then progressively higher-precision GNN tiers, then the
    /// exact two-level/multi-level Schwarz method, then diagonal Jacobi)
    /// that contains panics, scans for non-finite output, and downgrades in
    /// place on a classified fault without restarting the outer PCG.  Faults
    /// and downgrades are reported on `SolveOutcome::stats.faults`.
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for HybridSolverConfig {
    fn default() -> Self {
        HybridSolverConfig {
            subdomain_size: 1000,
            overlap: 2,
            two_level: true,
            tolerance: 1e-6,
            max_iterations: 5000,
            partition_seed: 0,
            precision: Precision::F64,
            multilevel: None,
            resilience: None,
        }
    }
}

/// The hybrid Krylov + GNN solver: the public API of the paper's contribution.
pub struct HybridSolver {
    config: HybridSolverConfig,
    model: Arc<DssModel>,
}

impl HybridSolver {
    /// Create a solver from a trained model and a configuration.
    pub fn new(model: DssModel, config: HybridSolverConfig) -> Self {
        HybridSolver { config: config.clone(), model: Arc::new(model) }
    }

    /// The solver configuration.
    pub fn config(&self) -> &HybridSolverConfig {
        &self.config
    }

    /// The trained model backing the preconditioner.
    pub fn model(&self) -> &DssModel {
        &self.model
    }

    /// Solve an assembled Poisson problem with the DDM-GNN preconditioned CG.
    pub fn solve(&self, problem: &PoissonProblem) -> sparse::Result<SolveOutcome> {
        let subdomains = partition_mesh_with_overlap(
            &problem.mesh,
            self.config.subdomain_size,
            self.config.overlap,
            self.config.partition_seed,
        );
        let opts = SolverOptions::with_tolerance(self.config.tolerance)
            .max_iterations(self.config.max_iterations);
        if let Some(policy) = &self.config.resilience {
            return solve_ddm_gnn_resilient(
                problem,
                subdomains,
                Arc::clone(&self.model),
                &self.config,
                policy.clone(),
                &opts,
            );
        }
        if let Some(ml) = &self.config.multilevel {
            return solve_ddm_gnn_multilevel(
                problem,
                subdomains,
                Arc::clone(&self.model),
                ml,
                self.config.precision,
                &opts,
            );
        }
        solve_ddm_gnn_with_precision(
            problem,
            subdomains,
            Arc::clone(&self.model),
            self.config.two_level,
            self.config.precision,
            &opts,
        )
    }

    /// Solve the same problem with the exact (DDM-LU) preconditioner — handy
    /// for side-by-side comparisons like Table I.
    pub fn solve_with_exact_local_solver(
        &self,
        problem: &PoissonProblem,
    ) -> sparse::Result<SolveOutcome> {
        let subdomains = partition_mesh_with_overlap(
            &problem.mesh,
            self.config.subdomain_size,
            self.config.overlap,
            self.config.partition_seed,
        );
        let opts = SolverOptions::with_tolerance(self.config.tolerance)
            .max_iterations(self.config.max_iterations);
        if let Some(ml) = &self.config.multilevel {
            return solve_ddm_lu_multilevel(problem, subdomains, ml, &opts);
        }
        solve_ddm_lu(problem, subdomains, self.config.two_level, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fixture;

    #[test]
    fn all_methods_converge_and_agree() {
        let fx = fixture();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(3000);
        let cg = solve_cg(&fx.problem, &opts);
        let ic0 = solve_ic0(&fx.problem, &opts).unwrap();
        let lu = solve_ddm_lu(&fx.problem, fx.subdomains.clone(), true, &opts).unwrap();
        let gnn = solve_ddm_gnn(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::new(fx.model.clone()),
            true,
            &opts,
        )
        .unwrap();
        for outcome in [&cg, &ic0, &lu, &gnn] {
            assert!(outcome.stats.converged(), "{:?} did not converge", outcome.method);
            assert!(outcome.total_seconds >= 0.0);
        }
        // All methods solve the same system: solutions agree.
        assert!(sparse::vector::relative_error(&gnn.x, &lu.x) < 1e-4);
        assert!(sparse::vector::relative_error(&ic0.x, &lu.x) < 1e-4);
        // Iteration ordering of Table I: DDM-LU <= DDM-GNN < CG.
        assert!(lu.stats.iterations <= gnn.stats.iterations);
        assert!(gnn.stats.iterations < cg.stats.iterations);
        // Timing bookkeeping is self-consistent.
        assert!(gnn.preconditioner_seconds <= gnn.total_seconds + 1e-9);
        assert!(lu.preconditioner_seconds <= lu.total_seconds + 1e-9);
        assert_eq!(cg.num_subdomains, 0);
        assert_eq!(gnn.num_subdomains, fx.subdomains.len());
        assert_eq!(Method::DdmGnn.name(), "DDM-GNN");
    }

    #[test]
    fn hybrid_solver_api_end_to_end() {
        let fx = fixture();
        let solver = HybridSolver::new(
            fx.model.clone(),
            HybridSolverConfig {
                subdomain_size: 250,
                overlap: 2,
                tolerance: 1e-6,
                ..Default::default()
            },
        );
        assert_eq!(solver.config().overlap, 2);
        assert_eq!(solver.model().config().latent_dim, fx.model.config().latent_dim);
        let outcome = solver.solve(&fx.problem).unwrap();
        assert!(outcome.stats.converged());
        let exact = solver.solve_with_exact_local_solver(&fx.problem).unwrap();
        assert!(exact.stats.converged());
        assert!(exact.stats.iterations <= outcome.stats.iterations);
        assert!(
            krylov::true_relative_residual(&fx.problem.matrix, &outcome.x, &fx.problem.rhs) < 1e-5
        );
    }

    #[test]
    fn hybrid_solver_f32_precision_converges() {
        let fx = fixture();
        let base = HybridSolverConfig {
            subdomain_size: 250,
            overlap: 2,
            tolerance: 1e-6,
            ..Default::default()
        };
        let f64_solver = HybridSolver::new(fx.model.clone(), base.clone());
        let f32_solver = HybridSolver::new(
            fx.model.clone(),
            HybridSolverConfig { precision: Precision::F32, ..base },
        );
        let o64 = f64_solver.solve(&fx.problem).unwrap();
        let o32 = f32_solver.solve(&fx.problem).unwrap();
        assert!(o64.stats.converged() && o32.stats.converged());
        assert!(sparse::vector::relative_error(&o32.x, &o64.x) < 1e-4);
        let cap = o64.stats.iterations + o64.stats.iterations.div_ceil(10);
        assert!(
            o32.stats.iterations <= cap,
            "f32 iterations {} exceed f64 {} + 10%",
            o32.stats.iterations,
            o64.stats.iterations
        );
    }

    #[test]
    fn hybrid_solver_int8_precision_converges() {
        let fx = fixture();
        let base = HybridSolverConfig {
            subdomain_size: 250,
            overlap: 2,
            tolerance: 1e-6,
            ..Default::default()
        };
        let f64_solver = HybridSolver::new(fx.model.clone(), base.clone());
        let q_solver = HybridSolver::new(
            fx.model.clone(),
            HybridSolverConfig { precision: Precision::Int8, ..base },
        );
        let o64 = f64_solver.solve(&fx.problem).unwrap();
        let oq = q_solver.solve(&fx.problem).unwrap();
        assert!(o64.stats.converged() && oq.stats.converged());
        assert!(sparse::vector::relative_error(&oq.x, &o64.x) < 1e-4);
        let cap = o64.stats.iterations + (15 * o64.stats.iterations).div_ceil(100);
        assert!(
            oq.stats.iterations <= cap,
            "int8 iterations {} exceed f64 {} + 15%",
            oq.stats.iterations,
            o64.stats.iterations
        );
    }

    #[test]
    fn hybrid_solver_multilevel_config_end_to_end() {
        let fx = fixture();
        let ml_config = MultilevelConfig { coarsest_max_size: 60, ..Default::default() };
        let solver = HybridSolver::new(
            fx.model.clone(),
            HybridSolverConfig {
                subdomain_size: 250,
                overlap: 2,
                tolerance: 1e-6,
                multilevel: Some(ml_config.clone()),
                ..Default::default()
            },
        );
        let outcome = solver.solve(&fx.problem).unwrap();
        assert!(outcome.stats.converged());
        assert!(
            krylov::true_relative_residual(&fx.problem.matrix, &outcome.x, &fx.problem.rhs) < 1e-5
        );
        let exact = solver.solve_with_exact_local_solver(&fx.problem).unwrap();
        assert!(exact.stats.converged());
        assert!(sparse::vector::relative_error(&exact.x, &outcome.x) < 1e-4);
        // The free functions drive the same multilevel paths.
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let subdomains = partition_mesh_with_overlap(&fx.problem.mesh, 250, 2, 0);
        let lu_ml =
            solve_ddm_lu_multilevel(&fx.problem, subdomains.clone(), &ml_config, &opts).unwrap();
        let gnn_ml = solve_ddm_gnn_multilevel(
            &fx.problem,
            subdomains,
            Arc::new(fx.model.clone()),
            &ml_config,
            Precision::F64,
            &opts,
        )
        .unwrap();
        assert!(lu_ml.stats.converged() && gnn_ml.stats.converged());
        assert!(lu_ml.stats.iterations <= gnn_ml.stats.iterations);
    }

    #[test]
    fn resilient_config_is_transparent_when_fault_free() {
        let fx = fixture();
        let base = HybridSolverConfig {
            subdomain_size: 250,
            overlap: 2,
            tolerance: 1e-6,
            ..Default::default()
        };
        let plain = HybridSolver::new(fx.model.clone(), base.clone());
        let resilient = HybridSolver::new(
            fx.model.clone(),
            HybridSolverConfig { resilience: Some(ResiliencePolicy::default()), ..base },
        );
        let p = plain.solve(&fx.problem).unwrap();
        let r = resilient.solve(&fx.problem).unwrap();
        assert!(p.stats.converged() && r.stats.converged());
        // The guards only read r/z, so a fault-free supervised solve is
        // bit-identical to the unsupervised one.
        assert_eq!(p.x, r.x);
        assert_eq!(p.stats.iterations, r.stats.iterations);
        assert!(!r.stats.degraded(), "fault-free solve reported faults: {:?}", r.stats.faults);
        assert_eq!(r.stats.faults.final_tier(), Some("ddm-gnn-2level"));
    }

    #[test]
    fn timed_preconditioner_accumulates() {
        let fx = fixture();
        let inner = krylov::JacobiPreconditioner::new(&fx.problem.matrix);
        let timed = TimedPreconditioner::new(inner);
        let r = fx.problem.rhs.clone();
        let mut z = vec![0.0; r.len()];
        assert_eq!(timed.seconds(), 0.0);
        timed.apply(&r, &mut z);
        timed.apply(&r, &mut z);
        assert!(timed.seconds() > 0.0);
        assert_eq!(timed.dim(), r.len());
        assert_eq!(timed.name(), "jacobi");
        assert_eq!(timed.inner().dim(), r.len());
        // The batched apply is timed too, and forwards to the inner batch path.
        let before = timed.seconds();
        let mut z0 = vec![0.0; r.len()];
        let mut z1 = vec![0.0; r.len()];
        let rs: Vec<&[f64]> = vec![&r, &r];
        let mut zs: Vec<&mut [f64]> = vec![&mut z0, &mut z1];
        timed.apply_batch(&rs, &mut zs);
        assert!(timed.seconds() > before);
        assert_eq!(z0, z);
        assert_eq!(z1, z);
    }

    #[test]
    fn batched_solve_matches_sequential_solves_bitwise() {
        let fx = fixture();
        let n = fx.problem.rhs.len();
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(500);
        let model = Arc::new(fx.model.clone());
        // Three distinct right-hand sides: the assembled one and two shifts.
        let b0 = fx.problem.rhs.clone();
        let b1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b2: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let bs: Vec<&[f64]> = vec![&b0, &b1, &b2];
        let batch = solve_ddm_gnn_batch(
            &fx.problem,
            fx.subdomains.clone(),
            Arc::clone(&model),
            true,
            Precision::F64,
            &bs,
            &opts,
        )
        .unwrap();
        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.num_subdomains, fx.subdomains.len());
        assert!(batch.preconditioner_seconds > 0.0);
        for (c, b) in [&b0, &b1, &b2].into_iter().enumerate() {
            let problem = fem::PoissonProblem { rhs: b.clone(), ..fx.problem.clone() };
            let single =
                solve_ddm_gnn(&problem, fx.subdomains.clone(), Arc::clone(&model), true, &opts)
                    .unwrap();
            assert!(single.stats.converged());
            assert_eq!(batch.results[c].x, single.x, "column {c} solution differs");
            assert_eq!(batch.results[c].stats.iterations, single.stats.iterations);
            assert_eq!(
                batch.results[c].stats.history.norms(),
                single.stats.history.norms(),
                "column {c} residual history differs"
            );
        }
    }
}
