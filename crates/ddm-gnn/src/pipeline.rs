//! End-to-end helpers: problem generation, dataset extraction and model
//! training with one call each.
//!
//! These are the functions the examples and the benchmark harness build on,
//! so that "reproduce Table I" is a short script rather than a page of glue
//! code.

use fem::PoissonProblem;
use gnn::{
    extract_local_problems, train, DatasetConfig, DssConfig, DssModel, EvalMetrics, TrainingConfig,
    TrainingReport,
};
use meshgen::{generate_mesh, Domain, MeshingOptions, RandomBlobDomain};

/// Generate one random global Poisson problem of roughly `target_nodes` nodes,
/// following the paper's data distribution (random smooth domain, random
/// quadratic forcing and boundary data).
pub fn generate_problem(seed: u64, target_nodes: usize) -> PoissonProblem {
    let domain = RandomBlobDomain::generate(seed, 20, 1.0);
    generate_problem_on(&domain, seed, target_nodes)
}

/// Generate a Poisson problem with random data on an arbitrary domain.
pub fn generate_problem_on(domain: &dyn Domain, seed: u64, target_nodes: usize) -> PoissonProblem {
    let h = meshgen::generator::element_size_for_target_nodes(domain, target_nodes);
    let mesh = generate_mesh(domain, &MeshingOptions::with_element_size(h).seed(seed));
    PoissonProblem::with_random_data(mesh, seed.wrapping_mul(31).wrapping_add(7))
}

/// Configuration of the full training pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// DSS architecture.
    pub dss: DssConfig,
    /// Dataset extraction parameters.
    pub dataset: DatasetConfig,
    /// Training parameters.
    pub training: TrainingConfig,
    /// Model initialisation seed.
    pub model_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // CPU-sized defaults: small enough to train in tens of seconds, large
        // enough for the preconditioner to be useful.  The paper-scale
        // configuration (k̄ = 30, d = 10, 117k samples, 400 epochs) is obtained
        // by overriding these fields.
        PipelineConfig {
            dss: DssConfig { num_blocks: 8, latent_dim: 8, alpha: 1e-2 },
            dataset: DatasetConfig {
                num_global_problems: 3,
                target_nodes: 900,
                subdomain_size: 300,
                overlap: 2,
                max_iterations_per_problem: 12,
                max_samples: Some(120),
                seed: 1,
                ..Default::default()
            },
            training: TrainingConfig { epochs: 40, batch_size: 16, seed: 2, ..Default::default() },
            model_seed: 3,
        }
    }
}

/// A trained model together with its training and evaluation records.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained DSS model.
    pub model: DssModel,
    /// Per-epoch loss history.
    pub report: TrainingReport,
    /// Metrics on the held-back evaluation split (Table II format).
    pub metrics: EvalMetrics,
    /// Number of training samples used.
    pub num_samples: usize,
}

/// Locate and load the pre-trained DSS model shipped with the repository.
///
/// The search order is: the `DDM_GNN_MODEL` environment variable, then the
/// workspace-level `assets/pretrained_k16_d10.dss` (produced by
/// `cargo run --release --example train_dss` with `DSS_MODEL_OUT` set).
/// Returns `None` when no model file can be found or parsed, in which case
/// callers typically fall back to training a small model on the fly.
pub fn load_pretrained() -> Option<DssModel> {
    let candidates: Vec<std::path::PathBuf> = {
        let mut paths = Vec::new();
        if let Ok(p) = std::env::var("DDM_GNN_MODEL") {
            paths.push(std::path::PathBuf::from(p));
        }
        let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        paths.push(manifest.join("../../assets/pretrained_k16_d10.dss"));
        paths.push(std::path::PathBuf::from("assets/pretrained_k16_d10.dss"));
        paths
    };
    for path in candidates {
        if path.exists() {
            if let Ok(model) = gnn::io::load_model(&path) {
                return Some(model);
            }
        }
    }
    None
}

/// Run the full pipeline: extract a dataset, train a DSS model, evaluate it.
pub fn train_model(config: &PipelineConfig) -> TrainedModel {
    let samples = extract_local_problems(&config.dataset);
    train_model_on_samples(config, samples)
}

/// Run the pipeline on a multi-size dataset: one extraction pass per
/// sub-domain size in `subdomain_sizes` (each with a distinct seed), then a
/// single training run over the merged samples.
///
/// The preconditioner is routinely applied to sub-domains whose size differs
/// from the training distribution (Table I varies 120–2000 nodes); mixing
/// sizes in the dataset is the paper's recipe for making one model serve all
/// of them.
pub fn train_model_multi_size(config: &PipelineConfig, subdomain_sizes: &[usize]) -> TrainedModel {
    assert!(!subdomain_sizes.is_empty(), "need at least one sub-domain size");
    let per_size: Vec<Vec<gnn::TrainingSample>> = subdomain_sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let dataset = gnn::DatasetConfig {
                subdomain_size: size,
                target_nodes: config.dataset.target_nodes.max(size * 3),
                seed: config.dataset.seed.wrapping_add(1000 * i as u64),
                ..config.dataset.clone()
            };
            extract_local_problems(&dataset)
        })
        .collect();
    // Round-robin interleave across sizes so the evaluation tail held back by
    // [`train_model_on_samples`] (and any truncation) spans every size rather
    // than only the last one.
    let total: usize = per_size.iter().map(Vec::len).sum();
    let mut queues: Vec<std::vec::IntoIter<gnn::TrainingSample>> =
        per_size.into_iter().map(Vec::into_iter).collect();
    let mut samples = Vec::with_capacity(total);
    while samples.len() < total {
        for queue in &mut queues {
            if let Some(sample) = queue.next() {
                samples.push(sample);
            }
        }
    }
    train_model_on_samples(config, samples)
}

/// Train and evaluate on an already-extracted dataset (~20% held back for
/// evaluation).
pub fn train_model_on_samples(
    config: &PipelineConfig,
    samples: Vec<gnn::TrainingSample>,
) -> TrainedModel {
    assert!(!samples.is_empty(), "dataset extraction produced no samples");
    // Hold back ~20% of the samples for evaluation.
    let split = (samples.len() * 4) / 5;
    let split = split.max(1).min(samples.len());
    let (train_samples, eval_samples) = samples.split_at(split);
    let eval_samples = if eval_samples.is_empty() { train_samples } else { eval_samples };

    let mut model = DssModel::new(config.dss, config.model_seed);
    let report = train(&mut model, train_samples, &config.training);
    let metrics = gnn::evaluate(&model, eval_samples);
    TrainedModel { model, report, metrics, num_samples: samples.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_problem_scales_with_target() {
        let small = generate_problem(1, 400);
        let large = generate_problem(1, 1600);
        assert!(small.num_unknowns() > 200 && small.num_unknowns() < 800);
        let ratio = large.num_unknowns() as f64 / small.num_unknowns() as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
        assert!(small.matrix.is_symmetric(1e-9));
    }

    #[test]
    fn multi_size_dataset_interleaves_sizes() {
        let config = PipelineConfig {
            dss: DssConfig { num_blocks: 2, latent_dim: 4, alpha: 0.1 },
            dataset: DatasetConfig {
                num_global_problems: 1,
                target_nodes: 400,
                subdomain_size: 100,
                overlap: 1,
                max_iterations_per_problem: 4,
                max_samples: Some(10),
                seed: 31,
                ..Default::default()
            },
            training: TrainingConfig { epochs: 2, batch_size: 8, seed: 32, ..Default::default() },
            model_seed: 33,
        };
        let trained = train_model_multi_size(&config, &[100, 180]);
        assert!(trained.num_samples > 10, "both sizes must contribute samples");
        assert!(trained.metrics.residual_mean.is_finite());
    }

    #[test]
    fn pipeline_trains_a_useful_model() {
        let config = PipelineConfig {
            dss: DssConfig { num_blocks: 4, latent_dim: 6, alpha: 1e-2 },
            dataset: DatasetConfig {
                num_global_problems: 1,
                target_nodes: 500,
                subdomain_size: 150,
                overlap: 2,
                max_iterations_per_problem: 8,
                max_samples: Some(40),
                seed: 11,
                ..Default::default()
            },
            training: TrainingConfig { epochs: 15, batch_size: 10, seed: 12, ..Default::default() },
            model_seed: 13,
        };
        let trained = train_model(&config);
        assert!(trained.num_samples > 10);
        assert_eq!(trained.report.train_losses.len(), 15);
        assert!(
            trained.report.final_train_loss() < trained.report.train_losses[0],
            "training must reduce the loss"
        );
        assert!(trained.metrics.residual_mean.is_finite());
        assert!(
            trained.metrics.residual_mean < 1.0,
            "residual should drop below the trivial level"
        );
    }
}
