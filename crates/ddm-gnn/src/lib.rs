//! DDM-GNN: the multi-level GNN preconditioner and hybrid solver — the
//! paper's primary contribution (Section III).
//!
//! The preconditioner replaces the exact local solves of the two-level
//! Additive Schwarz Method with inference of a trained Deep Statistical
//! Solver, keeping the Nicolaides coarse correction:
//!
//! ```text
//! z  =  R₀ᵀ (R₀ A R₀ᵀ)⁻¹ R₀ r                     (coarse problem, LU)
//!     + Σᵢ Rᵢᵀ ‖Rᵢ r‖ · DSSθ(Ωₕ,ᵢ, Rᵢ r / ‖Rᵢ r‖)   (local problems, GNN)
//! ```
//!
//! (Eq. 13–16).  Used inside the Preconditioned Conjugate Gradient method this
//! yields a hybrid solver that converges to any tolerance while the
//! preconditioner runs as batched, data-parallel GNN inference.
//!
//! * [`preconditioner::DdmGnnPreconditioner`] — the operator above,
//! * [`solver`] — the [`solver::HybridSolver`] public API plus the baseline
//!   drivers (plain CG, IC(0), DDM-LU) used throughout the paper's evaluation,
//! * [`pipeline`] — end-to-end helpers: problem generation, dataset
//!   extraction, model training and evaluation with one call each.

// Library code must not panic via unwrap — the apply path runs under
// `catch_unwind` containment whose soundness argument assumes poison-free
// recovery (detlint enforces the wider contract; clippy carries this slice).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod pipeline;
pub mod preconditioner;
pub mod solver;

pub use ddm::{MultilevelConfig, SmootherKind, SmootherPrecision};
pub use gnn::Precision;
pub use krylov::{
    DegradationLadder, FaultEvent, FaultInjectingPreconditioner, FaultKind, FaultLog,
    GuardedPreconditioner, InjectedFault, ResiliencePolicy,
};
pub use pipeline::{
    generate_problem, load_pretrained, train_model, train_model_multi_size, train_model_on_samples,
    PipelineConfig, TrainedModel,
};
pub use preconditioner::DdmGnnPreconditioner;
pub use solver::{
    build_resilience_tiers, solve_cg, solve_ddm_gnn, solve_ddm_gnn_batch, solve_ddm_gnn_multilevel,
    solve_ddm_gnn_resilient, solve_ddm_gnn_with_precision, solve_ddm_lu, solve_ddm_lu_multilevel,
    solve_ic0, solve_with_ladder, BatchSolveOutcome, HybridSolver, HybridSolverConfig, Method,
    SolveOutcome, TimedPreconditioner,
};

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture: a small global problem, its decomposition and a tiny
    //! trained model (trained just enough to be a useful preconditioner).
    use fem::PoissonProblem;
    use gnn::{DssConfig, DssModel};
    use meshgen::{generate_mesh, MeshingOptions, RandomBlobDomain};
    use partition::partition_mesh_with_overlap;
    use std::sync::OnceLock;

    pub struct Fixture {
        pub problem: PoissonProblem,
        pub subdomains: Vec<Vec<usize>>,
        pub model: DssModel,
    }

    /// A small fixture shared by the tests in this crate.  It prefers the
    /// pre-trained model shipped in `assets/` (produced by the `train_dss`
    /// example); when that file is absent it falls back to training a small
    /// model on the fly so the test-suite stays self-contained.
    pub fn fixture() -> &'static Fixture {
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let domain = RandomBlobDomain::generate(23, 20, 1.0);
            let h = meshgen::generator::element_size_for_target_nodes(&domain, 1100);
            let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(23));
            let subdomains = partition_mesh_with_overlap(&mesh, 200, 2, 0);
            let problem = PoissonProblem::with_random_data(mesh, 31);
            let model = crate::pipeline::load_pretrained().unwrap_or_else(fallback_model);
            Fixture { problem, subdomains, model }
        })
    }

    /// Quick fallback training used only when the shipped model is missing.
    fn fallback_model() -> DssModel {
        let samples = gnn::extract_local_problems(&gnn::DatasetConfig {
            num_global_problems: 2,
            target_nodes: 800,
            subdomain_size: 200,
            overlap: 2,
            max_iterations_per_problem: 12,
            max_samples: Some(90),
            seed: 77,
            ..Default::default()
        });
        let mut model =
            DssModel::new(DssConfig { num_blocks: 12, latent_dim: 10, alpha: 1.0 / 12.0 }, 3);
        let config = gnn::TrainingConfig {
            epochs: 40,
            batch_size: 12,
            adam: gnn::AdamConfig {
                learning_rate: 5e-3,
                clip_norm: Some(1.0),
                ..Default::default()
            },
            validation_fraction: 0.15,
            seed: 5,
            ..Default::default()
        };
        gnn::train(&mut model, &samples, &config);
        model
    }
}
