//! Criterion micro-benchmarks of the computational kernels underlying the
//! hybrid solver: sparse matrix–vector products, FEM assembly, mesh
//! partitioning, local factorisations and GNN inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddm_gnn::generate_problem;
use gnn::{DssConfig, DssModel};
use partition::partition_mesh_with_overlap;
use sparse::SkylineCholesky;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for &n in &[2_000usize, 8_000] {
        let problem = generate_problem(1, n);
        let x = vec![1.0; problem.num_unknowns()];
        let mut y = vec![0.0; problem.num_unknowns()];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| problem.matrix.spmv_into(&x, &mut y));
        });
    }
    group.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("fem_assembly");
    group.sample_size(20);
    for &n in &[2_000usize, 8_000] {
        let problem = generate_problem(2, n);
        let mesh = problem.mesh.clone();
        let nn = mesh.num_nodes();
        let f = vec![1.0; nn];
        let g = vec![0.0; nn];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fem::assemble_poisson(&mesh, &f, &g));
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_with_overlap");
    group.sample_size(20);
    let problem = generate_problem(3, 8_000);
    for &ns in &[100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(ns), &ns, |b, _| {
            b.iter(|| partition_mesh_with_overlap(&problem.mesh, ns, 2, 0));
        });
    }
    group.finish();
}

fn bench_local_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_cholesky_factor");
    group.sample_size(30);
    let problem = generate_problem(4, 3_000);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
    let local = problem.matrix.principal_submatrix(&subdomains[0]);
    group.bench_function(format!("n={}", local.nrows()), |b| {
        b.iter(|| SkylineCholesky::factor(&local).unwrap());
    });
    let chol = SkylineCholesky::factor(&local).unwrap();
    let rhs = vec![1.0; local.nrows()];
    group.bench_function(format!("solve_n={}", local.nrows()), |b| {
        b.iter(|| chol.solve(&rhs).unwrap());
    });
    group.finish();
}

fn bench_dss_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("dss_inference");
    group.sample_size(20);
    let samples = gnn::extract_local_problems(&gnn::DatasetConfig {
        num_global_problems: 1,
        target_nodes: 800,
        subdomain_size: 200,
        overlap: 2,
        max_iterations_per_problem: 2,
        max_samples: Some(4),
        seed: 1,
        ..Default::default()
    });
    let graph = samples.into_iter().next().expect("at least one sample");
    for &(kbar, d) in &[(5usize, 5usize), (10, 10), (16, 10)] {
        let model = DssModel::new(DssConfig { num_blocks: kbar, latent_dim: d, alpha: 1e-3 }, 0);
        group.bench_function(format!("k{kbar}_d{d}_n{}", graph.num_nodes()), |b| {
            b.iter(|| model.infer(&graph));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_assembly,
    bench_partitioning,
    bench_local_cholesky,
    bench_dss_inference
);
criterion_main!(kernels);
