//! Criterion benchmarks of one preconditioner application: IC(0), two-level
//! DDM-LU and DDM-GNN on the same problem and decomposition — the per-
//! iteration cost behind the `T_lu` / `T_gnn` columns of Table III.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use ddm::{AdditiveSchwarz, AsmLevel};
use ddm_gnn::{generate_problem, DdmGnnPreconditioner};
use gnn::{DssConfig, DssModel};
use krylov::{Ic0Preconditioner, Preconditioner};
use partition::partition_mesh_with_overlap;

fn bench_preconditioner_apply(c: &mut Criterion) {
    let problem = generate_problem(11, 4_000);
    let n = problem.num_unknowns();
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 200, 2, 0);
    let r = problem.rhs.clone();
    let mut z = vec![0.0; n];

    let mut group = c.benchmark_group("preconditioner_apply");
    group.sample_size(20);

    let ic0 = Ic0Preconditioner::new(&problem.matrix).unwrap();
    group.bench_function("ic0", |b| b.iter(|| ic0.apply(&r, &mut z)));

    let asm =
        AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel).unwrap();
    group.bench_function(format!("ddm_lu_k{}", subdomains.len()), |b| {
        b.iter(|| asm.apply(&r, &mut z))
    });

    // An untrained model has the same computational cost as a trained one, so
    // the benchmark does not depend on the shipped weights.
    let model = ddm_gnn::load_pretrained().unwrap_or_else(|| {
        DssModel::new(DssConfig { num_blocks: 16, latent_dim: 10, alpha: 1e-3 }, 0)
    });
    let gnn_precond =
        DdmGnnPreconditioner::new(&problem, subdomains.clone(), Arc::new(model), true).unwrap();
    group.bench_function(format!("ddm_gnn_k{}", subdomains.len()), |b| {
        b.iter(|| gnn_precond.apply(&r, &mut z))
    });

    group.finish();
}

fn bench_preconditioner_setup(c: &mut Criterion) {
    let problem = generate_problem(12, 2_000);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, 200, 2, 0);

    let mut group = c.benchmark_group("preconditioner_setup");
    group.sample_size(10);
    group.bench_function("ic0_factor", |b| {
        b.iter(|| Ic0Preconditioner::new(&problem.matrix).unwrap())
    });
    group.bench_function("ddm_lu_factor", |b| {
        b.iter(|| {
            AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel).unwrap()
        })
    });
    let model =
        Arc::new(DssModel::new(DssConfig { num_blocks: 10, latent_dim: 10, alpha: 1e-3 }, 0));
    group.bench_function("ddm_gnn_setup", |b| {
        b.iter(|| {
            DdmGnnPreconditioner::new(&problem, subdomains.clone(), Arc::clone(&model), true)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(preconditioners, bench_preconditioner_apply, bench_preconditioner_setup);
criterion_main!(preconditioners);
