//! Shared plumbing for the benchmark harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see DESIGN.md for the index).  They all print the same
//! row/series structure as the paper and additionally write a CSV under
//! `target/experiments/` for post-processing.
//!
//! The default problem sizes are scaled down from the paper so a full run
//! finishes in minutes on a laptop CPU; every binary documents the
//! environment variables that scale it back up towards the paper's sizes.

use std::fs;
use std::path::PathBuf;

use gnn::DssModel;

/// Read an integer environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a float environment variable with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Directory where the harness drops its CSV outputs.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("creating target/experiments");
    dir
}

/// Write a CSV file into [`experiments_dir`].
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(name);
    let mut content = String::with_capacity(rows.len() * 64 + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for row in rows {
        content.push_str(row);
        content.push('\n');
    }
    fs::write(&path, content).expect("writing experiment CSV");
    println!("\n[csv] {}", path.display());
    path
}

/// Load the shipped pre-trained DSS model, or train a small one on the fly.
pub fn load_or_train_model() -> DssModel {
    match ddm_gnn::load_pretrained() {
        Some(model) => {
            println!(
                "using pre-trained DSS model: k̄ = {}, d = {}, {} weights",
                model.config().num_blocks,
                model.config().latent_dim,
                model.num_params()
            );
            model
        }
        None => {
            println!(
                "no pre-trained model found — training a small model first (see train_dss example)"
            );
            ddm_gnn::train_model(&ddm_gnn::PipelineConfig::default()).model
        }
    }
}

/// Mean and standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Format a `mean ± std` cell the way the paper's tables do.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{:.0}±{:.0}", mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_fall_back_to_defaults() {
        assert_eq!(env_usize("DDM_GNN_BENCH_UNSET_VAR", 7), 7);
        assert_eq!(env_f64("DDM_GNN_BENCH_UNSET_VAR", 2.5), 2.5);
    }

    #[test]
    fn mean_std_and_pm_formatting() {
        let (m, s) = mean_std(&[10.0, 12.0, 14.0]);
        assert!((m - 12.0).abs() < 1e-12);
        assert!(s > 1.0 && s < 2.0);
        assert_eq!(pm(22.4, 1.2), "22±1");
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn csv_writer_creates_files() {
        let path = write_csv("unit_test.csv", "a,b", &["1,2".to_string(), "3,4".to_string()]);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4\n"));
        std::fs::remove_file(path).ok();
    }
}
