//! Table II — DSS metrics as a function of the architecture (k̄, d).
//!
//! Trains one DSS model per (k̄, d) pair on the same extracted dataset and
//! reports the test residual, the relative error against exact local solves,
//! and the number of weights — the three columns of the paper's Table II.
//!
//! Environment variables:
//! * `T2_EPOCHS`   — training epochs per model, default 25 (paper: 400)
//! * `T2_SAMPLES`  — dataset size, default 150 (paper: 117 138)
//! * `T2_SUBSIZE`  — sub-domain size, default 200 (paper: ~1000)
//! * `T2_FULL=1`   — use the paper's full (k̄, d) grid instead of the reduced
//!                   default grid

use bench::{env_usize, write_csv};
use gnn::{
    evaluate, extract_local_problems, train, AdamConfig, DatasetConfig, DssConfig, DssModel,
    TrainingConfig,
};

fn main() {
    let epochs = env_usize("T2_EPOCHS", 25);
    let samples_cap = env_usize("T2_SAMPLES", 150);
    let subsize = env_usize("T2_SUBSIZE", 200);
    let full_grid = std::env::var("T2_FULL").map(|v| v == "1").unwrap_or(false);

    let grid: Vec<(usize, usize)> = if full_grid {
        vec![
            (5, 5),
            (5, 10),
            (5, 20),
            (10, 5),
            (10, 10),
            (10, 20),
            (20, 5),
            (20, 10),
            (20, 20),
            (30, 10),
        ]
    } else {
        vec![(5, 5), (5, 10), (10, 5), (10, 10), (16, 10)]
    };

    println!("extracting dataset (sub-domain size ~{subsize}, cap {samples_cap} samples)...");
    let samples = extract_local_problems(&DatasetConfig {
        num_global_problems: 4,
        target_nodes: subsize * 4,
        subdomain_size: subsize,
        overlap: 2,
        max_iterations_per_problem: 15,
        max_samples: Some(samples_cap),
        seed: 1,
        ..Default::default()
    });
    let split = (samples.len() * 4) / 5;
    let (train_set, test_set) = samples.split_at(split.max(1).min(samples.len() - 1));
    println!("dataset: {} training / {} test samples", train_set.len(), test_set.len());

    println!("\nTABLE II — DSS metrics for varying k̄ and d ({epochs} epochs each)");
    println!(
        "{:>4} {:>4} | {:>18} {:>18} {:>12}",
        "k̄", "d", "residual (1e-2)", "relative error", "weights"
    );
    let mut csv_rows = Vec::new();
    for (kbar, d) in grid {
        let mut model = DssModel::new(
            DssConfig { num_blocks: kbar, latent_dim: d, alpha: 1.0 / kbar as f64 },
            3,
        );
        let config = TrainingConfig {
            epochs,
            batch_size: 16,
            adam: AdamConfig { learning_rate: 5e-3, clip_norm: Some(1.0), ..Default::default() },
            validation_fraction: 0.15,
            lr_patience: 8,
            lr_factor: 0.3,
            seed: 2,
            log_every: 0,
        };
        let start = std::time::Instant::now();
        train(&mut model, train_set, &config);
        let metrics = evaluate(&model, test_set);
        println!(
            "{:>4} {:>4} | {:>8.2} ± {:<7.2} {:>8.2} ± {:<7.2} {:>12}   ({:.0}s)",
            kbar,
            d,
            metrics.residual_mean * 100.0,
            metrics.residual_std * 100.0,
            metrics.relative_error_mean,
            metrics.relative_error_std,
            model.num_params(),
            start.elapsed().as_secs_f64()
        );
        csv_rows.push(format!(
            "{kbar},{d},{:.5},{:.5},{:.5},{:.5},{}",
            metrics.residual_mean,
            metrics.residual_std,
            metrics.relative_error_mean,
            metrics.relative_error_std,
            model.num_params()
        ));
    }

    write_csv(
        "table2_dss_metrics.csv",
        "kbar,d,residual_mean,residual_std,relative_error_mean,relative_error_std,num_weights",
        &csv_rows,
    );
}
