//! Fig. 5 — convergence on the large, out-of-distribution "Formula-1" mesh.
//!
//! Meshes the F1 silhouette with holes, partitions it into sub-domains of the
//! training size, and records the relative residual history of PCG-DDM-GNN,
//! PCG-DDM-LU and CG down to 1e-9 — the three curves of the paper's Fig. 5b.
//!
//! Environment variables:
//! * `F5_TARGET_NODES` — mesh size, default 12 000 (paper: 233 246)
//! * `F5_SUBSIZE`      — sub-domain size, default 200 (paper: ~1000)

use std::sync::Arc;

use bench::{env_usize, load_or_train_model, write_csv};
use ddm_gnn::{solve_cg, solve_ddm_gnn, solve_ddm_lu};
use fem::PoissonProblem;
use krylov::SolverOptions;
use meshgen::{generate_mesh, FormulaOneDomain, MeshingOptions};
use partition::partition_mesh_with_overlap;

fn main() {
    let target_nodes = env_usize("F5_TARGET_NODES", 12_000);
    let subsize = env_usize("F5_SUBSIZE", 200);

    let domain = FormulaOneDomain::new(1.0);
    let h = meshgen::generator::element_size_for_target_nodes(&domain, target_nodes);
    let mesh = generate_mesh(&domain, &MeshingOptions::with_element_size(h).seed(1));
    println!(
        "Formula-1 mesh: {} nodes, {} triangles ({} boundary nodes)",
        mesh.num_nodes(),
        mesh.num_triangles(),
        mesh.num_boundary_nodes()
    );
    let problem = PoissonProblem::with_random_data(mesh, 5);
    let subdomains = partition_mesh_with_overlap(&problem.mesh, subsize, 2, 0);
    println!("partitioned into {} sub-domains (Fig. 5a)", subdomains.len());

    let model = Arc::new(load_or_train_model());
    let opts = SolverOptions::with_tolerance(1e-9).max_iterations(50_000);

    let gnn = solve_ddm_gnn(&problem, subdomains.clone(), model, true, &opts).expect("DDM-GNN");
    let lu = solve_ddm_lu(&problem, subdomains, true, &opts).expect("DDM-LU");
    let cg = solve_cg(&problem, &opts);

    println!("\nFIG. 5b — iterations to relative residual 1e-9");
    for outcome in [&gnn, &lu, &cg] {
        println!(
            "  {:<8} {:>7} iterations  ({:.2}s, converged: {})",
            outcome.method.name(),
            outcome.stats.iterations,
            outcome.total_seconds,
            outcome.stats.converged()
        );
    }

    // Residual histories as CSV (one row per iteration, empty cells once a
    // method has converged).
    let histories =
        [gnn.stats.history.relative(), lu.stats.history.relative(), cg.stats.history.relative()];
    let longest = histories.iter().map(|h| h.len()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(longest);
    for i in 0..longest {
        let cell = |h: &Vec<f64>| h.get(i).map(|v| format!("{v:e}")).unwrap_or_default();
        rows.push(format!(
            "{i},{},{},{}",
            cell(&histories[0]),
            cell(&histories[1]),
            cell(&histories[2])
        ));
    }
    write_csv("fig5_f1_convergence.csv", "iteration,ddm_gnn,ddm_lu,cg", &rows);
}
