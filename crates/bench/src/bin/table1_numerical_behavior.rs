//! Table I — Numerical behaviour of the hybrid solver.
//!
//! For several global problem sizes `N`, sub-domain sizes `Ns` and overlaps,
//! solve random Poisson problems to a relative residual of 1e-6 with
//! PCG-DDM-GNN, PCG-DDM-LU and plain CG, and report the mean ± std iteration
//! counts — the exact structure of the paper's Table I.
//!
//! Environment variables (defaults are CPU-sized; paper-sized values in
//! parentheses):
//! * `T1_PROBLEMS`   — problems per configuration, default 3 (paper: 100)
//! * `T1_SIZES`      — comma-separated global sizes, default `800,2000,6000`
//!                     (paper: 2632, 7148, 33969)
//! * `T1_SUBSIZES`   — comma-separated sub-domain sizes, default `100,200,400`
//!                     (paper: 500, 1000, 2000)

use std::sync::Arc;

use bench::{env_usize, load_or_train_model, mean_std, pm, write_csv};
use ddm_gnn::{generate_problem, solve_cg, solve_ddm_gnn, solve_ddm_lu};
use krylov::SolverOptions;
use partition::partition_mesh_with_overlap;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let num_problems = env_usize("T1_PROBLEMS", 3);
    let sizes = env_list("T1_SIZES", &[800, 2000, 6000]);
    let subsizes = env_list("T1_SUBSIZES", &[100, 200, 400]);
    let base_subsize = subsizes[subsizes.len() / 2];
    let model = Arc::new(load_or_train_model());
    let opts = SolverOptions::with_tolerance(1e-6).max_iterations(20_000);

    println!("\nTABLE I — Numerical behaviour (iterations to relative residual 1e-6)");
    println!(
        "{:>8} {:>6} {:>5} {:>8} | {:>12} {:>12} {:>12}",
        "N", "Ns", "K", "overlap", "DDM-GNN", "DDM-LU", "CG"
    );
    let mut csv_rows = Vec::new();

    for &target_n in &sizes {
        // Configurations mirror the paper: every sub-domain size at overlap 2,
        // plus the baseline sub-domain size at overlap 4.
        let mut configs: Vec<(usize, usize)> = subsizes.iter().map(|&ns| (ns, 2)).collect();
        configs.insert(1.min(configs.len()), (base_subsize, 4));

        for (ns, overlap) in configs {
            let mut iters_gnn = Vec::new();
            let mut iters_lu = Vec::new();
            let mut iters_cg = Vec::new();
            let mut ks = Vec::new();
            let mut actual_n = Vec::new();
            for p in 0..num_problems {
                let seed = 1000 + p as u64 + target_n as u64;
                let problem = generate_problem(seed, target_n);
                actual_n.push(problem.num_unknowns() as f64);
                let subdomains = partition_mesh_with_overlap(&problem.mesh, ns, overlap, seed);
                ks.push(subdomains.len() as f64);
                let gnn =
                    solve_ddm_gnn(&problem, subdomains.clone(), Arc::clone(&model), true, &opts)
                        .expect("DDM-GNN solve");
                let lu = solve_ddm_lu(&problem, subdomains, true, &opts).expect("DDM-LU solve");
                let cg = solve_cg(&problem, &opts);
                assert!(gnn.stats.converged() && lu.stats.converged() && cg.stats.converged());
                iters_gnn.push(gnn.stats.iterations as f64);
                iters_lu.push(lu.stats.iterations as f64);
                iters_cg.push(cg.stats.iterations as f64);
            }
            let (ng, sg) = mean_std(&iters_gnn);
            let (nl, sl) = mean_std(&iters_lu);
            let (nc, sc) = mean_std(&iters_cg);
            let (nm, _) = mean_std(&actual_n);
            let (km, _) = mean_std(&ks);
            println!(
                "{:>8.0} {:>6} {:>5.0} {:>8} | {:>12} {:>12} {:>12}",
                nm,
                ns,
                km,
                overlap,
                pm(ng, sg),
                pm(nl, sl),
                pm(nc, sc)
            );
            csv_rows.push(format!(
                "{nm:.0},{ns},{km:.0},{overlap},{ng:.1},{sg:.1},{nl:.1},{sl:.1},{nc:.1},{sc:.1}"
            ));
        }
    }

    write_csv(
        "table1_numerical_behavior.csv",
        "N,Ns,K,overlap,ddm_gnn_mean,ddm_gnn_std,ddm_lu_mean,ddm_lu_std,cg_mean,cg_std",
        &csv_rows,
    );
}
