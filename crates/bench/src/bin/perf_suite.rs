//! End-to-end performance suite for the parallel runtime.
//!
//! Times the four hot paths of the hybrid solver — sparse SpMV, the Additive
//! Schwarz (DDM-LU) preconditioner application, the DDM-GNN preconditioner
//! application and full PCG solves — across several problem sizes and thread
//! counts, and writes the results to `BENCH_parallel.json` so future changes
//! have a measured trajectory to beat.
//!
//! Because the rayon shim reads `RAYON_NUM_THREADS` once per process, the
//! suite re-executes itself: the parent spawns one child per thread count
//! (`PERF_SUITE_CHILD=1`), each child prints `PERF key=value ...` records on
//! stdout, and the parent aggregates them, cross-checks that the residual
//! histories are **bit-identical** at every thread count (the shim's
//! determinism contract) and emits the JSON report.
//!
//! Besides the end-to-end report the suite writes a per-layer breakdown of
//! the GNN inference engine (`BENCH_gnn_inference.json`): node GEMMs, edge
//! GEMM, aggregation, Ψ update and decoder, measured by
//! [`DdmGnnPreconditioner::apply_timed`] over whole preconditioner
//! applications.  Every GNN measurement (apply kernel, per-layer stages,
//! plan memory, e2e solve) runs once per inference precision — the f64
//! engine, the f32/SIMD engine and the quantised int8/bf16 engine — and the
//! rows are tagged `precision=f64|f32|int8`; the per-layer report closes
//! with the per-problem f32-vs-f64 and int8-vs-f32 apply speedups and the
//! int8-vs-f32 plan-memory ratios.
//!
//! Usage:
//!   cargo run --release -p bench --bin perf_suite
//! Environment:
//!   PERF_SUITE_THREADS   comma-separated thread counts   (default "1,2,4")
//!   PERF_SUITE_SIZES     comma-separated target node counts
//!                        (default "3000,9000,24000")
//!   PERF_SUITE_PRECISIONS comma-separated GNN inference precisions
//!                        (default "f64,f32,int8")
//!   PERF_SUITE_OUT       output path (default "BENCH_parallel.json")
//!   PERF_SUITE_GNN_OUT   per-layer report path (default "BENCH_gnn_inference.json")
//!   PERF_SUITE_SMOKE     when set: tiny problem, two thread counts, short
//!                        calibration floors — a CI smoke run that exercises
//!                        the whole harness (including the determinism
//!                        cross-check and both reports) in well under a
//!                        minute of measurement time

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::Command;
use std::time::{Duration, Instant};

use ddm::{AdditiveSchwarz, AsmLevel};
use ddm_gnn::{
    build_resilience_tiers, generate_problem, load_pretrained, solve_with_ladder,
    DdmGnnPreconditioner, DegradationLadder, FaultInjectingPreconditioner, HybridSolverConfig,
    InjectedFault, Precision, ResiliencePolicy,
};
use gnn::InferenceTimings;
use krylov::{preconditioned_conjugate_gradient, Preconditioner, SolverOptions};
use partition::partition_mesh_with_overlap;

fn smoke_mode() -> bool {
    std::env::var("PERF_SUITE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// GNN inference precisions to measure (`PERF_SUITE_PRECISIONS`, default
/// all three).
fn precision_list() -> Vec<Precision> {
    std::env::var("PERF_SUITE_PRECISIONS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.parse().expect("bad PERF_SUITE_PRECISIONS entry"))
                .collect::<Vec<Precision>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![Precision::F64, Precision::F32, Precision::Int8])
}

fn main() {
    if std::env::var("PERF_SUITE_CHILD").is_ok() {
        child();
    } else {
        parent();
    }
}

// ---------------------------------------------------------------------------
// Child: measure at the current RAYON_NUM_THREADS
// ---------------------------------------------------------------------------

/// FNV-1a over the bit patterns of a float sequence — the determinism witness.
fn hash_f64s(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Median/min per-call time: calibrate the batch size once (≥ `floor` per
/// batch), then take `samples` equally sized samples.
///
/// Mirrors the criterion shim's `Bencher::iter` algorithm but is kept local
/// on purpose: the shim only exposes upstream criterion's API so the
/// workspace can swap back to the registry crate without source changes, and
/// upstream has no callable calibrate-and-sample helper.
fn time_kernel<F: FnMut()>(mut f: F, floor: Duration, samples: usize) -> (u64, u64) {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= floor || iters >= 1 << 20 {
            break;
        }
        let projected = if elapsed.is_zero() {
            iters * 8
        } else {
            (floor.as_nanos() as u64).saturating_mul(iters) / (elapsed.as_nanos() as u64).max(1) + 1
        };
        // Grow at least 2× but never past the cap (`clamp` would panic when
        // the lower bound exceeds the cap).
        iters = projected.max(iters * 2).min(1 << 20);
    }
    let mut per_call: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            (start.elapsed().as_nanos() as u64) / iters
        })
        .collect();
    per_call.sort_unstable();
    (per_call[per_call.len() / 2], per_call[0])
}

fn child() {
    let threads = rayon::current_num_threads();
    let smoke = smoke_mode();
    let default_sizes: &[usize] = if smoke { &[800] } else { &[3000, 9000, 24000] };
    let sizes = env_list("PERF_SUITE_SIZES", default_sizes);
    let model = load_pretrained().map(std::sync::Arc::new);
    let floor = Duration::from_millis(if smoke { 5 } else { 25 });
    let mut fault_recovery_done = false;

    for (pi, &target) in sizes.iter().enumerate() {
        let problem = generate_problem(1 + pi as u64, target);
        let n = problem.num_unknowns();
        let nnz = problem.matrix.nnz();
        // Sub-domains of ~300 nodes, overlap 2 (the paper's configuration).
        let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
        let k = subdomains.len();
        println!("PERF kind=problem idx={pi} n={n} nnz={nnz} subdomains={k} threads={threads}");

        // SpMV.
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        let (med, min) = time_kernel(|| problem.matrix.spmv_into(&x, &mut y), floor, 7);
        println!("PERF kind=kernel name=spmv idx={pi} n={n} threads={threads} median_ns={med} min_ns={min}");

        // ASM (DDM-LU two-level) apply.
        let asm = AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel)
            .expect("ASM setup failed");
        let r = problem.rhs.clone();
        let mut z = vec![0.0; n];
        let (med, min) = time_kernel(|| asm.apply(&r, &mut z), floor, 7);
        println!("PERF kind=kernel name=asm_apply idx={pi} n={n} threads={threads} median_ns={med} min_ns={min}");

        // End-to-end PCG solves (2 runs, min wall time; history hashed for
        // the cross-thread-count determinism check).
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(4000);
        let e2e = |name: &str, precond: &dyn Preconditioner| {
            let mut best_ms = f64::INFINITY;
            let mut record = None;
            for _ in 0..2 {
                let start = Instant::now();
                let result = preconditioned_conjugate_gradient(
                    &problem.matrix,
                    &problem.rhs,
                    None,
                    precond,
                    &opts,
                );
                let ms = start.elapsed().as_secs_f64() * 1e3;
                assert!(result.stats.converged(), "{name} failed to converge on n={n}");
                if ms < best_ms {
                    best_ms = ms;
                }
                let hash = hash_f64s(
                    result.stats.history.norms().iter().copied().chain(result.x.iter().copied()),
                );
                record = Some((result.stats.iterations, hash));
            }
            let (iterations, hash) = record.unwrap();
            println!(
                "PERF kind=e2e solver={name} idx={pi} n={n} threads={threads} wall_ms={best_ms:.3} iterations={iterations} hash={hash:016x}"
            );
        };
        e2e("pcg-ddm-lu-2level", &asm);

        // GNN preconditioner: apply kernel, per-layer breakdown and e2e PCG,
        // once per inference precision.  The preconditioners are built one at
        // a time so only one plan set (hundreds of MB at the largest size) is
        // resident.
        if let Some(m) = &model {
            for precision in precision_list() {
                let p = precision.as_str();
                let precond = DdmGnnPreconditioner::with_precision(
                    &problem,
                    subdomains.clone(),
                    std::sync::Arc::clone(m),
                    true,
                    precision,
                )
                .expect("DDM-GNN setup failed");
                let (med, min) = time_kernel(|| precond.apply(&r, &mut z), floor, 7);
                println!("PERF kind=kernel name=gnn_apply precision={p} idx={pi} n={n} threads={threads} median_ns={med} min_ns={min}");

                // Batched multi-RHS apply: the panel kernels stream the plan
                // (weights, geo/bf16 edge terms, psi statics) once per batch
                // instead of once per column, so ns-per-column should fall
                // with b on the bandwidth-bound sizes.  b=4 is covered by the
                // CI smoke leg.
                let batch_widths: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
                let max_b = batch_widths.iter().copied().max().unwrap();
                let rhs_panel: Vec<Vec<f64>> = (0..max_b)
                    .map(|c| {
                        r.iter()
                            .enumerate()
                            .map(|(i, &v)| v + (c as f64) * ((i as f64) * 0.01).sin())
                            .collect()
                    })
                    .collect();
                let mut z_panel = vec![vec![0.0; n]; max_b];
                for &bw in batch_widths {
                    let rs: Vec<&[f64]> = rhs_panel[..bw].iter().map(|v| v.as_slice()).collect();
                    let (cols, _) = z_panel.split_at_mut(bw);
                    let (med, min) = time_kernel(
                        || {
                            let mut zs: Vec<&mut [f64]> =
                                cols.iter_mut().map(|z| z.as_mut_slice()).collect();
                            precond.apply_batch(&rs, &mut zs);
                        },
                        floor,
                        7,
                    );
                    println!("PERF kind=kernel name=gnn_apply_batched precision={p} b={bw} idx={pi} n={n} threads={threads} median_ns={med} min_ns={min}");
                }

                // Per-layer breakdown of the inference engine, accumulated
                // over whole (sequential) preconditioner applications.  The
                // stage split is thread-independent, so the parent asks only
                // the base-thread-count child to measure it (standalone child
                // runs default to measuring).
                let measure_layers =
                    std::env::var("PERF_SUITE_LAYER_CHILD").map_or(true, |v| v != "0");
                if measure_layers {
                    let reps = if smoke { 1 } else { 3 };
                    let mut timings = InferenceTimings::default();
                    for _ in 0..reps {
                        precond.apply_timed(&r, &mut z, &mut timings);
                    }
                    for (stage, ns) in timings.stages() {
                        println!(
                            "PERF kind=gnn_layer precision={p} stage={stage} idx={pi} n={n} threads={threads} total_ns={ns} applies={reps} inferences={}",
                            timings.calls
                        );
                    }
                    // The same stage split over the widest batched apply:
                    // shows where the amortisation lands per stage (the
                    // node GEMMs and edge gather touch the plan once per
                    // batch, the psi/decoder work scales with b).
                    let rs: Vec<&[f64]> = rhs_panel[..max_b].iter().map(|v| v.as_slice()).collect();
                    let mut batched_timings = InferenceTimings::default();
                    for _ in 0..reps {
                        let mut zs: Vec<&mut [f64]> =
                            z_panel.iter_mut().map(|z| z.as_mut_slice()).collect();
                        precond.apply_batch_timed(&rs, &mut zs, &mut batched_timings);
                    }
                    for (stage, ns) in batched_timings.stages() {
                        println!(
                            "PERF kind=gnn_layer_batched precision={p} b={max_b} stage={stage} idx={pi} n={n} threads={threads} total_ns={ns} applies={reps} inferences={}",
                            batched_timings.calls
                        );
                    }
                    println!(
                        "PERF kind=gnn_plan precision={p} idx={pi} n={n} threads={threads} plan_bytes={}",
                        precond.plan_memory_bytes()
                    );
                }

                let solver_name = match precision {
                    Precision::F64 => "pcg-ddm-gnn-2level",
                    Precision::F32 => "pcg-ddm-gnn-2level-f32",
                    Precision::Int8 => "pcg-ddm-gnn-2level-int8",
                };
                e2e(solver_name, &precond);
            }

            // Recovery overhead of the fault-tolerant supervisor: run the
            // full degradation ladder (GNN-f64 → DDM-LU → Jacobi) fault-free
            // and with one NaN fault injected into the GNN tier at apply 10,
            // on the first problem of at least ~9k unknowns.  Measured once
            // (at every thread count) — the ladder setup builds a second GNN
            // plan set, so this is kept off the smaller problems.
            if !fault_recovery_done && !smoke && n >= 5000 {
                fault_recovery_done = true;
                let config = HybridSolverConfig::default();
                let run = |inject: bool| {
                    let mut tiers = build_resilience_tiers(&problem, &subdomains, m, &config)
                        .expect("resilience tier setup failed");
                    if inject {
                        let gnn = tiers.remove(0);
                        tiers.insert(
                            0,
                            Box::new(FaultInjectingPreconditioner::scheduled(
                                gnn,
                                [(10u64, InjectedFault::NanOutput)],
                            )),
                        );
                    }
                    let ladder = DegradationLadder::new(tiers, ResiliencePolicy::default());
                    let start = Instant::now();
                    let outcome = solve_with_ladder(&problem, subdomains.len(), ladder, 0.0, &opts);
                    (start.elapsed().as_secs_f64() * 1e3, outcome)
                };
                let (clean_ms, clean) = run(false);
                let (faulted_ms, faulted) = run(true);
                assert!(
                    clean.stats.converged() && faulted.stats.converged(),
                    "fault_recovery solves failed to converge on n={n}"
                );
                let overhead = if clean_ms > 0.0 { faulted_ms / clean_ms } else { f64::INFINITY };
                println!(
                    "PERF kind=fault_recovery idx={pi} n={n} threads={threads} clean_ms={clean_ms:.3} faulted_ms={faulted_ms:.3} overhead={overhead:.3} clean_iterations={} faulted_iterations={} faults={} final_tier={}",
                    clean.stats.iterations,
                    faulted.stats.iterations,
                    faulted.stats.faults.events().len(),
                    faulted.stats.faults.final_tier().unwrap_or("?")
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parent: orchestrate children, verify determinism, write the JSON report
// ---------------------------------------------------------------------------

type Record = BTreeMap<String, String>;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn parse_records(stdout: &str) -> Vec<Record> {
    stdout
        .lines()
        .filter_map(|line| line.strip_prefix("PERF "))
        .map(|rest| {
            rest.split_whitespace()
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        })
        .collect()
}

fn parent() {
    let smoke = smoke_mode();
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let thread_counts = env_list("PERF_SUITE_THREADS", default_threads);
    let out_path =
        std::env::var("PERF_SUITE_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    let gnn_out_path = std::env::var("PERF_SUITE_GNN_OUT")
        .unwrap_or_else(|_| "BENCH_gnn_inference.json".to_string());
    let exe = std::env::current_exe().expect("cannot locate perf_suite executable");

    let base_threads = thread_counts.iter().min().copied().unwrap_or(1);
    let mut all: Vec<Record> = Vec::new();
    for &t in &thread_counts {
        eprintln!("perf_suite: measuring with RAYON_NUM_THREADS={t} ...");
        let output = Command::new(&exe)
            .env("PERF_SUITE_CHILD", "1")
            .env("RAYON_NUM_THREADS", t.to_string())
            // The per-layer stage split is thread-independent; only the
            // base-thread-count child spends time measuring it.
            .env("PERF_SUITE_LAYER_CHILD", if t == base_threads { "1" } else { "0" })
            .output()
            .expect("failed to spawn perf_suite child");
        let stdout = String::from_utf8_lossy(&output.stdout);
        print!("{stdout}");
        assert!(
            output.status.success(),
            "child (threads={t}) failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        all.extend(parse_records(&stdout));
    }

    // Annotate every measurement taken with more worker threads than the
    // host actually has: oversubscribed numbers must not be misread as
    // scaling data.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for rec in &mut all {
        if rec.get("threads").and_then(|t| t.parse::<usize>().ok()).is_some_and(|t| t > host_cpus) {
            rec.insert("oversubscribed".to_string(), "true".to_string());
        }
    }

    // Determinism: for every (solver, problem) the residual-history hash must
    // be identical at every thread count.
    let mut hashes: BTreeMap<(String, String), Vec<(String, String)>> = BTreeMap::new();
    for rec in all.iter().filter(|r| r.get("kind").map(String::as_str) == Some("e2e")) {
        hashes
            .entry((rec["solver"].clone(), rec["idx"].clone()))
            .or_default()
            .push((rec["threads"].clone(), rec["hash"].clone()));
    }
    let mut identical = true;
    for ((solver, idx), entries) in &hashes {
        let first = &entries[0].1;
        for (threads, hash) in entries {
            if hash != first {
                identical = false;
                eprintln!(
                    "DETERMINISM VIOLATION: {solver} problem {idx}: hash {hash} at {threads} threads != {first}"
                );
            }
        }
    }

    // Speedup of the largest end-to-end solve: max threads vs 1 thread.
    let speedup = |solver: &str| -> Option<f64> {
        let largest = all
            .iter()
            .filter(|r| r.get("kind").map(String::as_str) == Some("e2e") && r["solver"] == solver)
            .filter_map(|r| r["idx"].parse::<usize>().ok())
            .max()?;
        let wall = |threads: usize| -> Option<f64> {
            all.iter()
                .find(|r| {
                    r.get("kind").map(String::as_str) == Some("e2e")
                        && r["solver"] == solver
                        && r["idx"] == largest.to_string()
                        && r["threads"] == threads.to_string()
                })
                .and_then(|r| r["wall_ms"].parse().ok())
        };
        // Fewest vs most threads, independent of the order the list was
        // given in (PERF_SUITE_THREADS is user-supplied and may be unsorted).
        let base = wall(*thread_counts.iter().min()?)?;
        let best = wall(*thread_counts.iter().max()?)?;
        (best > 0.0).then(|| base / best)
    };

    let json = render_json(
        &thread_counts,
        &all,
        identical,
        &[
            ("pcg-ddm-lu-2level", speedup("pcg-ddm-lu-2level")),
            ("pcg-ddm-gnn-2level", speedup("pcg-ddm-gnn-2level")),
            ("pcg-ddm-gnn-2level-f32", speedup("pcg-ddm-gnn-2level-f32")),
            ("pcg-ddm-gnn-2level-int8", speedup("pcg-ddm-gnn-2level-int8")),
        ],
    );
    std::fs::write(&out_path, json).expect("cannot write benchmark report");
    eprintln!("perf_suite: wrote {out_path} (bit-identical across thread counts: {identical})");

    let gnn_json = render_gnn_inference_json(&thread_counts, &all);
    std::fs::write(&gnn_out_path, gnn_json).expect("cannot write GNN inference report");
    eprintln!("perf_suite: wrote {gnn_out_path}");

    assert!(identical, "residual histories differ across thread counts");
}

/// Render the per-layer GNN inference report.  Stage timings come from
/// sequential `apply_timed` runs, so they are thread-count independent; the
/// records of the lowest measured thread count are kept.  Every row carries
/// a `precision` tag (`"f64"` / `"f32"` / `"int8"`), and the report closes
/// with the per-problem f32-vs-f64 and int8-vs-f32 `gnn_apply` speedups and
/// the int8-vs-f32 plan-memory ratios.
fn render_gnn_inference_json(thread_counts: &[usize], records: &[Record]) -> String {
    let base_threads = thread_counts.iter().min().copied().unwrap_or(1).to_string();
    let precision_of = |rec: &Record| -> String {
        rec.get("precision").cloned().unwrap_or_else(|| "f64".to_string())
    };
    let layer_recs: Vec<&Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("gnn_layer")
                && r.get("threads") == Some(&base_threads)
        })
        .collect();
    // Total per (problem index, precision), for the share column.
    let mut totals: BTreeMap<(String, String), u64> = BTreeMap::new();
    for rec in &layer_recs {
        if let Ok(ns) = rec["total_ns"].parse::<u64>() {
            *totals.entry((rec["idx"].clone(), precision_of(rec))).or_default() += ns;
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"command\": \"cargo run --release -p bench --bin perf_suite\",");
    let _ = writeln!(
        s,
        "  \"stage_timer\": \"DdmGnnPreconditioner::apply_timed (sequential sub-domain sweep)\","
    );
    let _ = writeln!(
        s,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(s, "  \"threads\": {base_threads},");
    let _ = writeln!(s, "  \"stages\": [");
    for (i, rec) in layer_recs.iter().enumerate() {
        let total =
            totals.get(&(rec["idx"].clone(), precision_of(rec))).copied().unwrap_or(0).max(1);
        let ns: u64 = rec["total_ns"].parse().unwrap_or(0);
        let share = ns as f64 / total as f64;
        let comma = if i + 1 < layer_recs.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"precision\": \"{}\", \"stage\": \"{}\", \"total_ns\": {}, \"share\": {:.4}, \"applies\": {}, \"inferences\": {} }}{comma}",
            rec["idx"], rec["n"], precision_of(rec), rec["stage"], rec["total_ns"], share, rec["applies"], rec["inferences"]
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"plan_memory\": [");
    let plan_recs: Vec<&Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("gnn_plan")
                && r.get("threads") == Some(&base_threads)
        })
        .collect();
    for (i, rec) in plan_recs.iter().enumerate() {
        let comma = if i + 1 < plan_recs.len() { "," } else { "" };
        let _ =
            writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"precision\": \"{}\", \"plan_bytes\": {} }}{comma}",
            rec["idx"], rec["n"], precision_of(rec), rec["plan_bytes"]
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"gnn_apply_median_ns\": [");
    let apply_recs: Vec<&Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("kernel")
                && r.get("name").map(String::as_str) == Some("gnn_apply")
                && r.get("threads") == Some(&base_threads)
        })
        .collect();
    for (i, rec) in apply_recs.iter().enumerate() {
        let comma = if i + 1 < apply_recs.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"precision\": \"{}\", \"median_ns\": {}, \"min_ns\": {} }}{comma}",
            rec["idx"], rec["n"], precision_of(rec), rec["median_ns"], rec["min_ns"]
        );
    }
    let _ = writeln!(s, "  ],");
    // Batched multi-RHS apply: median per call, per column (median / b) and
    // the amortisation factor against the b=1 batched run of the same
    // (problem, precision).
    let batched_recs: Vec<&Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("kernel")
                && r.get("name").map(String::as_str) == Some("gnn_apply_batched")
                && r.get("threads") == Some(&base_threads)
        })
        .collect();
    let mut b1_per_column: BTreeMap<(String, String), f64> = BTreeMap::new();
    for rec in &batched_recs {
        if rec.get("b").map(String::as_str) == Some("1") {
            if let Ok(ns) = rec["median_ns"].parse::<f64>() {
                b1_per_column.insert((rec["idx"].clone(), precision_of(rec)), ns);
            }
        }
    }
    let _ = writeln!(s, "  \"gnn_apply_batched\": [");
    for (i, rec) in batched_recs.iter().enumerate() {
        let b: f64 = rec["b"].parse().unwrap_or(1.0);
        let median: f64 = rec["median_ns"].parse().unwrap_or(0.0);
        let per_column = median / b.max(1.0);
        let amortisation = b1_per_column
            .get(&(rec["idx"].clone(), precision_of(rec)))
            .map_or(1.0, |&b1| if per_column > 0.0 { b1 / per_column } else { 1.0 });
        let comma = if i + 1 < batched_recs.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"precision\": \"{}\", \"b\": {}, \"median_ns\": {}, \"ns_per_column\": {:.0}, \"batch_amortisation_vs_b1\": {:.3} }}{comma}",
            rec["idx"], rec["n"], precision_of(rec), rec["b"], rec["median_ns"], per_column, amortisation
        );
    }
    let _ = writeln!(s, "  ],");
    // The per-stage split of the widest batched apply, mirroring "stages".
    let batched_layer_recs: Vec<&Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("gnn_layer_batched")
                && r.get("threads") == Some(&base_threads)
        })
        .collect();
    let mut batched_totals: BTreeMap<(String, String), u64> = BTreeMap::new();
    for rec in &batched_layer_recs {
        if let Ok(ns) = rec["total_ns"].parse::<u64>() {
            *batched_totals.entry((rec["idx"].clone(), precision_of(rec))).or_default() += ns;
        }
    }
    let _ = writeln!(s, "  \"stages_batched\": [");
    for (i, rec) in batched_layer_recs.iter().enumerate() {
        let total = batched_totals
            .get(&(rec["idx"].clone(), precision_of(rec)))
            .copied()
            .unwrap_or(0)
            .max(1);
        let ns: u64 = rec["total_ns"].parse().unwrap_or(0);
        let share = ns as f64 / total as f64;
        let comma = if i + 1 < batched_layer_recs.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"precision\": \"{}\", \"b\": {}, \"stage\": \"{}\", \"total_ns\": {}, \"share\": {:.4}, \"applies\": {}, \"inferences\": {} }}{comma}",
            rec["idx"], rec["n"], precision_of(rec), rec["b"], rec["stage"], rec["total_ns"], share, rec["applies"], rec["inferences"]
        );
    }
    let _ = writeln!(s, "  ],");
    // Per-problem apply-kernel speedups between precision pairs
    // (median / median).
    let mut medians: BTreeMap<(String, String), (String, u64)> = BTreeMap::new();
    for rec in &apply_recs {
        if let Ok(ns) = rec["median_ns"].parse::<u64>() {
            medians.insert((rec["idx"].clone(), precision_of(rec)), (rec["n"].clone(), ns));
        }
    }
    let speedup_rows = |base: &str, fast: &str| -> Vec<(String, String, f64)> {
        medians
            .iter()
            .filter(|((_, p), _)| p == base)
            .filter_map(|((idx, _), (n, ns_base))| {
                let (_, ns_fast) = medians.get(&(idx.clone(), fast.to_string()))?;
                (*ns_fast > 0).then(|| (idx.clone(), n.clone(), *ns_base as f64 / *ns_fast as f64))
            })
            .collect()
    };
    let write_ratio_section =
        |s: &mut String, key: &str, field: &str, rows: &[(String, String, f64)], last: bool| {
            let _ = writeln!(s, "  \"{key}\": [");
            for (i, (idx, n, ratio)) in rows.iter().enumerate() {
                let comma = if i + 1 < rows.len() { "," } else { "" };
                let _ = writeln!(
                    s,
                    "    {{ \"idx\": {idx}, \"n\": {n}, \"{field}\": {ratio:.3} }}{comma}"
                );
            }
            let _ = writeln!(s, "  ]{}", if last { "" } else { "," });
        };
    write_ratio_section(
        &mut s,
        "gnn_apply_speedup_f32_vs_f64",
        "speedup",
        &speedup_rows("f64", "f32"),
        false,
    );
    write_ratio_section(
        &mut s,
        "gnn_apply_speedup_q_vs_f32",
        "speedup",
        &speedup_rows("f32", "int8"),
        false,
    );
    // Per-problem plan-memory ratio of the quantised plans vs the f32 plans.
    let mut plan_bytes: BTreeMap<(String, String), (String, u64)> = BTreeMap::new();
    for rec in &plan_recs {
        if let Ok(b) = rec["plan_bytes"].parse::<u64>() {
            plan_bytes.insert((rec["idx"].clone(), precision_of(rec)), (rec["n"].clone(), b));
        }
    }
    let memory_rows: Vec<(String, String, f64)> = plan_bytes
        .iter()
        .filter(|((_, p), _)| p == "f32")
        .filter_map(|((idx, _), (n, b32))| {
            let (_, bq) = plan_bytes.get(&(idx.clone(), "int8".to_string()))?;
            (*b32 > 0).then(|| (idx.clone(), n.clone(), *bq as f64 / *b32 as f64))
        })
        .collect();
    write_ratio_section(&mut s, "plan_memory_ratio_q_vs_f32", "ratio", &memory_rows, true);
    let _ = writeln!(s, "}}");
    s
}

fn render_json(
    thread_counts: &[usize],
    records: &[Record],
    identical: bool,
    speedups: &[(&str, Option<f64>)],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"command\": \"cargo run --release -p bench --bin perf_suite\",");
    let _ = writeln!(
        s,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(
        s,
        "  \"thread_counts\": [{}],",
        thread_counts.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")
    );
    let render_group = |s: &mut String, kind: &str, fields: &[&str]| {
        let recs: Vec<&Record> =
            records.iter().filter(|r| r.get("kind").map(String::as_str) == Some(kind)).collect();
        for (i, rec) in recs.iter().enumerate() {
            let body = fields
                .iter()
                .filter_map(|&f| {
                    rec.get(f).map(|v| {
                        // `hash`/`solver`/`name` are always strings — a hex
                        // hash of decimal digits (or with a lone 'e') would
                        // otherwise pass the f64 parse and be emitted as an
                        // invalid bare number.
                        let is_bool = matches!(v.as_str(), "true" | "false");
                        let is_string = !is_bool
                            && (matches!(f, "hash" | "solver" | "name")
                                || v.parse::<f64>().is_err());
                        if is_string {
                            format!("\"{f}\": \"{v}\"")
                        } else {
                            format!("\"{f}\": {v}")
                        }
                    })
                })
                .collect::<Vec<_>>()
                .join(", ");
            let comma = if i + 1 < recs.len() { "," } else { "" };
            let _ = writeln!(s, "    {{ {body} }}{comma}");
        }
    };
    // Problem records repeat once per child process; keep one per index.
    let first_threads = thread_counts.first().map(usize::to_string).unwrap_or_default();
    let problem_records: Vec<Record> = records
        .iter()
        .filter(|r| {
            r.get("kind").map(String::as_str) == Some("problem")
                && r.get("threads") == Some(&first_threads)
        })
        .cloned()
        .collect();
    let _ = writeln!(s, "  \"problems\": [");
    for (i, rec) in problem_records.iter().enumerate() {
        let comma = if i + 1 < problem_records.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"nnz\": {}, \"subdomains\": {} }}{comma}",
            rec["idx"], rec["n"], rec["nnz"], rec["subdomains"]
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"kernels\": [");
    render_group(
        &mut s,
        "kernel",
        &["name", "precision", "b", "idx", "n", "threads", "median_ns", "min_ns", "oversubscribed"],
    );
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"end_to_end\": [");
    render_group(
        &mut s,
        "e2e",
        &["solver", "idx", "n", "threads", "wall_ms", "iterations", "hash", "oversubscribed"],
    );
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"fault_recovery\": [");
    render_group(
        &mut s,
        "fault_recovery",
        &[
            "idx",
            "n",
            "threads",
            "clean_ms",
            "faulted_ms",
            "overhead",
            "clean_iterations",
            "faulted_iterations",
            "faults",
            "final_tier",
            "oversubscribed",
        ],
    );
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"determinism\": {{ \"bit_identical_across_threads\": {identical} }},");
    let _ = writeln!(s, "  \"speedups_largest_problem_maxthreads_vs_1\": {{");
    for (i, (name, value)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        match value {
            Some(v) => {
                let _ = writeln!(s, "    \"{name}\": {v:.3}{comma}");
            }
            None => {
                let _ = writeln!(s, "    \"{name}\": null{comma}");
            }
        }
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}
