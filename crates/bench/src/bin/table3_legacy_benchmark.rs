//! Table III — benchmark against "legacy" optimised preconditioners.
//!
//! For a sweep of problem sizes `N` and sub-domain counts `K`, solve to a
//! relative residual of 1e-3 with IC(0)-PCG, PCG-DDM-LU and PCG-DDM-GNN, and
//! report the iteration counts, the total solve time `T`, and the time spent
//! inside the preconditioner (`T_lu`, `T_gnn`) — the columns of the paper's
//! Table III.
//!
//! Environment variables:
//! * `T3_SIZES`    — comma-separated problem sizes, default `5000,10000,20000,40000`
//!                   (paper: 10 571 … 609 740)
//! * `T3_SUBSIZES` — comma-separated sub-domain sizes, default `100,200,400`
//!                   (paper: 500, 1000, 2000)

use std::sync::Arc;

use bench::{load_or_train_model, write_csv};
use ddm_gnn::{generate_problem, solve_ddm_gnn, solve_ddm_lu, solve_ic0};
use krylov::SolverOptions;
use partition::partition_mesh_with_overlap;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let sizes = env_list("T3_SIZES", &[5_000, 10_000, 20_000, 40_000]);
    let subsizes = env_list("T3_SUBSIZES", &[100, 200, 400]);
    let model = Arc::new(load_or_train_model());
    let opts = SolverOptions::with_tolerance(1e-3).max_iterations(50_000);

    println!("\nTABLE III — benchmark against legacy preconditioners (tolerance 1e-3)");
    println!(
        "{:>8} {:>6} | {:>6} {:>9} | {:>6} {:>9} {:>9} | {:>6} {:>9} {:>9}",
        "N", "K", "Nit", "T_ic0", "Nit", "T_lu_tot", "T_lu", "Nit", "T_gnn_tot", "T_gnn"
    );
    let mut csv_rows = Vec::new();

    for &target_n in &sizes {
        let problem = generate_problem(3000 + target_n as u64, target_n);
        let n = problem.num_unknowns();
        let ic0 = solve_ic0(&problem, &opts).expect("IC(0) solve");
        for &ns in &subsizes {
            let subdomains = partition_mesh_with_overlap(&problem.mesh, ns, 2, 0);
            let k = subdomains.len();
            let lu = solve_ddm_lu(&problem, subdomains.clone(), true, &opts).expect("DDM-LU");
            let gnn = solve_ddm_gnn(&problem, subdomains, Arc::clone(&model), true, &opts)
                .expect("DDM-GNN");
            println!(
                "{:>8} {:>6} | {:>6} {:>9.4} | {:>6} {:>9.4} {:>9.4} | {:>6} {:>9.4} {:>9.4}",
                n,
                k,
                ic0.stats.iterations,
                ic0.total_seconds,
                lu.stats.iterations,
                lu.total_seconds,
                lu.preconditioner_seconds,
                gnn.stats.iterations,
                gnn.total_seconds,
                gnn.preconditioner_seconds
            );
            csv_rows.push(format!(
                "{n},{k},{},{:.5},{},{:.5},{:.5},{},{:.5},{:.5}",
                ic0.stats.iterations,
                ic0.total_seconds,
                lu.stats.iterations,
                lu.total_seconds,
                lu.preconditioner_seconds,
                gnn.stats.iterations,
                gnn.total_seconds,
                gnn.preconditioner_seconds
            ));
        }
    }

    write_csv(
        "table3_legacy_benchmark.csv",
        "N,K,ic0_iters,ic0_total_s,ddm_lu_iters,ddm_lu_total_s,ddm_lu_precond_s,ddm_gnn_iters,ddm_gnn_total_s,ddm_gnn_precond_s",
        &csv_rows,
    );
}
